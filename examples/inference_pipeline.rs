//! A production-like mixed inference pipeline on a shared GPU server.
//!
//! ```text
//! cargo run --release --example inference_pipeline
//! ```
//!
//! Launches a Poisson-ish stream of the paper's six workloads against one
//! disaggregated GPU server (4 V100s) under three configurations — no
//! sharing, sharing with best-fit, sharing + live migration — and prints
//! queueing delays, per-GPU utilization, and any migrations the monitor
//! decided to perform.

use dgsf::prelude::*;
use dgsf::workloads::{as_workloads, paper_suite};

fn main() {
    let suite = paper_suite();
    let schedule = Schedule::mixed(
        7,
        suite.len(),
        3, // three copies of each workload
        ArrivalPattern::Exponential {
            mean: Dur::from_secs(2),
        },
    );
    println!(
        "launching {} functions (3 x 6 workloads, exponential gaps, mean 2s)\n",
        schedule.len()
    );

    let configs: Vec<(&str, GpuServerConfig)> = vec![
        (
            "no sharing",
            GpuServerConfig::paper_default().gpus(4).sharing(1),
        ),
        (
            "sharing(2) best-fit",
            GpuServerConfig::paper_default()
                .gpus(4)
                .sharing(2)
                .with_policy(PlacementPolicy::BestFit),
        ),
        (
            "sharing(2) best-fit + migration",
            GpuServerConfig::paper_default()
                .gpus(4)
                .sharing(2)
                .with_policy(PlacementPolicy::BestFit)
                .with_migration(true),
        ),
    ];

    for (label, server) in configs {
        let cfg = TestbedConfig {
            seed: 7,
            server,
            opts: OptConfig::full(),
        };
        let out = Testbed::run_schedule(&cfg, &as_workloads(&suite), &schedule);
        let queue_delays: Vec<f64> = out
            .records
            .iter()
            .filter_map(|r| r.queue_delay())
            .map(|d| d.as_secs_f64())
            .collect();
        let s = dgsf::sim::Summary::from(&queue_delays);
        println!("== {label} ==");
        println!(
            "  provider end-to-end {:.1}s | function E2E sum {:.1}s",
            out.provider_e2e().as_secs_f64(),
            out.function_e2e_sum().as_secs_f64()
        );
        println!(
            "  queueing: mean {:.1}s  p95 {:.1}s  max {:.1}s",
            s.mean, s.p95, s.max
        );
        println!(
            "  mean GPU utilization {:.1}% | migrations {}",
            out.mean_utilization(out.first_launch, out.all_done) * 100.0,
            out.migrations.len()
        );
        for m in &out.migrations {
            println!(
                "    migrated server {} {:?} -> {:?}: moved {} MB in {:.2}s",
                m.server,
                m.from,
                m.to,
                m.report.bytes_moved >> 20,
                m.report.total.as_secs_f64()
            );
        }
        println!();
    }
}
