//! Quickstart: run one GPU-accelerated serverless function over DGSF and
//! compare it with native execution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! DGSF pre-initializes CUDA contexts and cuDNN/cuBLAS handles on the API
//! server, so the remoted function skips the ≈4.6 s of initialization a
//! native process pays — and ends up *faster* end-to-end despite crossing
//! the network for every CUDA call.

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::workloads;

fn main() {
    let cfg = TestbedConfig::paper_default();

    println!("DGSF quickstart — face identification (ArcFace on ONNX Runtime)\n");
    let w: Arc<dyn Workload> = Arc::new(workloads::face_identification());

    let native = Testbed::run_native_once(1, &cfg.server.costs, w.clone());
    let dgsf_run = Testbed::run_dgsf_once(&cfg, w.clone());

    let show = |label: &str, r: &dgsf::serverless::FunctionResult| {
        println!("{label:<8} end-to-end {:>6.2}s", r.e2e().as_secs_f64());
        for (name, d) in r.phases.all() {
            println!("         {:<12} {:>6.2}s", name, d.as_secs_f64());
        }
        println!(
            "         API calls issued {}, forwarded {}, answered locally {}, batched {}",
            r.api_stats.issued_calls,
            r.api_stats.remoted_calls,
            r.api_stats.localized_calls,
            r.api_stats.batched_calls
        );
        println!();
    };
    show("native", &native);
    show("DGSF", &dgsf_run);

    let native_s = native.e2e().as_secs_f64();
    let dgsf_s = dgsf_run.e2e().as_secs_f64();
    println!(
        "DGSF is {:.0}% {} than native ({}).",
        ((native_s - dgsf_s) / native_s * 100.0).abs(),
        if dgsf_s < native_s {
            "faster"
        } else {
            "slower"
        },
        if dgsf_s < native_s {
            "remoting overhead is outweighed by hiding CUDA/cuDNN initialization"
        } else {
            "network overheads dominated this run"
        }
    );
}
