//! Functional K-means through the whole DGSF stack.
//!
//! ```text
//! cargo run --release --example kmeans_serverless
//! ```
//!
//! The §III case study made executable: the *same* clustering code runs
//!
//! 1. natively on a (simulated) local GPU,
//! 2. as a serverless function whose CUDA calls are remoted by DGSF to a
//!    disaggregated GPU server — including a forced live migration between
//!    GPUs halfway through the iterations, and
//! 3. on host CPU threads (the paper's pthreads baseline),
//!
//! and all three produce the same centroids. The migration is completely
//! invisible to the function: same pointers, same results.

use std::sync::Arc;

use dgsf::cuda::{CostTable, CudaApi, NativeCuda};
use dgsf::gpu::{Gpu, GpuId};
use dgsf::prelude::*;
use dgsf::remoting::RemoteCuda;
use dgsf::server::GpuServer;
use dgsf::sim::Sim;
use dgsf::workloads::{max_abs_diff, KMeansProblem};
use parking_lot::Mutex;

fn main() {
    let prob = KMeansProblem::synthetic(4000, 8, 5, 12, 2024);
    println!(
        "K-means: {} points x {} dims, k={}, {} iterations\n",
        prob.n(),
        prob.dims,
        prob.k,
        prob.iters
    );

    // --- CPU baseline (6 threads, as AWS Lambda caps functions) ---
    let wall = std::time::Instant::now();
    let cpu = prob.run_cpu(6);
    println!("CPU (6 threads): done in {:?} wall time", wall.elapsed());

    // --- native GPU ---
    let native = {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let prob = prob.clone();
        sim.spawn("native-app", move |p| {
            let gpu = Gpu::v100(&h, GpuId(0));
            let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
            api.runtime_init(p).unwrap();
            api.register_module(p, prob.registry()).unwrap();
            let t0 = p.now();
            let centroids = prob.run_gpu(p, &mut api);
            *o.lock() = Some((centroids, p.now().since(t0)));
        });
        sim.run();
        let r = out.lock().take().unwrap();
        r
    };
    println!(
        "native GPU:      {:.3}s of virtual time (plus 3.2s CUDA init)",
        native.1.as_secs_f64()
    );

    // --- DGSF with a live migration in the middle ---
    let dgsf = {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let prob = prob.clone();
        let h2 = h.clone();
        sim.spawn("platform", move |p| {
            let server = GpuServer::provision(p, &h2, GpuServerConfig::paper_default().gpus(2));
            let (client, _inv) = server.request_gpu(p, "kmeans", 256 << 20, prob.registry());
            let mut api = RemoteCuda::new(client, OptConfig::full());
            api.runtime_init(p).unwrap();
            api.register_module(p, prob.registry()).unwrap();
            let t0 = p.now();

            // run half the iterations…
            let mut half = prob.clone();
            half.iters = prob.iters / 2;
            let _ = half.run_gpu(p, &mut api); // frees its buffers; re-run below

            // …then force a live migration to the other GPU and run the
            // full problem again on the migrated session.
            server.force_migration(0, GpuId(1));
            let centroids = prob.run_gpu(p, &mut api);
            let elapsed = p.now().since(t0);
            let migs = server.migrations();
            *o.lock() = Some((centroids, elapsed, migs.len(), server.server_current_gpu(0)));
            api.finish(p).unwrap();
        });
        sim.run();
        let r = out.lock().take().unwrap();
        r
    };
    println!(
        "DGSF (remoted):  {:.3}s of virtual time, {} live migration(s), now on {:?}",
        dgsf.1.as_secs_f64(),
        dgsf.2,
        dgsf.3
    );

    // --- all three agree ---
    let d_native = max_abs_diff(&native.0, &cpu);
    let d_dgsf = max_abs_diff(&dgsf.0, &cpu);
    println!("\nmax |centroid difference| native vs CPU: {d_native:.2e}");
    println!("max |centroid difference| DGSF   vs CPU: {d_dgsf:.2e}");
    assert!(d_native < 1e-3 && d_dgsf < 1e-3, "all paths must agree");
    println!("\nAll three execution paths produced the same clustering. ✔");
}
