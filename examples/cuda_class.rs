//! The paper's motivating case study (§III): a 100+ student CUDA class.
//!
//! ```text
//! cargo run --release --example cuda_class
//! ```
//!
//! Students edit code in cheap CPU-only containers; every time someone runs
//! their CUDA program, a serverless function executes it against DGSF's
//! disaggregated GPU pool. This example launches a burst of short student
//! jobs against a *single* 4-GPU server with sharing enabled and shows that
//! (a) everyone gets a GPU without owning one, and (b) billing only covers
//! active GPU seconds, not idle IDE time.

use std::sync::Arc;

use dgsf::cuda::{KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf::prelude::*;
use dgsf::serverless::PhaseRecorder;
use dgsf::sim::Summary;

/// A student's assignment run: a couple of kernels plus a result readback.
struct StudentJob {
    id: usize,
    gpu_secs: f64,
}

impl Workload for StudentJob {
    fn name(&self) -> &str {
        "student-job"
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("assignment_kernel")))
    }
    fn required_gpu_mem(&self) -> u64 {
        1 << 30 // 1 GB
    }
    fn download_bytes(&self) -> u64 {
        8 << 20 // the student's data set
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn dgsf::cuda::CudaApi,
        rec: &mut PhaseRecorder,
    ) -> dgsf::cuda::CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        let buf = api.malloc(p, 64 << 20)?;
        api.memset(p, buf, 0, 64 << 20)?;
        for _ in 0..4 {
            api.launch_kernel(
                p,
                "assignment_kernel",
                LaunchConfig::linear(1 << 22, 256),
                KernelArgs::timed(self.gpu_secs / 4.0, 64 << 20),
            )?;
        }
        api.device_synchronize(p)?;
        api.memcpy_d2h(p, buf, 1 << 20, false)?;
        api.free(p, buf)?;
        let _ = self.id;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        self.gpu_secs * 30.0
    }
}

fn main() {
    let students = 60usize;
    println!("§III case study: {students} students, one 4-GPU server, sharing(2)\n");

    // Every student triggers a run within a 2-minute window.
    let suite: Vec<Arc<dyn Workload>> = (0..students)
        .map(|id| {
            Arc::new(StudentJob {
                id,
                gpu_secs: 1.0 + (id % 5) as f64, // 1–5 s of GPU work each
            }) as Arc<dyn Workload>
        })
        .collect();
    let schedule = Schedule {
        entries: (0..students)
            .map(|i| (SimTime::ZERO + Dur::from_millis(i as u64 * 2000), i))
            .collect(),
    };
    let cfg = TestbedConfig {
        seed: 21,
        server: GpuServerConfig::paper_default()
            .gpus(4)
            .sharing(2)
            .with_policy(PlacementPolicy::WorstFit),
        opts: OptConfig::full(),
    };
    let out = Testbed::run_schedule(&cfg, &suite, &schedule);

    let e2es: Vec<f64> = out.results.iter().map(|r| r.e2e().as_secs_f64()).collect();
    let queues: Vec<f64> = out
        .records
        .iter()
        .filter_map(|r| r.queue_delay())
        .map(|d| d.as_secs_f64())
        .collect();
    let se = Summary::from(&e2es);
    let sq = Summary::from(&queues);
    let gpu_busy: f64 = out
        .gpu_timelines
        .iter()
        .map(|tl| {
            tl.busy_between(out.first_launch, out.all_done)
                .as_secs_f64()
        })
        .sum();

    println!(
        "all {} runs served in {:.0}s of class time",
        students,
        out.provider_e2e().as_secs_f64()
    );
    println!(
        "per-run latency: mean {:.1}s  p95 {:.1}s  max {:.1}s",
        se.mean, se.p95, se.max
    );
    println!(
        "queueing:        mean {:.1}s  p95 {:.1}s  max {:.1}s",
        sq.mean, sq.p95, sq.max
    );
    println!(
        "\nbilling: {:.0} GPU-seconds of actual use across 4 GPUs — vs {:.0} GPU-seconds\nif every student held a dedicated GPU-enabled container for the whole window.",
        gpu_busy,
        students as f64 * out.provider_e2e().as_secs_f64()
    );
    println!(
        "utilization-based billing is {:.0}x cheaper.",
        students as f64 * out.provider_e2e().as_secs_f64() / gpu_busy
    );
}
