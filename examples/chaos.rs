//! Fault injection + recovery demo.
//!
//! ```text
//! cargo run --release --example chaos
//! ```
//!
//! Two 1-GPU servers serve a burst of inference functions while server A is
//! killed mid-run and its link eats one RPC outright. The backend detects
//! the failures (RPC timeouts, heartbeat leases) and retries each function
//! on the surviving server, so every invocation terminates. The whole
//! chaotic timeline replays byte-identically from the seed.

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::remoting::FaultPlan;
use dgsf::server::GpuServer;
use dgsf::serverless::{Backend, FleetPolicy, ObjectStore, RetryPolicy};
use parking_lot::Mutex;

/// One function's client-observed outcome.
type Outcome = (usize, u64, u32, Option<String>);

fn chaos_run(seed: u64, n: usize) -> (Vec<Outcome>, u64, usize) {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let out: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));
    let stats = Arc::new(Mutex::new((0u64, 0usize)));
    let (o2, s2, h2) = (Arc::clone(&out), Arc::clone(&stats), h.clone());
    sim.spawn("chaos-root", move |p| {
        // Server A dies 8 s in — mid-invocation — and its link drops the
        // 6th message. Timeouts are filled in by "chaos implies hardening"
        // defaults, but we tighten the RPC timeout for a snappier demo.
        let faults = FaultPlan::new(seed)
            .kill_server(0, SimTime::ZERO + Dur::from_secs(8))
            .drop_message(6);
        let cfg = GpuServerConfig::paper_default()
            .gpus(1)
            .with_rpc_timeout(Dur::from_secs(2));
        let a = GpuServer::provision(p, &h2, cfg.clone().with_faults(faults));
        let b = GpuServer::provision(p, &h2, cfg);
        let backend = Arc::new(
            Backend::new(
                vec![Arc::clone(&a), Arc::clone(&b)],
                FleetPolicy::RoundRobin,
            )
            .with_retry(RetryPolicy::default()),
        );
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let done = Arc::new(Mutex::new(0usize));
        for i in 0..n {
            let (backend, store, out, done) = (
                Arc::clone(&backend),
                Arc::clone(&store),
                Arc::clone(&o2),
                Arc::clone(&done),
            );
            h2.spawn_at(
                &format!("fn-{i}"),
                SimTime::ZERO + Dur::from_secs(2 * i as u64),
                move |p| {
                    let w = dgsf::workloads::face_identification();
                    let r = backend.invoke(p, &store, &w, OptConfig::full());
                    out.lock()
                        .push((i, r.e2e().as_nanos(), r.attempts, r.failure.clone()));
                    *done.lock() += 1;
                },
            );
        }
        let s3 = Arc::clone(&s2);
        h2.spawn("collector", move |p| {
            while *done.lock() < n {
                p.sleep(Dur::from_millis(500));
            }
            let dropped = a.fault_stats().map(|s| s.dropped).unwrap_or(0);
            let failed = a
                .records()
                .iter()
                .chain(b.records().iter())
                .filter(|r| r.failed_at.is_some())
                .count();
            *s3.lock() = (dropped, failed);
        });
    });
    sim.run();
    let mut results = out.lock().clone();
    results.sort_by_key(|(i, ..)| *i);
    let (dropped, failed) = *stats.lock();
    (results, dropped, failed)
}

fn main() {
    let (n, seed) = (6usize, 11u64);
    println!("chaos: 2 servers, server A killed at t=8s + one dropped RPC\n");
    let (results, dropped, failed) = chaos_run(seed, n);
    for (i, e2e, attempts, failure) in &results {
        println!(
            "fn-{i}: e2e {:6.2}s  attempts {attempts}  {}",
            *e2e as f64 / 1e9,
            match failure {
                None => "ok".to_string(),
                Some(f) => format!("FAILED: {f}"),
            }
        );
    }
    println!(
        "\nserver-side: {failed} invocation(s) recorded failed, {dropped} transfer(s) dropped"
    );

    let replay = chaos_run(seed, n);
    println!(
        "same-seed replay identical: {}",
        replay == (results, dropped, failed)
    );
}
