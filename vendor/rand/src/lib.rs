//! Offline drop-in subset of `rand` 0.8, vendored so the workspace builds
//! without crates.io access (see `vendor/README.md`).
//!
//! [`rngs::StdRng`] is xoshiro256** seeded through SplitMix64 — not the
//! upstream ChaCha12, so random *streams* differ from real `rand`, but every
//! consumer in this workspace only relies on determinism-per-seed and
//! uniformity, both of which hold. The [`Rng`]/[`SeedableRng`]/
//! [`seq::SliceRandom`] surfaces cover exactly what the workspace calls.

/// Values producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draw a uniformly random value.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.abs_diff(self.start) as u128;
                // Lemire multiply-shift: unbiased enough for simulation use.
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty gen_range");
                let span = end.abs_diff(start) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as Standard>::standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The generator trait: one entropy source plus the derived draws.
pub trait Rng {
    /// The raw 64-bit draw everything else is built from.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, as in `rand`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension trait (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn unit_floats_live_in_unit_interval_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
    }
}
