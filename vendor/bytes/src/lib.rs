//! Offline drop-in subset of `bytes`, vendored so the workspace builds
//! without crates.io access (see `vendor/README.md`).
//!
//! [`Bytes`] is a cheaply cloneable view into shared immutable storage;
//! [`BytesMut`] is a growable buffer that freezes into one. The [`Buf`] /
//! [`BufMut`] traits cover exactly the little-endian accessors the wire
//! codec uses.

use std::sync::Arc;

/// Byte-string Debug like the real crate (`b"ab\x00"`), shared by both types.
macro_rules! fmt_as_byte_string {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "b\"")?;
            for &b in self.iter() {
                for esc in std::ascii::escape_default(b) {
                    write!(f, "{}", esc as char)?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// Cheaply cloneable immutable byte view. Reading via [`Buf`] consumes from
/// the front, as in the real crate. Equality is by content, not by backing
/// storage — a zero-copy subslice equals a standalone buffer with the same
/// bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty view.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Bytes left in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when nothing is left.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `n` bytes, advancing `self` past them.
    ///
    /// # Panics
    /// If `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(
            n <= self.len(),
            "split_to out of range: {n} > {}",
            self.len()
        );
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// A sub-view of the remaining bytes (indices relative to this view).
    ///
    /// # Panics
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of range: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the remaining bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(
            N <= self.len(),
            "buffer underflow: need {N}, have {}",
            self.len()
        );
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fmt_as_byte_string!();
}

/// Growable byte buffer; [`freeze`](BytesMut::freeze) turns it into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `n` bytes reserved.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl std::fmt::Debug for BytesMut {
    fmt_as_byte_string!();
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read-side accessors (consume from the front).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16;
    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian f32.
    fn get_f32_le(&mut self) -> f32;
    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// Write-side accessors (append at the back).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32);
    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(u64::MAX - 1);
        b.put_f64_le(2.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.split_to(3).to_vec(), b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn split_to_shares_storage_and_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.to_vec(), vec![3, 4, 5]);
        let clone = b.clone();
        assert_eq!(clone.to_vec(), b.to_vec());
    }

    #[test]
    #[should_panic(expected = "split_to out of range")]
    fn split_to_past_the_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.split_to(2);
    }
}
