//! Offline drop-in subset of `criterion`, vendored so the workspace builds
//! without crates.io access (see `vendor/README.md`).
//!
//! Provides just enough API for this repo's `harness = false` bench targets
//! to compile and run: each registered benchmark executes its routine once
//! and reports wall-clock time. No statistics, warm-up, or HTML reports —
//! use the real crate for publishable numbers.

use std::time::Instant;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// Only a hint in this subset; all variants behave identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    elapsed: std::time::Duration,
}

impl Bencher {
    /// Time `routine` (run once in this subset).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }

    /// Time `routine` on an input built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed = start.elapsed();
        drop(out);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; ignored in this subset.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark and print its wall-clock time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: std::time::Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: {:?} (single pass)",
            self.name,
            id.as_ref(),
            b.elapsed
        );
        self
    }

    /// Finish the group (no-op in this subset).
    pub fn finish(self) {}
}

/// Benchmark registry entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark and print its wall-clock time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: std::time::Duration::ZERO,
        };
        f(&mut b);
        println!("{}: {:?} (single pass)", id.as_ref(), b.elapsed);
        self
    }
}

/// Collect benchmark functions into a group runner, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 32], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_runs_all_registered_benches() {
        smoke();
    }
}
