//! Offline drop-in subset of `proptest`, vendored so the workspace builds
//! without crates.io access (see `vendor/README.md`).
//!
//! Covers the surface this workspace's property tests use: the `proptest!`
//! macro, `Strategy` with `prop_map`, `any::<T>()`, numeric-range and tuple
//! strategies, `prop_oneof!`, `collection::vec`, `option::of`, and the
//! `prop_assert*` macros. Cases are generated from a per-test deterministic
//! seed; there is **no shrinking** — a failing case panics with the plain
//! assertion message, which is enough for CI.

// Mirroring upstream's public signatures takes priority over lint tidiness.
#![allow(clippy::type_complexity, clippy::manual_is_multiple_of)]

/// Test-runner plumbing: configuration and the case RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG strategies draw from. Seeded per test from the test's name so
    /// every run of the suite explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn deterministic(test_name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.gen()
        }

        /// Uniform draw from a `rand`-compatible range.
        pub fn range<T, S: rand::SampleRange<T>>(&mut self, r: S) -> T {
            self.0.gen_range(r)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Types with a default "anything goes" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, sampler)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>) -> Union<V> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.range(0..self.total);
            for (w, f) in &self.arms {
                if pick < *w as u64 {
                    return f(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    /// Box a strategy into a `prop_oneof!` arm.
    pub fn union_arm<S>(weight: u32, s: S) -> (u32, Box<dyn Fn(&mut TestRng) -> S::Value>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(move |rng| s.sample(rng)))
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification for [`vec`]: half-open range or exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Some(inner)` about three times in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The glob import property tests start from.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// `prop::` alias namespace, as in the real crate.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `cases` times with freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _ in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property (plain `assert!` — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($weight, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm(1, $strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Op {
        A(u8),
        B,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u8..10).prop_map(Op::A),
            1 => (0u8..1).prop_map(|_| Op::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_option_compose(o in prop::option::of(op()), pair in (any::<bool>(), 0usize..4)) {
            if let Some(Op::A(x)) = &o {
                prop_assert!(*x < 10);
            }
            prop_assert!(pair.1 < 4);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(
            (0..10).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..10).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
