//! Offline drop-in subset of `parking_lot`, vendored so the workspace builds
//! without crates.io access (see `vendor/README.md`).
//!
//! Implements the slice of the API this workspace uses — `Mutex` with
//! non-poisoning `lock`/`try_lock`/`into_inner`/`get_mut` — on top of
//! `std::sync::Mutex`. Poisoning is deliberately swallowed to match
//! parking_lot semantics: a panic while holding the lock must not wedge
//! every later reader, which the test suites rely on.

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion primitive (non-poisoning, like `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Take the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard(poisoned.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }
}
