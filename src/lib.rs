//! Root package: hosts the workspace-spanning integration tests and examples.
pub use dgsf as core;
