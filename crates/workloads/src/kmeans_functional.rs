//! A *functional* K-means: real Lloyd iterations running as a functional
//! kernel on the simulated GPU, plus a multi-threaded CPU reference.
//!
//! This is the motivation case study's workload (§III: a CUDA class
//! assignment) made executable: the same clustering runs natively, over
//! DGSF remoting, and on host CPUs, and all three produce the same
//! centroids — demonstrating that DGSF's transparency (challenge C1) holds
//! for real computations, not just for timed traces.

use std::sync::Arc;

use dgsf_cuda::{
    CudaApi, DevPtr, HostBuf, KernelArgs, KernelCost, KernelDef, LaunchConfig, ModuleRegistry,
};
use dgsf_sim::ProcCtx;

/// Problem definition: flattened row-major points, `dims` columns.
#[derive(Debug, Clone)]
pub struct KMeansProblem {
    /// Point coordinates, `n × dims` row-major.
    pub points: Vec<f32>,
    /// Dimensionality.
    pub dims: usize,
    /// Cluster count.
    pub k: usize,
    /// Lloyd iterations.
    pub iters: u32,
}

impl KMeansProblem {
    /// Deterministic synthetic problem: `n` points around `k` seeds.
    pub fn synthetic(n: usize, dims: usize, k: usize, iters: u32, seed: u64) -> KMeansProblem {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n * dims);
        for i in 0..n {
            let c = i % k;
            for d in 0..dims {
                let center = (c * 7 + d) as f32;
                points.push(center + rng.gen_range(-0.5f32..0.5));
            }
        }
        KMeansProblem {
            points,
            dims,
            k,
            iters,
        }
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.points.len() / self.dims
    }

    /// Initial centroids: the first `k` points.
    pub fn initial_centroids(&self) -> Vec<f32> {
        self.points[..self.k * self.dims].to_vec()
    }

    /// One Lloyd step: assign every point to its nearest centroid and
    /// return the new centroid means. Accumulates in `f64` in point order,
    /// so GPU and CPU paths agree to float tolerance.
    pub fn lloyd_step(points: &[f32], dims: usize, k: usize, centroids: &[f32]) -> Vec<f32> {
        let n = points.len() / dims;
        let mut sums = vec![0f64; k * dims];
        let mut counts = vec![0u64; k];
        for i in 0..n {
            let p = &points[i * dims..(i + 1) * dims];
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let q = &centroids[c * dims..(c + 1) * dims];
                let mut d2 = 0f64;
                for j in 0..dims {
                    let diff = (p[j] - q[j]) as f64;
                    d2 += diff * diff;
                }
                if d2 < best_d {
                    best_d = d2;
                    best = c;
                }
            }
            counts[best] += 1;
            for j in 0..dims {
                sums[best * dims + j] += p[j] as f64;
            }
        }
        let mut out = vec![0f32; k * dims];
        for c in 0..k {
            for j in 0..dims {
                out[c * dims + j] = if counts[c] > 0 {
                    (sums[c * dims + j] / counts[c] as f64) as f32
                } else {
                    centroids[c * dims + j]
                };
            }
        }
        out
    }

    /// The kernel module: `kmeans_step` reads (points, centroids) and
    /// writes the updated centroids in place.
    pub fn registry(&self) -> Arc<ModuleRegistry> {
        let dims = self.dims;
        let k = self.k;
        Arc::new(ModuleRegistry::new().with(KernelDef::functional(
            "kmeans_step",
            KernelCost::PerByte {
                base: 1e-4,
                per_byte: 5e-12,
            },
            move |view, _cfg, args| {
                let points_ptr = args.ptrs[0];
                let centroids_ptr = args.ptrs[1];
                let n = args.scalars[0] as usize;
                let points = view.read_f32s(points_ptr, n * dims);
                let centroids = view.read_f32s(centroids_ptr, k * dims);
                let updated = KMeansProblem::lloyd_step(&points, dims, k, &centroids);
                view.write_f32s(centroids_ptr, &updated);
            },
        )))
    }

    /// Run on a GPU through any `CudaApi` (native or remoted). Returns the
    /// final centroids, read back from device memory.
    pub fn run_gpu(&self, p: &ProcCtx, api: &mut dyn CudaApi) -> Vec<f32> {
        let n = self.n();
        let pbytes = (self.points.len() * 4) as u64;
        let cbytes = (self.k * self.dims * 4) as u64;
        let points_buf: DevPtr = api.malloc(p, pbytes).expect("points");
        let centroids_buf: DevPtr = api.malloc(p, cbytes).expect("centroids");
        api.memcpy_h2d(p, points_buf, HostBuf::from_f32s(&self.points))
            .expect("upload points");
        api.memcpy_h2d(
            p,
            centroids_buf,
            HostBuf::from_f32s(&self.initial_centroids()),
        )
        .expect("upload centroids");
        for _ in 0..self.iters {
            api.launch_kernel(
                p,
                "kmeans_step",
                LaunchConfig::linear(n as u64, 256),
                KernelArgs {
                    ptrs: vec![points_buf, centroids_buf],
                    scalars: vec![n as u64],
                    bytes: pbytes,
                    work_hint: None,
                },
            )
            .expect("launch");
        }
        api.device_synchronize(p).expect("sync");
        let out = api
            .memcpy_d2h(p, centroids_buf, cbytes, true)
            .expect("read centroids");
        api.free(p, points_buf).expect("free points");
        api.free(p, centroids_buf).expect("free centroids");
        out.to_f32s().expect("real bytes requested")
    }

    /// Multi-threaded CPU reference (the paper's hand-optimized pthreads
    /// baseline, 6 threads). Identical math, parallelized over points with
    /// per-thread `f64` partial sums.
    pub fn run_cpu(&self, threads: usize) -> Vec<f32> {
        let dims = self.dims;
        let k = self.k;
        let n = self.n();
        let mut centroids = self.initial_centroids();
        let chunk = n.div_ceil(threads.max(1));
        for _ in 0..self.iters {
            let mut partials: Vec<(Vec<f64>, Vec<u64>)> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    let pts = &self.points[lo * dims..hi * dims];
                    let cents = &centroids;
                    handles.push(scope.spawn(move || {
                        let mut sums = vec![0f64; k * dims];
                        let mut counts = vec![0u64; k];
                        for i in 0..(hi - lo) {
                            let p = &pts[i * dims..(i + 1) * dims];
                            let mut best = 0usize;
                            let mut best_d = f64::INFINITY;
                            for c in 0..k {
                                let q = &cents[c * dims..(c + 1) * dims];
                                let mut d2 = 0f64;
                                for j in 0..dims {
                                    let diff = (p[j] - q[j]) as f64;
                                    d2 += diff * diff;
                                }
                                if d2 < best_d {
                                    best_d = d2;
                                    best = c;
                                }
                            }
                            counts[best] += 1;
                            for j in 0..dims {
                                sums[best * dims + j] += p[j] as f64;
                            }
                        }
                        (sums, counts)
                    }));
                }
                for h in handles {
                    partials.push(h.join().expect("worker"));
                }
            });
            let mut sums = vec![0f64; k * dims];
            let mut counts = vec![0u64; k];
            for (s, c) in partials {
                for (acc, v) in sums.iter_mut().zip(s) {
                    *acc += v;
                }
                for (acc, v) in counts.iter_mut().zip(c) {
                    *acc += v;
                }
            }
            for c in 0..k {
                for j in 0..dims {
                    if counts[c] > 0 {
                        centroids[c * dims + j] = (sums[c * dims + j] / counts[c] as f64) as f32;
                    }
                }
            }
        }
        centroids
    }
}

/// Maximum absolute difference between two centroid sets.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_cuda::{CostTable, NativeCuda};
    use dgsf_gpu::{Gpu, GpuId};
    use dgsf_sim::Sim;
    use parking_lot::Mutex;
    use std::sync::Arc as StdArc;

    #[test]
    fn gpu_and_cpu_agree() {
        let prob = KMeansProblem::synthetic(600, 4, 3, 8, 42);
        let cpu = prob.run_cpu(6);
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let out = StdArc::new(Mutex::new(None));
        let o = out.clone();
        let prob2 = prob.clone();
        sim.spawn("app", move |p| {
            let gpu = Gpu::v100(&h, GpuId(0));
            let mut api = NativeCuda::new(&h, gpu, StdArc::new(CostTable::default()));
            api.runtime_init(p).unwrap();
            api.register_module(p, prob2.registry()).unwrap();
            *o.lock() = Some(prob2.run_gpu(p, &mut api));
        });
        sim.run();
        let gpu_result = out.lock().take().unwrap();
        assert_eq!(gpu_result.len(), cpu.len());
        assert!(
            max_abs_diff(&gpu_result, &cpu) < 1e-3,
            "GPU and CPU K-means must agree"
        );
    }

    #[test]
    fn clustering_actually_converges_to_seeds() {
        // Synthetic points sit near (c·7+d); after a few iterations the
        // centroids must be close to those seeds.
        let prob = KMeansProblem::synthetic(900, 2, 3, 10, 7);
        let cents = prob.run_cpu(4);
        // cluster c should be near (7c, 7c+1)
        for c in 0..3 {
            // find the closest recovered centroid to the true seed
            let seed = [(c * 7) as f32, (c * 7 + 1) as f32];
            let best = (0..3)
                .map(|i| {
                    let dx = cents[i * 2] - seed[0];
                    let dy = cents[i * 2 + 1] - seed[1];
                    dx * dx + dy * dy
                })
                .fold(f32::INFINITY, f32::min);
            assert!(best < 0.1, "cluster {c} not recovered: {best}");
        }
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let prob = KMeansProblem::synthetic(500, 3, 4, 5, 9);
        let a = prob.run_cpu(1);
        let b = prob.run_cpu(6);
        assert!(max_abs_diff(&a, &b) < 1e-3);
    }
}
