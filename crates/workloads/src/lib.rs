//! # dgsf-workloads — the evaluation workloads
//!
//! Everything §VII of the paper runs:
//!
//! * the six benchmark applications as calibrated CUDA-API traces
//!   ([`kmeans`], [`covidctnet`], [`face_detection`],
//!   [`face_identification`], [`nlp`], [`image_classification`]),
//! * the Table V synthetic migration microbenchmark
//!   ([`SyntheticMigration`]), and
//! * a fully functional K-means ([`KMeansProblem`]) whose real math runs
//!   natively, over DGSF remoting, and on CPU threads — all producing the
//!   same centroids.

#![warn(missing_docs)]

mod kmeans_functional;
mod spec;
mod suite;
mod synthetic;

pub use kmeans_functional::{max_abs_diff, KMeansProblem};
pub use spec::{mbf, LoadSpec, ProcSpec, TraceSpec};
pub use suite::{
    as_workloads, covidctnet, face_detection, face_identification, image_classification, kmeans,
    nlp, paper_suite, smaller_suite,
};
pub use synthetic::{synthetic_kernel_secs, SyntheticMigration};
