//! Trace-modeled workloads.
//!
//! Each of the paper's six evaluation workloads (§VII) is expressed as a
//! [`TraceSpec`]: a calibrated CUDA/cuDNN/cuBLAS call sequence with explicit
//! phase structure (model load, batched processing), API-call counts (which
//! drive the remoting/batching cost), device work (which drives GPU
//! contention), and host-side preprocessing. The *same* trace runs natively,
//! over DGSF, and under the Lambda profile — only the `CudaApi`
//! implementation changes, exactly as in the paper's evaluation.

use std::sync::Arc;

use dgsf_cuda::{
    CudaApi, CudaResult, DescriptorKind, DevPtr, HostBuf, KernelArgs, KernelDef, LaunchConfig,
    LibOp, ModuleRegistry,
};
use dgsf_gpu::MB;
use dgsf_serverless::{phase, PhaseRecorder, Workload};
use dgsf_sim::{Dur, ProcCtx};

/// Model-loading phase parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// GPU-seconds of device work while building the model.
    pub work: f64,
    /// cuDNN descriptors created+configured+destroyed during loading.
    pub descriptors: u64,
    /// cuDNN API calls the load aggregate stands for.
    pub api_calls: u64,
    /// Of those, asynchronous/elidable calls.
    pub elidable: u64,
}

/// Batched-processing phase parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcSpec {
    /// Number of batches (or iterations, for K-means).
    pub batches: u32,
    /// GPU-seconds of device work per batch.
    pub work_per_batch: f64,
    /// Input bytes uploaded per batch.
    pub input_per_batch: u64,
    /// Output bytes read back per batch.
    pub output_per_batch: u64,
    /// cuDNN descriptors per batch (created+set+destroyed).
    pub descriptors: u64,
    /// cuDNN API calls per batch.
    pub api_calls: u64,
    /// Of those, elidable calls.
    pub elidable: u64,
    /// Raw kernel launches per batch (non-cuDNN workloads).
    pub launches: u32,
    /// Read results back every `d2h_every` batches.
    pub d2h_every: u32,
}

/// A calibrated workload trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Function name.
    pub name: String,
    /// Declared GPU memory requirement (what the scheduler sees).
    pub required_mem: u64,
    /// Device allocations the trace makes, in order.
    pub alloc_split: Vec<u64>,
    /// Bytes downloaded from the object store (model + inputs).
    pub download: u64,
    /// Model weights uploaded to the device during loading.
    pub weights: u64,
    /// Whether the workload uses cuDNN/cuBLAS.
    pub uses_dnn: bool,
    /// Host-side preprocessing time, spread across batches.
    pub host_secs: f64,
    /// Model-loading parameters.
    pub load: LoadSpec,
    /// Processing parameters.
    pub proc: ProcSpec,
    /// Calibrated 6-thread CPU runtime (Table II's CPU row, minus
    /// download).
    pub cpu_secs: f64,
}

impl TraceSpec {
    /// GPU-seconds of device work one run retires (for utilization
    /// predictions).
    pub fn total_gpu_work(&self) -> f64 {
        self.load.work + self.proc.batches as f64 * self.proc.work_per_batch
    }

    fn kernel_registry() -> Arc<ModuleRegistry> {
        Arc::new(
            ModuleRegistry::new()
                .with(KernelDef::timed("trace_kernel"))
                .with(KernelDef::timed("trace_load")),
        )
    }
}

impl Workload for TraceSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn registry(&self) -> Arc<ModuleRegistry> {
        Self::kernel_registry()
    }

    fn required_gpu_mem(&self) -> u64 {
        self.required_mem
    }

    fn download_bytes(&self) -> u64 {
        self.download
    }

    fn cpu_secs(&self) -> f64 {
        self.cpu_secs
    }

    fn run(&self, p: &ProcCtx, api: &mut dyn CudaApi, rec: &mut PhaseRecorder) -> CudaResult<()> {
        // ---- model load ----
        rec.enter(p, phase::MODEL_LOAD);
        let mut bufs: Vec<DevPtr> = Vec::with_capacity(self.alloc_split.len());
        for sz in &self.alloc_split {
            bufs.push(api.malloc(p, *sz)?);
        }
        let data_buf = *bufs.first().expect("at least one allocation");
        let (dnn, blas) = if self.uses_dnn {
            (Some(api.cudnn_create(p)?), Some(api.cublas_create(p)?))
        } else {
            (None, None)
        };
        if self.load.descriptors > 0 {
            let d =
                api.cudnn_create_descriptors(p, DescriptorKind::Tensor, self.load.descriptors)?;
            api.cudnn_set_descriptors(p, &d)?;
            api.cudnn_destroy_descriptors(p, d)?;
        }
        if self.weights > 0 {
            api.memcpy_h2d(p, data_buf, HostBuf::Logical(self.weights))?;
        }
        if let Some(dnn) = dnn {
            if self.load.api_calls > 0 || self.load.work > 0.0 {
                api.cudnn_op(
                    p,
                    dnn,
                    LibOp {
                        work: self.load.work,
                        bytes: self.weights,
                        api_calls: self.load.api_calls.max(1),
                        elidable_calls: self.load.elidable,
                    },
                )?;
            }
        } else if self.load.work > 0.0 {
            api.launch_kernel(
                p,
                "trace_load",
                LaunchConfig::linear(1 << 20, 256),
                KernelArgs::timed(self.load.work, self.weights),
            )?;
        }
        api.device_synchronize(p)?;

        // ---- processing ----
        rec.enter(p, phase::PROCESSING);
        let host_per_batch = Dur::from_secs_f64(self.host_secs / self.proc.batches.max(1) as f64);
        for b in 0..self.proc.batches {
            p.sleep(host_per_batch); // CPU-side preprocessing
            if self.proc.input_per_batch > 0 {
                api.memcpy_h2d(p, data_buf, HostBuf::Logical(self.proc.input_per_batch))?;
            }
            if self.proc.descriptors > 0 {
                let d =
                    api.cudnn_create_descriptors(p, DescriptorKind::Tensor, self.proc.descriptors)?;
                api.cudnn_set_descriptors(p, &d)?;
                api.cudnn_destroy_descriptors(p, d)?;
            }
            if let Some(dnn) = dnn {
                api.cudnn_op(
                    p,
                    dnn,
                    LibOp {
                        work: self.proc.work_per_batch,
                        bytes: self.proc.input_per_batch,
                        api_calls: self.proc.api_calls.max(1),
                        elidable_calls: self.proc.elidable,
                    },
                )?;
            } else {
                let per_launch = self.proc.work_per_batch / self.proc.launches.max(1) as f64;
                for _ in 0..self.proc.launches.max(1) {
                    api.launch_kernel(
                        p,
                        "trace_kernel",
                        LaunchConfig::linear(1 << 20, 256),
                        KernelArgs::timed(per_launch, self.proc.input_per_batch),
                    )?;
                }
            }
            if self.proc.output_per_batch > 0 && (b + 1) % self.proc.d2h_every.max(1) == 0 {
                api.memcpy_d2h(p, data_buf, self.proc.output_per_batch, false)?;
            }
        }
        api.device_synchronize(p)?;
        if let Some(b) = blas {
            // One aggregate gemm stands in for cuBLAS use across the run.
            api.cublas_op(p, b, LibOp::compute(0.0))?;
        }
        rec.close(p);
        Ok(())
    }
}

/// Convenience: megabytes (floats from the paper rounded to whole bytes).
pub fn mbf(mb: f64) -> u64 {
    (mb * MB as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_cuda::{CostTable, NativeCuda};
    use dgsf_gpu::{Gpu, GpuId};
    use dgsf_sim::Sim;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn tiny_spec() -> TraceSpec {
        TraceSpec {
            name: "tiny".into(),
            required_mem: 512 * MB,
            alloc_split: vec![64 * MB],
            download: 10 * MB,
            weights: 8 * MB,
            uses_dnn: true,
            host_secs: 0.1,
            load: LoadSpec {
                work: 0.2,
                descriptors: 10,
                api_calls: 20,
                elidable: 15,
            },
            proc: ProcSpec {
                batches: 4,
                work_per_batch: 0.05,
                input_per_batch: MB,
                output_per_batch: 1024,
                descriptors: 5,
                api_calls: 10,
                elidable: 8,
                launches: 0,
                d2h_every: 1,
            },
            cpu_secs: 3.0,
        }
    }

    #[test]
    fn trace_runs_natively_with_expected_phases() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("f", move |p| {
            let gpu = Gpu::v100(&h, GpuId(0));
            let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
            let spec = tiny_spec();
            api.runtime_init(p).unwrap();
            api.register_module(p, spec.registry()).unwrap();
            let mut rec = PhaseRecorder::new();
            spec.run(p, &mut api, &mut rec).unwrap();
            *o.lock() = Some((rec, api.stats()));
        });
        sim.run();
        let (rec, stats) = out.lock().take().unwrap();
        // load ≥ cudnn (1.2) + cublas (0.2) + work (0.2)
        assert!(rec.get(phase::MODEL_LOAD).as_secs_f64() > 1.55);
        // processing ≥ host 0.1 + 4 × 0.05 work
        assert!(rec.get(phase::PROCESSING).as_secs_f64() > 0.29);
        assert!(stats.issued_calls > 100);
    }

    #[test]
    fn gpu_work_accounting() {
        let s = tiny_spec();
        assert!((s.total_gpu_work() - 0.4).abs() < 1e-12);
    }
}
