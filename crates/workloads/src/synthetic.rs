//! The Table V synthetic migration microbenchmark.
//!
//! "We create a synthetic workload that allocates a fixed size, single
//! array of GPU memory, zeroes the array using cudaMemset and launches two
//! kernels that perform simple arithmetic operations on the array elements.
//! This is the worst case for migration since there is a single large
//! array, which means memory copying can not be parallelized." (§VIII-E)

use std::sync::Arc;

use dgsf_cuda::{CudaApi, CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf_gpu::MB;
use dgsf_serverless::{phase, PhaseRecorder, Workload};
use dgsf_sim::ProcCtx;

/// Per-kernel cost model of the synthetic arithmetic kernels, calibrated to
/// Table V's native column (e2e − 3.2 s init ranges 0.04 s at 323 MB to
/// 0.11 s at 13 194 MB): a fixed launch-side cost plus a per-byte term.
pub fn synthetic_kernel_secs(bytes: u64) -> f64 {
    0.015 + bytes as f64 * 2.5e-12
}

/// The synthetic workload: one array, one memset, two kernels.
#[derive(Debug, Clone)]
pub struct SyntheticMigration {
    /// Array size in bytes. Table V sweeps 323 / 3514 / 7802 / 13194 MB.
    pub bytes: u64,
}

impl SyntheticMigration {
    /// A synthetic workload over an `mb`-megabyte array.
    pub fn mb(mb: u64) -> SyntheticMigration {
        SyntheticMigration { bytes: mb * MB }
    }

    /// The Table V sweep sizes (MB).
    pub const TABLE_V_SIZES_MB: [u64; 4] = [323, 3514, 7802, 13194];

    fn kernel_args(&self, buf: dgsf_cuda::DevPtr) -> KernelArgs {
        KernelArgs {
            ptrs: vec![buf],
            scalars: vec![],
            bytes: self.bytes,
            work_hint: Some(synthetic_kernel_secs(self.bytes)),
        }
    }

    /// Run the trace with a hook invoked *right before the second kernel* —
    /// where Table V forces the migration.
    pub fn run_with_hook(
        &self,
        p: &ProcCtx,
        api: &mut dyn CudaApi,
        between_kernels: impl FnOnce(&ProcCtx),
    ) -> CudaResult<()> {
        let buf = api.malloc(p, self.bytes)?;
        api.memset(p, buf, 0, self.bytes)?;
        api.launch_kernel(
            p,
            "synthetic_arith",
            LaunchConfig::linear(self.bytes / 4, 256),
            self.kernel_args(buf),
        )?;
        between_kernels(p);
        api.launch_kernel(
            p,
            "synthetic_arith",
            LaunchConfig::linear(self.bytes / 4, 256),
            self.kernel_args(buf),
        )?;
        api.device_synchronize(p)?;
        api.free(p, buf)
    }
}

impl Workload for SyntheticMigration {
    fn name(&self) -> &str {
        "synthetic_migration"
    }

    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("synthetic_arith")))
    }

    fn required_gpu_mem(&self) -> u64 {
        // round up to the VMM granularity plus a little slack
        self.bytes + 64 * MB
    }

    fn download_bytes(&self) -> u64 {
        0 // nothing to fetch; the array is zeroed on device
    }

    fn run(&self, p: &ProcCtx, api: &mut dyn CudaApi, rec: &mut PhaseRecorder) -> CudaResult<()> {
        rec.enter(p, phase::PROCESSING);
        self.run_with_hook(p, api, |_| {})?;
        rec.close(p);
        Ok(())
    }

    fn cpu_secs(&self) -> f64 {
        // touching every element twice on 6 CPU threads at ~10 GB/s
        2.0 * self.bytes as f64 / 10.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_cost_matches_table_v_native_regime() {
        // native e2e ≈ 3.2 + memset + 2 kernels; Table V: 3.04..3.11
        for (mb, expect) in [(323u64, 3.04f64), (13194, 3.11)] {
            let bytes = mb * MB;
            let e2e = 3.2 + bytes as f64 / 700.0e9 + 2.0 * synthetic_kernel_secs(bytes);
            assert!(
                (e2e - expect).abs() < 0.3,
                "{mb} MB: model {e2e:.3} vs paper {expect}"
            );
        }
    }

    #[test]
    fn sizes_cover_the_paper_sweep() {
        assert_eq!(SyntheticMigration::TABLE_V_SIZES_MB.len(), 4);
        let w = SyntheticMigration::mb(323);
        assert_eq!(w.bytes, 323 * MB);
        assert!(w.required_gpu_mem() > w.bytes);
    }
}
