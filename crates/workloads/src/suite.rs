//! The paper's six evaluation workloads (§VII, Table II), calibrated.
//!
//! Sizes (downloads, models, peak memory) come straight from §VII; device
//! work, API-call counts and host-side preprocessing were calibrated so the
//! reproduced Table II / Figure 3 / Figure 4 land in the paper's regime
//! (see `EXPERIMENTS.md` for paper-vs-measured numbers).

use std::sync::Arc;

use dgsf_serverless::Workload;

use crate::spec::{mbf, LoadSpec, ProcSpec, TraceSpec};

/// K-means (Altis): 1 M 16-d points, 16 clusters, 2000 rounds. Pure CUDA —
/// no cuDNN/cuBLAS — so DGSF's benefit "comes entirely from pre-creating
/// the CUDA context".
pub fn kmeans() -> TraceSpec {
    TraceSpec {
        name: "kmeans".into(),
        required_mem: mbf(512.0),
        alloc_split: vec![mbf(236.0), mbf(16.0)],
        download: mbf(235.3),
        weights: mbf(235.3), // the point set, uploaded once
        uses_dnn: false,
        host_secs: 0.3,
        load: LoadSpec {
            work: 0.0,
            descriptors: 0,
            api_calls: 0,
            elidable: 0,
        },
        proc: ProcSpec {
            batches: 2000, // rounds
            work_per_batch: 0.0044,
            input_per_batch: 0,
            output_per_batch: 1024, // centroids read back periodically
            descriptors: 0,
            api_calls: 0,
            elidable: 0,
            launches: 2, // assign + update kernels
            d2h_every: 50,
        },
        cpu_secs: 427.5,
    }
}

/// CovidCTNet: TensorFlow, two models, inference on two CT scans. Declares
/// the *whole GPU* because TF's allocator transiently spikes to 13 538 MB.
pub fn covidctnet() -> TraceSpec {
    TraceSpec {
        name: "covidctnet".into(),
        required_mem: mbf(13538.0),
        alloc_split: vec![mbf(6000.0), mbf(1499.0)],
        download: mbf(202.8), // 47.3 MB models + 155.5 MB scans
        weights: mbf(47.3),
        uses_dnn: true,
        // TF's Python-side pre/post-processing keeps the GPU idle for much
        // of the run (the paper's burst utilization is ~32 %).
        host_secs: 8.0,
        load: LoadSpec {
            work: 1.5,
            descriptors: 3000,
            api_calls: 8000,
            elidable: 7680, // TF: ~96 % of calls elidable
        },
        proc: ProcSpec {
            batches: 2, // two CT scans
            work_per_batch: 4.8,
            input_per_batch: mbf(77.75),
            output_per_batch: mbf(1.0),
            descriptors: 500,
            api_calls: 2000,
            elidable: 1920,
            launches: 0,
            d2h_every: 1,
        },
        cpu_secs: 97.8,
    }
}

/// Face detection: RetinaFace (ResNet50 backbone) on ONNXRuntime, 256
/// WIDER-FACE images per run, batch size 16. The biggest memory footprint
/// of the suite (13 194 MB peak).
pub fn face_detection() -> TraceSpec {
    TraceSpec {
        name: "face_detection".into(),
        required_mem: mbf(13500.0),
        alloc_split: vec![mbf(12000.0), mbf(891.0)],
        download: mbf(134.4), // 104.4 MB model + 30 MB images
        weights: mbf(104.4),
        uses_dnn: true,
        host_secs: 7.05,
        load: LoadSpec {
            work: 0.25,
            descriptors: 1500,
            api_calls: 2000,
            elidable: 960, // ONNX: ~48 % elidable
        },
        proc: ProcSpec {
            batches: 16,
            work_per_batch: 0.3375,
            input_per_batch: mbf(1.875),
            output_per_batch: 100 * 1024,
            descriptors: 150,
            api_calls: 1300,
            elidable: 625,
            launches: 0,
            d2h_every: 1,
        },
        cpu_secs: 70.0,
    }
}

/// Face identification: ArcFace LResNet100E-IR on ONNXRuntime, 256 LFW
/// faces per run, batch size 16. The workload with the largest optimization
/// headroom (Figure 4: 14.5 s → 4.7 s).
pub fn face_identification() -> TraceSpec {
    TraceSpec {
        name: "face_identification".into(),
        required_mem: mbf(3600.0),
        alloc_split: vec![mbf(2500.0), mbf(711.0)],
        download: mbf(266.0), // 249 MB model + 17 MB faces
        weights: mbf(249.0),
        uses_dnn: true,
        host_secs: 4.0,
        load: LoadSpec {
            work: 1.6,
            descriptors: 2500,
            api_calls: 4000,
            elidable: 3700,
        },
        proc: ProcSpec {
            batches: 16,
            work_per_batch: 0.125,
            input_per_batch: mbf(1.0625),
            output_per_batch: 50 * 1024,
            descriptors: 130,
            api_calls: 920,
            elidable: 870,
            launches: 0,
            d2h_every: 1,
        },
        cpu_secs: 40.3,
    }
}

/// Question answering: BERT (MLPerf) on SQuAD, 512 questions per run,
/// batch size 16. Compute-heavy with a 1.2 GB model — the workload whose
/// transfers blow up under the Lambda profile.
pub fn nlp() -> TraceSpec {
    TraceSpec {
        name: "nlp".into(),
        required_mem: mbf(4200.0),
        alloc_split: vec![mbf(3000.0), mbf(725.0)],
        download: mbf(1261.7), // 1.2 GB model + 61.7 MB questions
        weights: mbf(1200.0),
        uses_dnn: true,
        host_secs: 2.0,
        load: LoadSpec {
            work: 2.0,
            descriptors: 2000,
            api_calls: 3000,
            elidable: 1440,
        },
        proc: ProcSpec {
            batches: 32,
            work_per_batch: 0.535,
            input_per_batch: mbf(1.928),
            output_per_batch: 50 * 1024,
            descriptors: 80,
            api_calls: 300,
            elidable: 144,
            launches: 0,
            d2h_every: 1,
        },
        cpu_secs: 338.5,
    }
}

/// Image classification: ResNet-50 v1.5 (MLPerf) on ImageNet-2012, 2048
/// preprocessed images (~1.2 GB) per run, batch size 16.
pub fn image_classification() -> TraceSpec {
    TraceSpec {
        name: "image_classification".into(),
        required_mem: mbf(7900.0),
        alloc_split: vec![mbf(6500.0), mbf(847.0)],
        download: mbf(1297.4), // 97.4 MB model + 1.2 GB images
        weights: mbf(97.4),
        uses_dnn: true,
        host_secs: 5.5,
        load: LoadSpec {
            work: 0.6,
            descriptors: 2500,
            api_calls: 3000,
            elidable: 1440,
        },
        proc: ProcSpec {
            batches: 128,
            work_per_batch: 0.0547,
            input_per_batch: mbf(9.375),
            output_per_batch: 20 * 1024,
            descriptors: 60,
            api_calls: 120,
            elidable: 58,
            launches: 0,
            d2h_every: 1,
        },
        cpu_secs: 58.0,
    }
}

/// All six workloads, in the paper's Table II column order.
pub fn paper_suite() -> Vec<Arc<TraceSpec>> {
    vec![
        Arc::new(kmeans()),
        Arc::new(covidctnet()),
        Arc::new(face_detection()),
        Arc::new(face_identification()),
        Arc::new(nlp()),
        Arc::new(image_classification()),
    ]
}

/// The "four workloads with smaller memory footprints" (Table III's SW
/// column): everything except CovidCTNet and face detection.
pub fn smaller_suite() -> Vec<Arc<TraceSpec>> {
    vec![
        Arc::new(kmeans()),
        Arc::new(face_identification()),
        Arc::new(nlp()),
        Arc::new(image_classification()),
    ]
}

/// Type-erased view of a suite, for harnesses that take `dyn Workload`.
pub fn as_workloads(suite: &[Arc<TraceSpec>]) -> Vec<Arc<dyn Workload>> {
    suite
        .iter()
        .map(|w| Arc::clone(w) as Arc<dyn Workload>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_gpu::MB;

    #[test]
    fn suite_matches_paper_inventory() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "kmeans",
                "covidctnet",
                "face_detection",
                "face_identification",
                "nlp",
                "image_classification"
            ]
        );
        assert_eq!(smaller_suite().len(), 4);
    }

    #[test]
    fn allocations_fit_declared_memory() {
        for w in paper_suite() {
            let total: u64 = w.alloc_split.iter().sum();
            assert!(
                total <= w.required_mem,
                "{}: allocs {} exceed declared {}",
                w.name,
                total / MB,
                w.required_mem / MB
            );
            assert!(
                w.weights <= w.alloc_split[0],
                "{}: weights fit buffer 0",
                w.name
            );
        }
    }

    #[test]
    fn covid_declares_nearly_a_whole_gpu() {
        let c = covidctnet();
        assert!(c.required_mem > 13 * 1024 * MB);
        // …but still fits next to an idle API server's footprint (§VII).
        assert!(c.required_mem + 2 * 755 * MB <= 16 * 1024 * MB);
    }

    #[test]
    fn average_gpu_seconds_is_about_twelve() {
        // §VIII-D: "On average our workloads utilize 12 seconds of GPU."
        let suite = paper_suite();
        let avg: f64 = suite.iter().map(|w| w.total_gpu_work()).sum::<f64>() / suite.len() as f64;
        assert!(
            (6.0..16.0).contains(&avg),
            "average GPU seconds per run should be near 12, got {avg:.1}"
        );
    }

    #[test]
    fn tf_workload_is_mostly_elidable_onnx_about_half() {
        let covid = covidctnet();
        let frac = covid.load.elidable as f64 / covid.load.api_calls as f64;
        assert!(frac > 0.9, "TF ≈ 96 % elidable, got {frac}");
        let fd = face_detection();
        let frac = fd.proc.elidable as f64 / fd.proc.api_calls as f64;
        assert!(
            (0.4..0.6).contains(&frac),
            "ONNX ≈ 48 % elidable, got {frac}"
        );
    }
}
