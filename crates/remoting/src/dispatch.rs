//! Server-side request execution: decode a [`Request`], run it against the
//! function's [`GpuSession`], produce a [`Response`].
//!
//! This is the inner loop of a DGSF API server. The surrounding process
//! management (pools, the monitor protocol, migration policy) lives in
//! `dgsf-server`; this module is only the faithful API semantics, including
//! the restricted/simulated calls: `cudaGetDeviceCount` always answers 1 and
//! device properties always describe the currently active GPU (§V-B).

use std::collections::HashMap;
use std::sync::Arc;

use dgsf_cuda::{
    CublasHandle, CudaContext, CudaError, CudnnHandle, DevPtr, EventHandle, GpuSession,
    LaunchConfig, MigrationReport, ModuleRegistry, StreamHandle,
};
use dgsf_sim::{Dur, ProcCtx, TraceCtx};

use crate::wire::{err_class, Request, Response, WireCfg, WireProps};

/// Counters an API server keeps about the function it is serving.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests executed (batch entries counted individually).
    pub requests: u64,
    /// Create-calls served from a pre-created pool.
    pub pool_hits: u64,
    /// Create-calls that had to pay full creation latency.
    pub cold_creates: u64,
}

/// Executes requests for one function on one [`GpuSession`].
pub struct Dispatcher {
    session: GpuSession,
    registry: Arc<ModuleRegistry>,
    /// Client-visible function pointer → kernel name. The translation that
    /// keeps launches correct after migration.
    fptr_names: HashMap<u64, String>,
    /// Configuration pushed by an unoptimized `__cudaPushCallConfiguration`.
    pending_cfg: Option<WireCfg>,
    per_call_cpu: Dur,
    finished: bool,
    /// Causal context of the invocation being served (threaded down from
    /// the monitor's queue entry); stamps the recorded `server` spans.
    trace: Option<TraceCtx>,
    /// Execution counters.
    pub stats: ServerStats,
}

/// Map a [`CudaError`] onto the wire.
pub fn error_response(e: &CudaError) -> Response {
    let class = match e {
        CudaError::MemoryAllocation { .. } => err_class::OOM,
        CudaError::InvalidValue(_) => err_class::INVALID_VALUE,
        CudaError::InvalidDevice { .. } => err_class::INVALID_DEVICE,
        CudaError::InvalidResourceHandle(_) => err_class::INVALID_HANDLE,
        CudaError::Unsupported(_) => err_class::UNSUPPORTED,
        CudaError::MemoryLimitExceeded { .. } => err_class::MEM_LIMIT,
        CudaError::Transport(_) => err_class::TRANSPORT,
        _ => err_class::OTHER,
    };
    Response::Err {
        class,
        msg: e.to_string(),
    }
}

impl Dispatcher {
    /// Serve a function on `session`, with the function's deployed kernels
    /// in `registry` (the fatbin shipped at deploy time).
    pub fn new(session: GpuSession, registry: Arc<ModuleRegistry>) -> Dispatcher {
        let per_call_cpu = session.active_context().costs().native_call_overhead;
        Dispatcher {
            session,
            registry,
            fptr_names: HashMap::new(),
            pending_cfg: None,
            per_call_cpu,
            finished: true, // idle until an Init arrives
            trace: None,
            stats: ServerStats::default(),
        }
    }

    /// Attach the causal context of the invocation this dispatcher serves.
    pub fn set_trace(&mut self, trace: Option<TraceCtx>) {
        self.trace = trace;
    }

    /// The attached trace context, if any.
    pub fn trace(&self) -> Option<&TraceCtx> {
        self.trace.as_ref()
    }

    /// The underlying session (monitor reads memory usage from here).
    pub fn session(&self) -> &GpuSession {
        &self.session
    }

    /// Mutable session access (migration).
    pub fn session_mut(&mut self) -> &mut GpuSession {
        &mut self.session
    }

    /// True once `EndFunction` has been processed (or before any `Init`).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Live-migrate the served session to another context.
    pub fn migrate(
        &mut self,
        p: &ProcCtx,
        target: &Arc<CudaContext>,
    ) -> Result<MigrationReport, CudaError> {
        self.session.migrate(p, target)
    }

    /// Execute one (possibly aggregate) request. `repeat` is the number of
    /// identical client round trips it stands for; server CPU is charged per
    /// represented call.
    pub fn handle(&mut self, p: &ProcCtx, req: Request, repeat: u32) -> Response {
        self.stats.requests += repeat.max(1) as u64;
        p.sleep(Dur(self
            .per_call_cpu
            .as_nanos()
            .saturating_mul(repeat.max(1) as u64)));
        let tel = p.telemetry();
        if !tel.is_enabled() {
            return self.execute(p, req);
        }
        let keys = req.class_keys();
        let t0 = p.now();
        let before = self.stats.clone();
        let resp = self.execute(p, req);
        match &self.trace {
            Some(t) => tel.span_args(p.name(), keys.class, "server", t0, p.now(), &t.span_args()),
            None => tel.span(p.name(), keys.class, "server", t0, p.now()),
        }
        tel.counter_add(keys.server_requests, repeat.max(1) as u64);
        // Deltas rather than absolutes so Batch recursion is accounted once.
        tel.counter_add("server.pool_hits", self.stats.pool_hits - before.pool_hits);
        tel.counter_add(
            "server.cold_creates",
            self.stats.cold_creates - before.cold_creates,
        );
        if matches!(resp, Response::Err { .. }) {
            tel.counter_add("server.errors", 1);
        }
        resp
    }

    fn execute(&mut self, p: &ProcCtx, req: Request) -> Response {
        use Request::*;
        match req {
            Init { pooled_context } => {
                self.finished = false;
                if !pooled_context {
                    // On-demand context creation (the unoptimized baseline).
                    let init = self.session.active_context().costs().cuda_init;
                    p.sleep(init);
                    self.stats.cold_creates += 1;
                } else {
                    self.stats.pool_hits += 1;
                }
                Response::Ok
            }
            RegisterModule { kernels } => {
                self.session.register_module(Arc::clone(&self.registry));
                let mut fptrs = Vec::with_capacity(kernels.len());
                for name in kernels {
                    if self.registry.get(&name).is_none() {
                        return error_response(&CudaError::InvalidValue(format!(
                            "unknown kernel {name:?}"
                        )));
                    }
                    let fptr = self.session.active_context().fptr_for(&name);
                    self.fptr_names.insert(fptr, name.clone());
                    fptrs.push((name, fptr));
                }
                Response::Fptrs(fptrs)
            }
            GetDeviceCount => Response::Count(1), // the GPU server's real
            // inventory is never revealed to a function
            GetDeviceProps { dev } => {
                if dev != 0 {
                    return error_response(&CudaError::InvalidDevice { requested: dev });
                }
                let props = self.session.active_context().gpu().props().clone();
                Response::Props(WireProps {
                    name: props.name,
                    total_mem: props.total_mem,
                    sm_count: props.sm_count,
                    cc: props.compute_capability,
                })
            }
            SetDevice { dev } => {
                if dev != 0 {
                    return error_response(&CudaError::InvalidDevice { requested: dev });
                }
                Response::Ok
            }
            Malloc { bytes } => match self.session.malloc(p, bytes) {
                Ok(ptr) => Response::Ptr(ptr.0),
                Err(e) => error_response(&e),
            },
            Free { ptr } => match self.session.free(p, DevPtr(ptr)) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            },
            Memset { ptr, value, bytes } => {
                match self.session.memset(p, DevPtr(ptr), value, bytes) {
                    Ok(()) => Response::Ok,
                    Err(e) => error_response(&e),
                }
            }
            MemcpyH2D { dst, data } => {
                match self.session.memcpy_h2d(p, DevPtr(dst), &data.into()) {
                    Ok(()) => Response::Ok,
                    Err(e) => error_response(&e),
                }
            }
            MemcpyD2H {
                src,
                bytes,
                want_data,
            } => match self.session.memcpy_d2h(p, DevPtr(src), bytes, want_data) {
                Ok(buf) => Response::Data(buf.into()),
                Err(e) => error_response(&e),
            },
            PushCallConfiguration { cfg } => {
                self.pending_cfg = Some(cfg);
                Response::Ok
            }
            Launch { fptr, args } => {
                let Some(cfg) = self.pending_cfg.take() else {
                    return error_response(&CudaError::InvalidValue(
                        "launch without pushed call configuration".into(),
                    ));
                };
                self.do_launch_on(p, fptr, 0, cfg, args)
            }
            LaunchConfigured {
                fptr,
                stream,
                cfg,
                args,
            } => self.do_launch_on(p, fptr, stream, cfg, args),
            Sync => {
                self.session.synchronize(p);
                Response::Ok
            }
            StreamCreate => Response::Handle(self.session.stream_create(p).0),
            StreamDestroy { h } => match self.session.stream_destroy(p, StreamHandle(h)) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            },
            StreamSync { h } => match self.session.stream_synchronize(p, StreamHandle(h)) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            },
            EventCreate => Response::Handle(self.session.event_create(p).0),
            EventRecord { h } => match self.session.event_record(p, EventHandle(h)) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            },
            EventSync { h } => match self.session.event_synchronize(p, EventHandle(h)) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            },
            PointerGetAttributes { ptr } => {
                let a = self.session.pointer_attributes(DevPtr(ptr));
                Response::Attrs {
                    is_device: a.is_device,
                    alloc_size: a.alloc_size,
                    device: a.device,
                }
            }
            MallocHost { bytes: _ } => Response::Ok,
            CudnnCreate { pooled } => {
                if pooled {
                    self.stats.pool_hits += 1;
                } else {
                    self.stats.cold_creates += 1;
                }
                match self.session.cudnn_create(p, pooled) {
                    Ok(h) => Response::Handle(h.0),
                    Err(e) => error_response(&e),
                }
            }
            CudnnDestroy { h } => match self.session.cudnn_destroy(p, CudnnHandle(h)) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            },
            CudnnCreateDescriptors { kind: _, n } => {
                // Host-side opaque structs on the server; hand out ids.
                let base = 0x4000_0000_0000_0000u64 + self.stats.requests;
                Response::Handles((0..n).map(|i| base + i).collect())
            }
            CudnnSetDescriptors { n: _ } => Response::Ok,
            CudnnDestroyDescriptors { n: _ } => Response::Ok,
            CudnnOp {
                h: _,
                work,
                bytes: _,
                api_calls: _,
            } => {
                self.session.lib_op(p, work);
                Response::Ok
            }
            CublasCreate { pooled } => {
                if pooled {
                    self.stats.pool_hits += 1;
                } else {
                    self.stats.cold_creates += 1;
                }
                match self.session.cublas_create(p, pooled) {
                    Ok(h) => Response::Handle(h.0),
                    Err(e) => error_response(&e),
                }
            }
            CublasDestroy { h } => match self.session.cublas_destroy(p, CublasHandle(h)) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            },
            CublasOp {
                h: _,
                work,
                bytes: _,
                api_calls: _,
            } => {
                self.session.lib_op(p, work);
                Response::Ok
            }
            Batch(reqs) => {
                for r in reqs {
                    self.stats.requests += 1;
                    let resp = self.execute(p, r);
                    if let Response::Err { .. } = resp {
                        return resp; // first failure aborts the batch
                    }
                }
                Response::Ok
            }
            EndFunction => {
                self.session.release(p);
                self.fptr_names.clear();
                self.pending_cfg = None;
                self.finished = true;
                Response::Ok
            }
            PublishBuffer { key, ptr } => match self.session.publish_buffer(p, key, DevPtr(ptr)) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            },
            AdoptBuffer { key } => match self.session.adopt_buffer(p, key) {
                Ok(ptr) => Response::Ptr(ptr.0),
                Err(e) => error_response(&e),
            },
        }
    }

    fn do_launch_on(
        &mut self,
        p: &ProcCtx,
        fptr: u64,
        stream: u64,
        cfg: WireCfg,
        args: crate::wire::WireArgs,
    ) -> Response {
        let Some(name) = self.fptr_names.get(&fptr).cloned() else {
            return error_response(&CudaError::InvalidValue(format!(
                "unknown function pointer {fptr:#x}"
            )));
        };
        let stream = if stream == 0 {
            None
        } else {
            Some(StreamHandle(stream))
        };
        match self
            .session
            .launch_on(p, stream, &name, LaunchConfig::from(cfg), args.into())
        {
            Ok(()) => Response::Ok,
            Err(e) => error_response(&e),
        }
    }

    // EventHandle import is used in tests below; silence pedantic unused in
    // non-test builds via this no-op.
    #[allow(dead_code)]
    fn _types(_: EventHandle) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireBuf;
    use dgsf_cuda::{CostTable, KernelCost, KernelDef};
    use dgsf_gpu::{Gpu, GpuId, MB};
    use dgsf_sim::Sim;

    fn mk_dispatcher(p: &ProcCtx, h: &dgsf_sim::SimHandle) -> Dispatcher {
        let gpu = Gpu::v100(h, GpuId(0));
        let costs = Arc::new(CostTable::default());
        let ctx = CudaContext::create(p, h, gpu, costs, false).unwrap();
        let session = GpuSession::new(h, ctx, None);
        let registry = Arc::new(ModuleRegistry::new().with(KernelDef::functional(
            "fill7",
            KernelCost::Fixed(0.001),
            |view, _c, args| view.fill(args.ptrs[0], args.bytes, 7),
        )));
        Dispatcher::new(session, registry)
    }

    #[test]
    fn device_count_is_always_one() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("srv", move |p| {
            let mut d = mk_dispatcher(p, &h);
            assert_eq!(d.handle(p, Request::GetDeviceCount, 1), Response::Count(1));
            // asking for device 1 is an error, as the paper specifies
            match d.handle(p, Request::GetDeviceProps { dev: 1 }, 1) {
                Response::Err { class, .. } => assert_eq!(class, err_class::INVALID_DEVICE),
                other => panic!("expected error, got {other:?}"),
            }
        });
        sim.run();
    }

    #[test]
    fn full_request_flow_with_launch_translation() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("srv", move |p| {
            let mut d = mk_dispatcher(p, &h);
            assert_eq!(
                d.handle(
                    p,
                    Request::Init {
                        pooled_context: true
                    },
                    1
                ),
                Response::Ok
            );
            let fptrs = match d.handle(
                p,
                Request::RegisterModule {
                    kernels: vec!["fill7".into()],
                },
                1,
            ) {
                Response::Fptrs(f) => f,
                other => panic!("{other:?}"),
            };
            let fptr = fptrs[0].1;
            let ptr = match d.handle(p, Request::Malloc { bytes: MB }, 1) {
                Response::Ptr(ptr) => ptr,
                other => panic!("{other:?}"),
            };
            let r = d.handle(
                p,
                Request::LaunchConfigured {
                    fptr,
                    stream: 0,
                    cfg: WireCfg {
                        grid: (1, 1, 1),
                        block: (32, 1, 1),
                    },
                    args: crate::wire::WireArgs {
                        ptrs: vec![ptr],
                        scalars: vec![],
                        bytes: 16,
                        work_hint: None,
                    },
                },
                1,
            );
            assert_eq!(r, Response::Ok);
            d.handle(p, Request::Sync, 1);
            match d.handle(
                p,
                Request::MemcpyD2H {
                    src: ptr,
                    bytes: 4,
                    want_data: true,
                },
                1,
            ) {
                Response::Data(WireBuf::Bytes(b)) => assert_eq!(b, vec![7, 7, 7, 7]),
                other => panic!("{other:?}"),
            }
            assert_eq!(d.handle(p, Request::EndFunction, 1), Response::Ok);
            assert!(d.finished());
            assert_eq!(d.session().alloc_count(), 0);
        });
        sim.run();
    }

    #[test]
    fn unoptimized_launch_requires_pushed_configuration() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("srv", move |p| {
            let mut d = mk_dispatcher(p, &h);
            d.handle(
                p,
                Request::Init {
                    pooled_context: true,
                },
                1,
            );
            let fptr = match d.handle(
                p,
                Request::RegisterModule {
                    kernels: vec!["fill7".into()],
                },
                1,
            ) {
                Response::Fptrs(f) => f[0].1,
                _ => unreachable!(),
            };
            let ptr = match d.handle(p, Request::Malloc { bytes: MB }, 1) {
                Response::Ptr(x) => x,
                _ => unreachable!(),
            };
            let args = crate::wire::WireArgs {
                ptrs: vec![ptr],
                scalars: vec![],
                bytes: 0,
                work_hint: Some(0.0),
            };
            // Launch without a pushed config fails...
            match d.handle(
                p,
                Request::Launch {
                    fptr,
                    args: args.clone(),
                },
                1,
            ) {
                Response::Err { class, .. } => assert_eq!(class, err_class::INVALID_VALUE),
                other => panic!("{other:?}"),
            }
            // ...and succeeds with one.
            d.handle(
                p,
                Request::PushCallConfiguration {
                    cfg: WireCfg {
                        grid: (1, 1, 1),
                        block: (1, 1, 1),
                    },
                },
                1,
            );
            assert_eq!(d.handle(p, Request::Launch { fptr, args }, 1), Response::Ok);
        });
        sim.run();
    }

    #[test]
    fn publish_adopt_hands_buffer_between_functions() {
        // Two functions served back-to-back on the same context (the API
        // server's home GPU): the first parks its output, the second
        // adopts it and reads the bytes the first wrote.
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("srv", move |p| {
            let gpu = Gpu::v100(&h, GpuId(0));
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(p, &h, gpu, costs, false).unwrap();
            let registry = Arc::new(ModuleRegistry::new());

            let mut d1 = Dispatcher::new(GpuSession::new(&h, ctx.clone(), None), registry.clone());
            d1.handle(
                p,
                Request::Init {
                    pooled_context: true,
                },
                1,
            );
            let ptr = match d1.handle(p, Request::Malloc { bytes: MB }, 1) {
                Response::Ptr(x) => x,
                _ => unreachable!(),
            };
            d1.handle(
                p,
                Request::MemcpyH2D {
                    dst: ptr,
                    data: vec![5, 6, 7, 8].into(),
                },
                1,
            );
            assert_eq!(
                d1.handle(p, Request::PublishBuffer { key: 0xA1, ptr }, 1),
                Response::Ok
            );
            // Publishing twice under the same key is rejected.
            let ptr2 = match d1.handle(p, Request::Malloc { bytes: MB }, 1) {
                Response::Ptr(x) => x,
                _ => unreachable!(),
            };
            match d1.handle(
                p,
                Request::PublishBuffer {
                    key: 0xA1,
                    ptr: ptr2,
                },
                1,
            ) {
                Response::Err { class, .. } => assert_eq!(class, err_class::INVALID_HANDLE),
                other => panic!("{other:?}"),
            }
            assert_eq!(d1.handle(p, Request::EndFunction, 1), Response::Ok);

            let mut d2 = Dispatcher::new(GpuSession::new(&h, ctx.clone(), None), registry);
            d2.handle(
                p,
                Request::Init {
                    pooled_context: true,
                },
                1,
            );
            let adopted = match d2.handle(p, Request::AdoptBuffer { key: 0xA1 }, 1) {
                Response::Ptr(x) => x,
                other => panic!("{other:?}"),
            };
            match d2.handle(
                p,
                Request::MemcpyD2H {
                    src: adopted,
                    bytes: 4,
                    want_data: true,
                },
                1,
            ) {
                Response::Data(WireBuf::Bytes(b)) => assert_eq!(b, vec![5, 6, 7, 8]),
                other => panic!("{other:?}"),
            }
            // A second adopt of the same key fails: handoff is exactly-once.
            match d2.handle(p, Request::AdoptBuffer { key: 0xA1 }, 1) {
                Response::Err { class, .. } => assert_eq!(class, err_class::INVALID_HANDLE),
                other => panic!("{other:?}"),
            }
            assert_eq!(d2.handle(p, Request::EndFunction, 1), Response::Ok);
            assert_eq!(ctx.resident_count(), 0);
        });
        sim.run();
    }

    #[test]
    fn unpooled_init_pays_cuda_initialization() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("srv", move |p| {
            let mut d = mk_dispatcher(p, &h);
            let t0 = p.now();
            d.handle(
                p,
                Request::Init {
                    pooled_context: false,
                },
                1,
            );
            assert!(p.now().since(t0).as_secs_f64() >= 3.2);
            assert_eq!(d.stats.cold_creates, 1);
        });
        sim.run();
    }

    #[test]
    fn batch_executes_in_order_and_stops_on_error() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("srv", move |p| {
            let mut d = mk_dispatcher(p, &h);
            d.handle(
                p,
                Request::Init {
                    pooled_context: true,
                },
                1,
            );
            let ptr = match d.handle(p, Request::Malloc { bytes: MB }, 1) {
                Response::Ptr(x) => x,
                _ => unreachable!(),
            };
            let r = d.handle(
                p,
                Request::Batch(vec![
                    Request::Memset {
                        ptr,
                        value: 9,
                        bytes: 8,
                    },
                    Request::Memset {
                        ptr: 0xdead,
                        value: 0,
                        bytes: 8,
                    }, // bad pointer: stops here
                    Request::Memset {
                        ptr,
                        value: 1,
                        bytes: 8,
                    },
                ]),
                1,
            );
            assert!(matches!(r, Response::Err { .. }));
            d.handle(p, Request::Sync, 1);
            match d.handle(
                p,
                Request::MemcpyD2H {
                    src: ptr,
                    bytes: 8,
                    want_data: true,
                },
                1,
            ) {
                Response::Data(WireBuf::Bytes(b)) => {
                    assert_eq!(b, vec![9; 8], "first entry ran, third did not")
                }
                other => panic!("{other:?}"),
            }
        });
        sim.run();
    }
}
