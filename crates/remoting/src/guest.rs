//! The DGSF guest library: the `LD_PRELOAD`-style interposer that makes a
//! remote GPU look local (paper §V-A/B/C).
//!
//! [`RemoteCuda`] implements [`CudaApi`] by classifying every interposed
//! call:
//!
//! * **localizable** — answered from guest-side state without any network
//!   traffic (`cudaPointerGetAttributes` from the tracked allocation map,
//!   cached device count/properties, `cudaMallocHost`, cuDNN descriptor
//!   create/set/destroy against guest-side pools);
//! * **batchable** — asynchronous calls (memsets, kernel launches, event
//!   records, elidable library calls) accumulated and flushed in a single
//!   round trip before the next synchronous call;
//! * **remotable** — everything else, one RPC each; un-batched call runs are
//!   charged as N sequential round trips.
//!
//! Which classes are active is controlled by [`OptConfig`], the knob the
//! ablation study (Figure 4) sweeps.

use std::collections::HashMap;
use std::sync::Arc;

use dgsf_cuda::{
    ApiStats, CublasHandle, CudaApi, CudaError, CudaResult, CudnnDescriptor, CudnnHandle,
    DescriptorKind, DevPtr, EventHandle, HostBuf, KernelArgs, LaunchConfig, LibOp, ModuleRegistry,
    PtrAttributes, StreamHandle,
};
use dgsf_gpu::DeviceProps;
use dgsf_sim::ProcCtx;

use crate::transport::RpcClient;
use crate::wire::{
    descriptor_kind_to_u8, err_class, Request, Response, WireArgs, WireBuf, WireCfg,
};

/// Which serverless-specialization layers are active — the ablation knob of
/// Figure 4. Layers are cumulative in the paper's study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Use the API server's pre-initialized CUDA context pool (startup
    /// optimization, §V-C).
    pub pooled_runtime: bool,
    /// Use the API server's pre-created cuDNN/cuBLAS handle pools.
    pub pooled_handles: bool,
    /// Keep cuDNN descriptors in guest-side pools, never remoting their
    /// create/set/destroy calls.
    pub descriptor_pools: bool,
    /// Accumulate asynchronous APIs and flush them in batches.
    pub batching: bool,
    /// Emulate host-answerable APIs guest-side and piggyback launch
    /// configurations ("avoiding other unnecessary APIs").
    pub localization: bool,
    /// Flush the batch once it holds this many deferred requests (0 =
    /// unbounded: flush only at synchronous calls). Bounding the batch
    /// trades round trips for smaller frames and earlier server-side
    /// progress — the "batching flush policy" ablation.
    pub batch_flush_threshold: usize,
}

impl OptConfig {
    /// No optimizations — the "DGSF without optimizations" baseline.
    pub fn none() -> OptConfig {
        OptConfig {
            pooled_runtime: false,
            pooled_handles: false,
            descriptor_pools: false,
            batching: false,
            localization: false,
            batch_flush_threshold: 0,
        }
    }

    /// + context & handle pooling (ablation level 1).
    pub fn handle_pools() -> OptConfig {
        OptConfig {
            pooled_runtime: true,
            pooled_handles: true,
            ..OptConfig::none()
        }
    }

    /// + guest-side descriptor pools (ablation level 2).
    pub fn descriptor_pools() -> OptConfig {
        OptConfig {
            descriptor_pools: true,
            ..OptConfig::handle_pools()
        }
    }

    /// + batching and API elision (ablation level 3 — full DGSF).
    pub fn full() -> OptConfig {
        OptConfig {
            batching: true,
            localization: true,
            ..OptConfig::descriptor_pools()
        }
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig::full()
    }
}

/// The guest library. One instance per function execution, connected to the
/// API server the monitor assigned.
pub struct RemoteCuda {
    rpc: RpcClient,
    opts: OptConfig,
    stats: ApiStats,
    count_cache: Option<u32>,
    props_cache: Option<DeviceProps>,
    /// Device allocations the guest has seen (ptr → requested size); lets
    /// `cudaPointerGetAttributes` answer locally.
    allocs: HashMap<u64, u64>,
    /// Kernel name → client-visible function pointer.
    fptrs: HashMap<String, u64>,
    /// Live client stream handles (guest-side validation).
    streams: std::collections::HashSet<u64>,
    /// Deferred asynchronous requests.
    batch: Vec<Request>,
    next_local_descriptor: u64,
    live_local_descriptors: u64,
}

fn resp_error(class: u8, msg: String) -> CudaError {
    match class {
        err_class::OOM => CudaError::MemoryAllocation {
            requested: 0,
            free: 0,
        },
        err_class::INVALID_VALUE => CudaError::InvalidValue(msg),
        err_class::INVALID_DEVICE => CudaError::InvalidDevice {
            requested: u32::MAX,
        },
        err_class::INVALID_HANDLE => CudaError::InvalidResourceHandle(msg),
        err_class::UNSUPPORTED => CudaError::Unsupported(msg),
        err_class::MEM_LIMIT => CudaError::MemoryLimitExceeded {
            would_use: 0,
            limit: 0,
        },
        err_class::TRANSPORT => CudaError::Transport(msg),
        _ => CudaError::RemotingFailure(msg),
    }
}

impl RemoteCuda {
    /// Wrap an RPC connection to an API server.
    pub fn new(rpc: RpcClient, opts: OptConfig) -> RemoteCuda {
        RemoteCuda {
            rpc,
            opts,
            stats: ApiStats::default(),
            count_cache: None,
            props_cache: None,
            allocs: HashMap::new(),
            fptrs: HashMap::new(),
            streams: std::collections::HashSet::new(),
            batch: Vec::new(),
            next_local_descriptor: 0x8000_0000_0000_0000,
            live_local_descriptors: 0,
        }
    }

    /// Active optimization configuration.
    pub fn opts(&self) -> OptConfig {
        self.opts
    }

    /// Descriptors currently held in guest-side pools.
    pub fn live_local_descriptors(&self) -> u64 {
        self.live_local_descriptors
    }

    fn call(&mut self, p: &ProcCtx, req: &Request) -> CudaResult<Response> {
        self.call_n(p, req, 1)
    }

    /// `n` sequential round trips of the same request (aggregate executes
    /// once server-side).
    fn call_n(&mut self, p: &ProcCtx, req: &Request, n: u32) -> CudaResult<Response> {
        self.stats.remoted_calls += n as u64;
        match self.rpc.call_repeated(p, req, n) {
            Ok(Response::Err { class, msg }) => Err(resp_error(class, msg)),
            Ok(ok) => Ok(ok),
            Err(te) => Err(CudaError::Transport(te.to_string())),
        }
    }

    /// Flush deferred asynchronous calls in one round trip.
    fn flush(&mut self, p: &ProcCtx) -> CudaResult<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let reqs = std::mem::take(&mut self.batch);
        self.stats.remoted_calls += 1;
        match self.rpc.call_repeated(p, &Request::Batch(reqs), 1) {
            Ok(Response::Err { class, msg }) => Err(resp_error(class, msg)),
            Ok(_) => Ok(()),
            Err(te) => Err(CudaError::Transport(te.to_string())),
        }
    }

    fn defer(&mut self, p: &ProcCtx, req: Request, represented_calls: u64) -> CudaResult<()> {
        self.stats.batched_calls += represented_calls;
        self.batch.push(req);
        let threshold = self.opts.batch_flush_threshold;
        if threshold > 0 && self.batch.len() >= threshold {
            self.flush(p)?;
        }
        Ok(())
    }

    /// Finish the function: flush pending work and release all server-side
    /// state. Called by the platform glue, not the application.
    pub fn finish(&mut self, p: &ProcCtx) -> CudaResult<()> {
        self.flush(p)?;
        self.call(p, &Request::EndFunction)?;
        Ok(())
    }
}

impl CudaApi for RemoteCuda {
    fn runtime_init(&mut self, p: &ProcCtx) -> CudaResult<()> {
        self.stats.issue("cudaRuntimeInit", 1);
        self.call(
            p,
            &Request::Init {
                pooled_context: self.opts.pooled_runtime,
            },
        )?;
        Ok(())
    }

    fn register_module(&mut self, p: &ProcCtx, registry: Arc<ModuleRegistry>) -> CudaResult<()> {
        self.stats.issue("cuModuleLoad", 1);
        let kernels: Vec<String> = registry.names().map(str::to_string).collect();
        match self.call(p, &Request::RegisterModule { kernels })? {
            Response::Fptrs(fs) => {
                self.fptrs = fs.into_iter().collect();
                Ok(())
            }
            other => Err(CudaError::RemotingFailure(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    fn get_device_count(&mut self, p: &ProcCtx) -> CudaResult<u32> {
        self.stats.issue("cudaGetDeviceCount", 1);
        if self.opts.localization {
            if let Some(c) = self.count_cache {
                self.stats.localized_calls += 1;
                return Ok(c);
            }
        }
        match self.call(p, &Request::GetDeviceCount)? {
            Response::Count(c) => {
                self.count_cache = Some(c);
                Ok(c)
            }
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn get_device_properties(&mut self, p: &ProcCtx, dev: u32) -> CudaResult<DeviceProps> {
        self.stats.issue("cudaGetDeviceProperties", 1);
        if dev != 0 {
            return Err(CudaError::InvalidDevice { requested: dev });
        }
        if self.opts.localization {
            if let Some(props) = &self.props_cache {
                self.stats.localized_calls += 1;
                return Ok(props.clone());
            }
        }
        match self.call(p, &Request::GetDeviceProps { dev })? {
            Response::Props(w) => {
                let props = DeviceProps {
                    name: w.name,
                    total_mem: w.total_mem,
                    sm_count: w.sm_count,
                    compute_capability: w.cc,
                };
                self.props_cache = Some(props.clone());
                Ok(props)
            }
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn set_device(&mut self, p: &ProcCtx, dev: u32) -> CudaResult<()> {
        self.stats.issue("cudaSetDevice", 1);
        if dev != 0 {
            return Err(CudaError::InvalidDevice { requested: dev });
        }
        if self.opts.localization {
            // The server is pinned to device 0 by construction; nothing to do.
            self.stats.localized_calls += 1;
            return Ok(());
        }
        self.call(p, &Request::SetDevice { dev })?;
        Ok(())
    }

    fn malloc(&mut self, p: &ProcCtx, bytes: u64) -> CudaResult<DevPtr> {
        self.stats.issue("cudaMalloc", 1);
        self.flush(p)?;
        match self.call(p, &Request::Malloc { bytes })? {
            Response::Ptr(ptr) => {
                self.allocs.insert(ptr, bytes);
                Ok(DevPtr(ptr))
            }
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn free(&mut self, p: &ProcCtx, ptr: DevPtr) -> CudaResult<()> {
        self.stats.issue("cudaFree", 1);
        self.flush(p)?;
        self.call(p, &Request::Free { ptr: ptr.0 })?;
        self.allocs.remove(&ptr.0);
        Ok(())
    }

    fn publish_buffer(&mut self, p: &ProcCtx, key: u64, ptr: DevPtr) -> CudaResult<()> {
        self.stats.issue("dgsfPublishBuffer", 1);
        self.flush(p)?;
        self.call(p, &Request::PublishBuffer { key, ptr: ptr.0 })?;
        self.allocs.remove(&ptr.0);
        Ok(())
    }

    fn adopt_buffer(&mut self, p: &ProcCtx, key: u64) -> CudaResult<DevPtr> {
        self.stats.issue("dgsfAdoptBuffer", 1);
        self.flush(p)?;
        match self.call(p, &Request::AdoptBuffer { key })? {
            Response::Ptr(ptr) => {
                // The server answers only with the fresh pointer; record it
                // with an unknown (zero) size so local
                // `pointer_get_attributes` still classifies it as a device
                // pointer.
                self.allocs.insert(ptr, 0);
                Ok(DevPtr(ptr))
            }
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn memset(&mut self, p: &ProcCtx, ptr: DevPtr, value: u8, bytes: u64) -> CudaResult<()> {
        self.stats.issue("cudaMemset", 1);
        let req = Request::Memset {
            ptr: ptr.0,
            value,
            bytes,
        };
        if self.opts.batching {
            self.defer(p, req, 1)
        } else {
            self.call(p, &req).map(|_| ())
        }
    }

    fn memcpy_h2d(&mut self, p: &ProcCtx, dst: DevPtr, src: HostBuf) -> CudaResult<()> {
        self.stats.issue("cudaMemcpyH2D", 1);
        self.stats.bytes_to_device += src.len();
        self.flush(p)?;
        self.call(
            p,
            &Request::MemcpyH2D {
                dst: dst.0,
                data: WireBuf::from(src),
            },
        )?;
        Ok(())
    }

    fn memcpy_d2h(
        &mut self,
        p: &ProcCtx,
        src: DevPtr,
        bytes: u64,
        want_data: bool,
    ) -> CudaResult<HostBuf> {
        self.stats.issue("cudaMemcpyD2H", 1);
        self.stats.bytes_to_host += bytes;
        self.flush(p)?;
        match self.call(
            p,
            &Request::MemcpyD2H {
                src: src.0,
                bytes,
                want_data,
            },
        )? {
            Response::Data(d) => Ok(d.into()),
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn launch_kernel(
        &mut self,
        p: &ProcCtx,
        name: &str,
        cfg: LaunchConfig,
        args: KernelArgs,
    ) -> CudaResult<()> {
        // A launch is really two interposed calls:
        // __cudaPushCallConfiguration + cudaLaunchKernel.
        self.stats.issue("cudaLaunchKernel", 2);
        self.stats.kernel_launches += 1;
        let fptr = *self
            .fptrs
            .get(name)
            .ok_or_else(|| CudaError::InvalidValue(format!("unregistered kernel {name:?}")))?;
        let wire_cfg = WireCfg::from(cfg);
        let wire_args = WireArgs::from(args);
        if self.opts.batching {
            self.defer(
                p,
                Request::LaunchConfigured {
                    fptr,
                    stream: 0,
                    cfg: wire_cfg,
                    args: wire_args,
                },
                2,
            )
        } else if self.opts.localization {
            // Piggyback the configuration: one round trip instead of two.
            self.stats.localized_calls += 1;
            self.call(
                p,
                &Request::LaunchConfigured {
                    fptr,
                    stream: 0,
                    cfg: wire_cfg,
                    args: wire_args,
                },
            )
            .map(|_| ())
        } else {
            self.call(p, &Request::PushCallConfiguration { cfg: wire_cfg })?;
            self.call(
                p,
                &Request::Launch {
                    fptr,
                    args: wire_args,
                },
            )
            .map(|_| ())
        }
    }

    fn launch_kernel_on(
        &mut self,
        p: &ProcCtx,
        stream: StreamHandle,
        name: &str,
        cfg: LaunchConfig,
        args: KernelArgs,
    ) -> CudaResult<()> {
        self.stats.issue("cudaLaunchKernel", 2);
        self.stats.kernel_launches += 1;
        if !self.streams.contains(&stream.0) {
            return Err(CudaError::InvalidResourceHandle(format!(
                "stream {:#x}",
                stream.0
            )));
        }
        let fptr = *self
            .fptrs
            .get(name)
            .ok_or_else(|| CudaError::InvalidValue(format!("unregistered kernel {name:?}")))?;
        let req = Request::LaunchConfigured {
            fptr,
            stream: stream.0,
            cfg: WireCfg::from(cfg),
            args: WireArgs::from(args),
        };
        if self.opts.batching {
            self.defer(p, req, 2)
        } else {
            // Stream launches always piggyback the configuration.
            self.stats.localized_calls += 1;
            self.call(p, &req).map(|_| ())
        }
    }

    fn device_synchronize(&mut self, p: &ProcCtx) -> CudaResult<()> {
        self.stats.issue("cudaDeviceSynchronize", 1);
        self.flush(p)?;
        self.call(p, &Request::Sync)?;
        Ok(())
    }

    fn stream_create(&mut self, p: &ProcCtx) -> CudaResult<StreamHandle> {
        self.stats.issue("cudaStreamCreate", 1);
        self.flush(p)?;
        match self.call(p, &Request::StreamCreate)? {
            Response::Handle(h) => {
                self.streams.insert(h);
                Ok(StreamHandle(h))
            }
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn stream_destroy(&mut self, p: &ProcCtx, s: StreamHandle) -> CudaResult<()> {
        self.stats.issue("cudaStreamDestroy", 1);
        self.flush(p)?;
        self.call(p, &Request::StreamDestroy { h: s.0 })?;
        self.streams.remove(&s.0);
        Ok(())
    }

    fn stream_synchronize(&mut self, p: &ProcCtx, s: StreamHandle) -> CudaResult<()> {
        self.stats.issue("cudaStreamSynchronize", 1);
        self.flush(p)?;
        self.call(p, &Request::StreamSync { h: s.0 })?;
        Ok(())
    }

    fn event_create(&mut self, p: &ProcCtx) -> CudaResult<EventHandle> {
        self.stats.issue("cudaEventCreate", 1);
        self.flush(p)?;
        match self.call(p, &Request::EventCreate)? {
            Response::Handle(h) => Ok(EventHandle(h)),
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn event_record(&mut self, p: &ProcCtx, e: EventHandle) -> CudaResult<()> {
        self.stats.issue("cudaEventRecord", 1);
        let req = Request::EventRecord { h: e.0 };
        if self.opts.batching {
            self.defer(p, req, 1)
        } else {
            self.call(p, &req).map(|_| ())
        }
    }

    fn event_synchronize(&mut self, p: &ProcCtx, e: EventHandle) -> CudaResult<()> {
        self.stats.issue("cudaEventSynchronize", 1);
        self.flush(p)?;
        self.call(p, &Request::EventSync { h: e.0 })?;
        Ok(())
    }

    fn pointer_get_attributes(&mut self, p: &ProcCtx, ptr: DevPtr) -> CudaResult<PtrAttributes> {
        self.stats.issue("cudaPointerGetAttributes", 1);
        if self.opts.localization {
            // The guest tracks every device allocation; no remoting needed.
            self.stats.localized_calls += 1;
            let hit = self
                .allocs
                .iter()
                .find(|(base, size)| ptr.0 >= **base && ptr.0 < **base + **size);
            return Ok(PtrAttributes {
                is_device: hit.is_some(),
                alloc_size: hit.map(|(_, s)| *s),
                device: 0,
            });
        }
        match self.call(p, &Request::PointerGetAttributes { ptr: ptr.0 })? {
            Response::Attrs {
                is_device,
                alloc_size,
                device,
            } => Ok(PtrAttributes {
                is_device,
                alloc_size,
                device,
            }),
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn malloc_host(&mut self, p: &ProcCtx, bytes: u64) -> CudaResult<()> {
        self.stats.issue("cudaMallocHost", 1);
        if self.opts.localization {
            // Host-only state: fully emulated client-side (§V-C).
            self.stats.localized_calls += 1;
            return Ok(());
        }
        self.call(p, &Request::MallocHost { bytes })?;
        Ok(())
    }

    fn cudnn_create(&mut self, p: &ProcCtx) -> CudaResult<CudnnHandle> {
        self.stats.issue("cudnnCreate", 1);
        self.flush(p)?;
        if self.opts.pooled_handles {
            self.stats.pool_hits += 1;
        }
        match self.call(
            p,
            &Request::CudnnCreate {
                pooled: self.opts.pooled_handles,
            },
        )? {
            Response::Handle(h) => Ok(CudnnHandle(h)),
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn cudnn_destroy(&mut self, p: &ProcCtx, h: CudnnHandle) -> CudaResult<()> {
        self.stats.issue("cudnnDestroy", 1);
        self.flush(p)?;
        self.call(p, &Request::CudnnDestroy { h: h.0 })?;
        Ok(())
    }

    fn cudnn_create_descriptors(
        &mut self,
        p: &ProcCtx,
        kind: DescriptorKind,
        n: u64,
    ) -> CudaResult<Vec<CudnnDescriptor>> {
        self.stats.issue("cudnnCreateDescriptor", n);
        if self.opts.descriptor_pools {
            // Served from the guest-side pool: no network traffic at all.
            self.stats.localized_calls += n;
            self.live_local_descriptors += n;
            let out = (0..n)
                .map(|_| {
                    let d = CudnnDescriptor(self.next_local_descriptor);
                    self.next_local_descriptor += 1;
                    d
                })
                .collect();
            return Ok(out);
        }
        match self.call_n(
            p,
            &Request::CudnnCreateDescriptors {
                kind: descriptor_kind_to_u8(kind),
                n,
            },
            n.max(1) as u32,
        )? {
            Response::Handles(hs) => Ok(hs.into_iter().map(CudnnDescriptor).collect()),
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn cudnn_set_descriptors(&mut self, p: &ProcCtx, descs: &[CudnnDescriptor]) -> CudaResult<()> {
        let n = descs.len() as u64;
        self.stats.issue("cudnnSetDescriptor", n);
        if self.opts.descriptor_pools {
            // Descriptor state is kept guest-side and piggybacked onto the
            // operations that use it.
            self.stats.localized_calls += n;
            return Ok(());
        }
        self.call_n(p, &Request::CudnnSetDescriptors { n }, n.max(1) as u32)?;
        Ok(())
    }

    fn cudnn_destroy_descriptors(
        &mut self,
        p: &ProcCtx,
        descs: Vec<CudnnDescriptor>,
    ) -> CudaResult<()> {
        let n = descs.len() as u64;
        self.stats.issue("cudnnDestroyDescriptor", n);
        if self.opts.descriptor_pools {
            self.stats.localized_calls += n;
            self.live_local_descriptors = self.live_local_descriptors.saturating_sub(n);
            return Ok(());
        }
        self.call_n(p, &Request::CudnnDestroyDescriptors { n }, n.max(1) as u32)?;
        Ok(())
    }

    fn cudnn_op(&mut self, p: &ProcCtx, h: CudnnHandle, op: LibOp) -> CudaResult<()> {
        self.stats.issue("cudnnOp", op.api_calls);
        let req = Request::CudnnOp {
            h: h.0,
            work: op.work,
            bytes: op.bytes,
            api_calls: op.api_calls,
        };
        self.lib_call(p, req, op)
    }

    fn cublas_create(&mut self, p: &ProcCtx) -> CudaResult<CublasHandle> {
        self.stats.issue("cublasCreate", 1);
        self.flush(p)?;
        if self.opts.pooled_handles {
            self.stats.pool_hits += 1;
        }
        match self.call(
            p,
            &Request::CublasCreate {
                pooled: self.opts.pooled_handles,
            },
        )? {
            Response::Handle(h) => Ok(CublasHandle(h)),
            other => Err(CudaError::RemotingFailure(format!("{other:?}"))),
        }
    }

    fn cublas_destroy(&mut self, p: &ProcCtx, h: CublasHandle) -> CudaResult<()> {
        self.stats.issue("cublasDestroy", 1);
        self.flush(p)?;
        self.call(p, &Request::CublasDestroy { h: h.0 })?;
        Ok(())
    }

    fn cublas_op(&mut self, p: &ProcCtx, h: CublasHandle, op: LibOp) -> CudaResult<()> {
        self.stats.issue("cublasOp", op.api_calls);
        let req = Request::CublasOp {
            h: h.0,
            work: op.work,
            bytes: op.bytes,
            api_calls: op.api_calls,
        };
        self.lib_call(p, req, op)
    }

    fn stats(&self) -> ApiStats {
        self.stats.clone()
    }
}

impl RemoteCuda {
    /// Shared path for aggregate library operations: under batching, the
    /// elidable fraction of the represented calls rides in the batch; the
    /// rest are synchronous round trips. Without batching every represented
    /// call is its own round trip.
    fn lib_call(&mut self, p: &ProcCtx, req: Request, op: LibOp) -> CudaResult<()> {
        if self.opts.batching {
            let elided = op.elidable_calls.min(op.api_calls);
            let sync_calls = op.api_calls - elided;
            if sync_calls == 0 {
                self.defer(p, req, op.api_calls)
            } else {
                self.stats.batched_calls += elided;
                self.flush(p)?;
                self.call_n(p, &req, sync_calls.max(1) as u32)?;
                Ok(())
            }
        } else {
            self.call_n(p, &req, op.api_calls.max(1) as u32)?;
            Ok(())
        }
    }
}
