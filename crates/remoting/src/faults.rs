//! Seeded, deterministic fault injection for the remoting stack.
//!
//! A [`FaultPlan`] is plain data: a schedule of API-server kills plus a set
//! of link-level misbehaviours (drop the k-th message, drop/delay messages
//! with some probability, blackhole the link over an interval). The plan is
//! compiled into a [`LinkFaults`] runtime attached to a [`crate::NetLink`];
//! every RPC message crossing the link asks it for a [`MsgFate`].
//!
//! Determinism: fault decisions draw from a **dedicated** `StdRng` seeded by
//! the plan — never from the simulation's RNG — so installing an (empty)
//! fault plan does not perturb arrival processes or jitter draws, and two
//! runs with the same seed take byte-identical fault decisions. Everything
//! is keyed off the virtual clock and a per-link message counter, both of
//! which are reproducible by construction.

use std::sync::Arc;

use dgsf_sim::{Dur, SimTime};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded, declarative chaos schedule for one GPU server.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    kills: Vec<(u32, SimTime)>,
    drop_messages: Vec<u64>,
    drop_probability: f64,
    delay_probability: f64,
    delay_max: Dur,
    blackholes: Vec<(SimTime, SimTime)>,
    migration_drops: Vec<u64>,
    migration_drop_probability: f64,
    migration_delay_probability: f64,
    migration_delay_max: Dur,
    migration_kills: Vec<(u32, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the RNG stream fixed by `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            kills: Vec::new(),
            drop_messages: Vec::new(),
            drop_probability: 0.0,
            delay_probability: 0.0,
            delay_max: Dur::ZERO,
            blackholes: Vec::new(),
            migration_drops: Vec::new(),
            migration_drop_probability: 0.0,
            migration_delay_probability: 0.0,
            migration_delay_max: Dur::ZERO,
            migration_kills: Vec::new(),
        }
    }

    /// Kill API server `server` at virtual time `at`: from then on it never
    /// responds, never heartbeats, and silently discards anything it
    /// receives. `at` must not precede the server's provisioning time.
    pub fn kill_server(mut self, server: u32, at: SimTime) -> Self {
        self.kills.push((server, at));
        self
    }

    /// Drop the `index`-th message (0-based, counting every RPC request and
    /// response crossing the link; a `repeat`-aggregated transfer advances
    /// the counter by `repeat`).
    pub fn drop_message(mut self, index: u64) -> Self {
        self.drop_messages.push(index);
        self
    }

    /// Drop each message independently with probability `p` (clamped to
    /// `[0, 1]`), drawn from the plan's dedicated RNG.
    pub fn drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Delay each message with probability `p` by a uniform extra latency in
    /// `[0, max)`.
    pub fn delay_probability(mut self, p: f64, max: Dur) -> Self {
        self.delay_probability = p.clamp(0.0, 1.0);
        self.delay_max = max;
        self
    }

    /// Blackhole the link over `[from, until)`: every message sent in the
    /// window is silently dropped.
    pub fn blackhole(mut self, from: SimTime, until: SimTime) -> Self {
        self.blackholes.push((from, until));
        self
    }

    /// Drop the `index`-th migration state-transfer (0-based, counting every
    /// migration transfer crossing the link, in virtual-time order). The
    /// migration aborts and the API server stays on its source GPU.
    pub fn drop_migration(mut self, index: u64) -> Self {
        self.migration_drops.push(index);
        self
    }

    /// Drop each migration state-transfer independently with probability `p`
    /// (clamped to `[0, 1]`), drawn from a dedicated migration RNG stream so
    /// enabling it never perturbs ordinary link-fault decisions.
    pub fn migration_drop_probability(mut self, p: f64) -> Self {
        self.migration_drop_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Delay each migration state-transfer with probability `p` by a uniform
    /// extra latency in `[0, max)`.
    pub fn migration_delay_probability(mut self, p: f64, max: Dur) -> Self {
        self.migration_delay_probability = p.clamp(0.0, 1.0);
        self.migration_delay_max = max;
        self
    }

    /// Kill API server `server` in the middle of its `nth` migration
    /// (0-based): the state transfer completes on the wire but the server
    /// dies before re-binding, so the migration never commits and the
    /// monitor's lease machinery must clean up.
    pub fn kill_on_migration(mut self, server: u32, nth: u64) -> Self {
        self.migration_kills.push((server, nth));
        self
    }

    /// The scheduled API-server kills.
    pub fn kills(&self) -> &[(u32, SimTime)] {
        &self.kills
    }

    /// True if the plan injects link-level faults (the per-message fate
    /// machinery is only engaged when this holds or a seeded stream could
    /// matter).
    pub fn has_link_faults(&self) -> bool {
        !self.drop_messages.is_empty()
            || self.drop_probability > 0.0
            || self.delay_probability > 0.0
            || !self.blackholes.is_empty()
    }

    /// True if the plan targets migration state-transfers (drop/delay/kill
    /// mid-migration). These draw from a separate RNG stream and counter, so
    /// they never disturb [`FaultPlan::has_link_faults`] decisions.
    pub fn has_migration_faults(&self) -> bool {
        !self.migration_drops.is_empty()
            || self.migration_drop_probability > 0.0
            || self.migration_delay_probability > 0.0
            || !self.migration_kills.is_empty()
    }
}

/// What happens to one message (or one `repeat`-aggregate of messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// The message arrives, possibly after an injected extra delay.
    Deliver {
        /// Extra latency added on top of the link's modelled latency.
        extra_delay: Dur,
    },
    /// The message is lost in the network; the sender still pays the send.
    Drop,
}

/// Counters the fault layer keeps, for chaos-run reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages (counting aggregates by their repeat factor) observed.
    pub messages: u64,
    /// Transfers dropped (an aggregate counts once).
    pub dropped: u64,
    /// Transfers delayed.
    pub delayed: u64,
    /// Migration state-transfers observed.
    pub migration_transfers: u64,
    /// Migration state-transfers dropped (each aborts one migration).
    pub migration_dropped: u64,
    /// Migration state-transfers delayed.
    pub migration_delayed: u64,
}

struct FaultRt {
    rng: StdRng,
    msg_index: u64,
    mig_rng: StdRng,
    mig_index: u64,
    stats: FaultStats,
}

/// Runtime fault state attached to one [`crate::NetLink`].
pub struct LinkFaults {
    plan: FaultPlan,
    rt: Mutex<FaultRt>,
}

impl LinkFaults {
    /// Compile a plan into runtime state.
    pub fn new(plan: &FaultPlan) -> Arc<LinkFaults> {
        Arc::new(LinkFaults {
            rt: Mutex::new(FaultRt {
                rng: StdRng::seed_from_u64(plan.seed ^ 0x9e37_79b9_7f4a_7c15),
                msg_index: 0,
                // A distinct stream: migration-fate draws must not advance
                // the ordinary link-fault RNG, or adding migration chaos to
                // an existing plan would reshuffle every message fate.
                mig_rng: StdRng::seed_from_u64(plan.seed ^ 0x2545_f491_4f6c_dd1d),
                mig_index: 0,
                stats: FaultStats::default(),
            }),
            plan: plan.clone(),
        })
    }

    /// Decide the fate of the next transfer: `repeat` back-to-back messages
    /// sent at virtual time `now`. An aggregate is dropped as a unit — in
    /// the modelled un-batched call pattern the round trips are sequential,
    /// so losing any one of them stalls the whole run.
    pub fn fate(&self, now: SimTime, repeat: u32) -> MsgFate {
        let repeat = repeat.max(1) as u64;
        let mut rt = self.rt.lock();
        let start = rt.msg_index;
        rt.msg_index += repeat;
        rt.stats.messages += repeat;
        if self
            .plan
            .blackholes
            .iter()
            .any(|(a, b)| now >= *a && now < *b)
        {
            rt.stats.dropped += 1;
            return MsgFate::Drop;
        }
        if self
            .plan
            .drop_messages
            .iter()
            .any(|i| *i >= start && *i < start + repeat)
        {
            rt.stats.dropped += 1;
            return MsgFate::Drop;
        }
        if self.plan.drop_probability > 0.0 {
            // Probability that at least one of `repeat` independent sends is
            // lost: 1 − (1 − p)^repeat, decided with a single draw so the
            // stream cost is one draw per transfer regardless of repeat.
            let p_any = 1.0 - (1.0 - self.plan.drop_probability).powi(repeat.min(1 << 30) as i32);
            if rt.rng.gen::<f64>() < p_any {
                rt.stats.dropped += 1;
                return MsgFate::Drop;
            }
        }
        let mut extra = Dur::ZERO;
        if self.plan.delay_probability > 0.0
            && self.plan.delay_max > Dur::ZERO
            && rt.rng.gen::<f64>() < self.plan.delay_probability
        {
            let nanos = rt.rng.gen_range(0..self.plan.delay_max.as_nanos().max(1));
            extra = Dur(nanos);
            rt.stats.delayed += 1;
        }
        MsgFate::Deliver { extra_delay: extra }
    }

    /// Decide the fate of the next migration state-transfer, sent at virtual
    /// time `now`. Draws come from the dedicated migration stream and advance
    /// a dedicated counter, so interleaving migrations with RPC traffic
    /// leaves the ordinary [`LinkFaults::fate`] sequence untouched.
    pub fn migration_fate(&self, now: SimTime) -> MsgFate {
        let mut rt = self.rt.lock();
        let index = rt.mig_index;
        rt.mig_index += 1;
        rt.stats.migration_transfers += 1;
        if self
            .plan
            .blackholes
            .iter()
            .any(|(a, b)| now >= *a && now < *b)
        {
            rt.stats.migration_dropped += 1;
            return MsgFate::Drop;
        }
        if self.plan.migration_drops.contains(&index) {
            rt.stats.migration_dropped += 1;
            return MsgFate::Drop;
        }
        if self.plan.migration_drop_probability > 0.0
            && rt.mig_rng.gen::<f64>() < self.plan.migration_drop_probability
        {
            rt.stats.migration_dropped += 1;
            return MsgFate::Drop;
        }
        let mut extra = Dur::ZERO;
        if self.plan.migration_delay_probability > 0.0
            && self.plan.migration_delay_max > Dur::ZERO
            && rt.mig_rng.gen::<f64>() < self.plan.migration_delay_probability
        {
            let nanos = rt
                .mig_rng
                .gen_range(0..self.plan.migration_delay_max.as_nanos().max(1));
            extra = Dur(nanos);
            rt.stats.migration_delayed += 1;
        }
        MsgFate::Deliver { extra_delay: extra }
    }

    /// True if the plan kills `server` during its `nth` migration. Plain
    /// data, no RNG: the caller consults it after the state transfer and
    /// before re-binding the session.
    pub fn migration_kill_due(&self, server: u32, nth: u64) -> bool {
        self.plan.migration_kills.contains(&(server, nth))
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        self.rt.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(plan: &FaultPlan, n: u64) -> Vec<MsgFate> {
        let lf = LinkFaults::new(plan);
        (0..n)
            .map(|i| lf.fate(SimTime::ZERO + Dur::from_millis(i), 1))
            .collect()
    }

    #[test]
    fn empty_plan_delivers_everything_undelayed() {
        let plan = FaultPlan::new(7);
        assert!(!plan.has_link_faults());
        for f in fates(&plan, 100) {
            assert_eq!(
                f,
                MsgFate::Deliver {
                    extra_delay: Dur::ZERO
                }
            );
        }
    }

    #[test]
    fn same_seed_same_fates() {
        let plan = FaultPlan::new(42)
            .drop_probability(0.3)
            .delay_probability(0.5, Dur::from_millis(10));
        let a = fates(&plan, 500);
        let b = fates(&plan, 500);
        assert_eq!(a, b, "fault decisions are a pure function of the seed");
        assert!(a.contains(&MsgFate::Drop));
        assert!(a
            .iter()
            .any(|f| matches!(f, MsgFate::Deliver { extra_delay } if *extra_delay > Dur::ZERO)));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = fates(&FaultPlan::new(1).drop_probability(0.5), 200);
        let b = fates(&FaultPlan::new(2).drop_probability(0.5), 200);
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_drop_hits_exactly_that_message() {
        let plan = FaultPlan::new(0).drop_message(3);
        let got = fates(&plan, 6);
        for (i, f) in got.iter().enumerate() {
            if i == 3 {
                assert_eq!(*f, MsgFate::Drop);
            } else {
                assert!(matches!(f, MsgFate::Deliver { .. }));
            }
        }
    }

    #[test]
    fn indexed_drop_covers_aggregates() {
        // Messages 0..10 cross as one repeat=10 aggregate; index 7 is inside.
        let lf = LinkFaults::new(&FaultPlan::new(0).drop_message(7));
        assert_eq!(lf.fate(SimTime::ZERO, 10), MsgFate::Drop);
        assert!(matches!(
            lf.fate(SimTime::ZERO, 10),
            MsgFate::Deliver { .. }
        ));
        assert_eq!(lf.stats().messages, 20);
        assert_eq!(lf.stats().dropped, 1);
    }

    #[test]
    fn blackhole_drops_only_inside_the_window() {
        let t = |s: u64| SimTime::ZERO + Dur::from_secs(s);
        let lf = LinkFaults::new(&FaultPlan::new(0).blackhole(t(2), t(4)));
        assert!(matches!(lf.fate(t(1), 1), MsgFate::Deliver { .. }));
        assert_eq!(lf.fate(t(2), 1), MsgFate::Drop);
        assert_eq!(lf.fate(t(3), 1), MsgFate::Drop);
        assert!(matches!(lf.fate(t(4), 1), MsgFate::Deliver { .. }));
    }

    #[test]
    fn migration_faults_are_a_separate_stream() {
        // Same link traffic, with and without migration chaos interleaved:
        // the ordinary fate sequence must be identical either way.
        let base = FaultPlan::new(42)
            .drop_probability(0.3)
            .delay_probability(0.5, Dur::from_millis(10));
        let chaotic = base
            .clone()
            .migration_drop_probability(0.5)
            .migration_delay_probability(0.5, Dur::from_millis(5));
        assert!(!base.has_migration_faults());
        assert!(chaotic.has_migration_faults());

        let plain = LinkFaults::new(&base);
        let mixed = LinkFaults::new(&chaotic);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..200u64 {
            let t = SimTime::ZERO + Dur::from_millis(i);
            a.push(plain.fate(t, 1));
            b.push(mixed.fate(t, 1));
            if i % 3 == 0 {
                mixed.migration_fate(t); // interleaved migration traffic
            }
        }
        assert_eq!(a, b, "migration draws must not perturb link fates");
        let stats = mixed.stats();
        assert_eq!(stats.migration_transfers, 67);
        assert!(stats.migration_dropped > 0);
    }

    #[test]
    fn migration_fates_are_deterministic() {
        let plan = FaultPlan::new(9)
            .migration_drop_probability(0.4)
            .migration_delay_probability(0.4, Dur::from_millis(8));
        let run = || {
            let lf = LinkFaults::new(&plan);
            (0..100u64)
                .map(|i| lf.migration_fate(SimTime::ZERO + Dur::from_millis(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn indexed_migration_drop_hits_exactly_that_transfer() {
        let lf = LinkFaults::new(&FaultPlan::new(0).drop_migration(2));
        for i in 0..5u64 {
            let fate = lf.migration_fate(SimTime::ZERO + Dur::from_millis(i));
            if i == 2 {
                assert_eq!(fate, MsgFate::Drop);
            } else {
                assert_eq!(
                    fate,
                    MsgFate::Deliver {
                        extra_delay: Dur::ZERO
                    }
                );
            }
        }
        assert_eq!(lf.stats().migration_dropped, 1);
        assert_eq!(lf.stats().messages, 0, "no link traffic was counted");
    }

    #[test]
    fn migration_kill_is_plain_data() {
        let plan = FaultPlan::new(0).kill_on_migration(3, 1);
        assert!(plan.has_migration_faults());
        assert!(!plan.has_link_faults());
        let lf = LinkFaults::new(&plan);
        assert!(!lf.migration_kill_due(3, 0));
        assert!(lf.migration_kill_due(3, 1));
        assert!(!lf.migration_kill_due(2, 1));
    }

    #[test]
    fn kill_schedule_round_trips() {
        let t = SimTime::ZERO + Dur::from_secs(3);
        let plan = FaultPlan::new(0).kill_server(2, t);
        assert_eq!(plan.kills(), &[(2, t)]);
        assert!(!plan.has_link_faults(), "kills are not link faults");
    }
}
