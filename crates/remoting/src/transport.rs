//! RPC transport between a guest library and an API server.
//!
//! The client serializes a [`Request`], charges uplink network time, and
//! hands the frame to the server's inbox channel; the server decodes,
//! executes, charges downlink time for the (serialized) response, and
//! replies. `repeat` models a run of identical sequential round trips (the
//! un-batched call pattern) in O(1) simulation events: the client pays
//! `repeat` round-trip latencies and `repeat × size` bandwidth while the
//! server executes the aggregate once.

use bytes::Bytes;
use dgsf_sim::{ProcCtx, SimHandle, SimReceiver, SimSender};
use std::sync::Arc;

use crate::net::{Direction, NetLink};
use crate::wire::{Request, Response, WireError};

/// A framed request in flight, with its reply path.
pub struct RpcEnvelope {
    /// Encoded request.
    pub frame: Bytes,
    /// How many identical sequential round trips this stands for.
    pub repeat: u32,
    /// Reply channel (encoded response).
    pub reply: SimSender<Bytes>,
}

/// Server side of a connection: the inbox an API server drains.
pub struct RpcInbox {
    rx: SimReceiver<RpcEnvelope>,
}

impl RpcInbox {
    /// Wait for the next request; `None` at simulation shutdown.
    pub fn next(&self, p: &ProcCtx) -> Option<RpcEnvelope> {
        self.rx.recv(p)
    }

    /// Decode an envelope's frame.
    pub fn decode(env: &RpcEnvelope) -> Result<Request, WireError> {
        let mut frame = env.frame.clone();
        Request::decode(&mut frame)
    }

    /// Encode and send a response, charging downlink time for its wire size
    /// (times the envelope's repeat factor).
    pub fn respond(&self, p: &ProcCtx, link: &NetLink, env: &RpcEnvelope, resp: &Response) {
        let frame = resp.encode();
        link.transfer(p, Direction::ToClient, resp.wire_size(), env.repeat);
        env.reply.send(p, frame);
    }
}

/// Client side of a connection: what the guest library holds after the
/// monitor hands it an API server address.
pub struct RpcClient {
    handle: SimHandle,
    link: Arc<NetLink>,
    tx: SimSender<RpcEnvelope>,
}

impl RpcClient {
    /// Create a connected client/inbox pair over `link`.
    pub fn connect(h: &SimHandle, link: Arc<NetLink>) -> (RpcClient, RpcInbox) {
        let (tx, rx) = h.channel::<RpcEnvelope>();
        (
            RpcClient {
                handle: h.clone(),
                link,
                tx,
            },
            RpcInbox { rx },
        )
    }

    /// One round trip.
    pub fn call(&self, p: &ProcCtx, req: &Request) -> Response {
        self.call_repeated(p, req, 1)
    }

    /// `repeat` sequential identical round trips, executed as one aggregate
    /// on the server.
    pub fn call_repeated(&self, p: &ProcCtx, req: &Request, repeat: u32) -> Response {
        assert!(repeat >= 1, "call_repeated needs at least one round trip");
        let frame = req.encode();
        self.link
            .transfer(p, Direction::ToServer, req.wire_size(), repeat);
        let (reply_tx, reply_rx) = self.handle.channel::<Bytes>();
        self.tx.send(
            p,
            RpcEnvelope {
                frame,
                repeat,
                reply: reply_tx,
            },
        );
        let Some(mut reply) = reply_rx.recv(p) else {
            // Simulation shutting down; surface a transport error.
            return Response::Err {
                class: crate::wire::err_class::OTHER,
                msg: "transport closed".into(),
            };
        };
        Response::decode(&mut reply).unwrap_or_else(|e| Response::Err {
            class: crate::wire::err_class::OTHER,
            msg: e.to_string(),
        })
    }

    /// The link this client rides on.
    pub fn link(&self) -> &Arc<NetLink> {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetProfile;
    use dgsf_sim::{Dur, Sim};
    use parking_lot::Mutex;

    #[test]
    fn echo_round_trip_charges_both_directions() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let link = NetLink::new(
            &h,
            NetProfile {
                rpc_latency: Dur::from_millis(1),
                rpc_jitter: Dur::ZERO,
                nic_bw: 1e12,
                s3_bw: 1e12,
            },
        );
        let (client, inbox) = RpcClient::connect(&h, link.clone());
        let srv_link = link.clone();
        sim.spawn("server", move |p| {
            while let Some(env) = inbox.next(p) {
                let req = RpcInbox::decode(&env).unwrap();
                assert_eq!(req, Request::GetDeviceCount);
                inbox.respond(p, &srv_link, &env, &Response::Count(1));
            }
        });
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("client", move |p| {
            let resp = client.call(p, &Request::GetDeviceCount);
            *o.lock() = Some((resp, p.now().as_secs_f64()));
        });
        sim.run();
        let (resp, t) = out.lock().take().unwrap();
        assert_eq!(resp, Response::Count(1));
        // one uplink + one downlink latency
        assert!((t - 0.002).abs() < 1e-6, "round trip is 2 ms: {t}");
    }

    #[test]
    fn repeated_calls_cost_n_round_trips_but_one_execution() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let link = NetLink::new(
            &h,
            NetProfile {
                rpc_latency: Dur::from_micros(100),
                rpc_jitter: Dur::ZERO,
                nic_bw: 1e12,
                s3_bw: 1e12,
            },
        );
        let (client, inbox) = RpcClient::connect(&h, link.clone());
        let executions = Arc::new(Mutex::new(0u32));
        let e2 = executions.clone();
        let srv_link = link.clone();
        sim.spawn("server", move |p| {
            while let Some(env) = inbox.next(p) {
                *e2.lock() += 1;
                inbox.respond(p, &srv_link, &env, &Response::Ok);
            }
        });
        let t_out = Arc::new(Mutex::new(0.0));
        let t2 = t_out.clone();
        sim.spawn("client", move |p| {
            let r = client.call_repeated(p, &Request::Sync, 500);
            assert_eq!(r, Response::Ok);
            *t2.lock() = p.now().as_secs_f64();
        });
        sim.run();
        assert_eq!(*executions.lock(), 1, "aggregate executes once");
        let t = *t_out.lock();
        // 500 × (100 µs up + 100 µs down) = 0.1 s
        assert!((t - 0.1).abs() < 1e-3, "500 round trips: {t}");
    }
}
