//! RPC transport between a guest library and an API server.
//!
//! The client serializes a [`Request`], charges uplink network time, and
//! hands the frame to the server's inbox channel; the server decodes,
//! executes, charges downlink time for the (serialized) response, and
//! replies. `repeat` models a run of identical sequential round trips (the
//! un-batched call pattern) in O(1) simulation events: the client pays
//! `repeat` round-trip latencies and `repeat × size` bandwidth while the
//! server executes the aggregate once.
//!
//! Failures are first-class: calls return [`TransportError`] when the
//! connection closes, a frame cannot be decoded, or — with a timeout
//! configured via [`RpcClient::set_timeout`] — the reply does not arrive in
//! time (a dead API server, or a request/response dropped by an injected
//! link fault).

use bytes::Bytes;
use dgsf_sim::{Dur, ProcCtx, RecvError, SimHandle, SimReceiver, SimSender, TraceCtx};
use std::cell::Cell;
use std::sync::Arc;

use crate::net::{Delivery, Direction, NetLink};
use crate::wire::{Request, Response, WireError};

/// Why an RPC round trip failed below the CUDA-semantics layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No reply within the client's configured timeout (server dead, or the
    /// request/response was lost on the link).
    Timeout {
        /// How long the client waited.
        waited: Dur,
    },
    /// The connection (or the whole simulation) shut down mid-call.
    Closed,
    /// The reply frame could not be decoded.
    Decode(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout { waited } => {
                write!(f, "rpc timed out after {:.3} s", waited.as_secs_f64())
            }
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Decode(e) => write!(f, "undecodable reply: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A framed request in flight, with its reply path.
pub struct RpcEnvelope {
    /// Encoded request.
    pub frame: Bytes,
    /// How many identical sequential round trips this stands for.
    pub repeat: u32,
    /// Call sequence number on the issuing client. The reply channel is
    /// shared across a client's calls (created once at connect, not per
    /// call); the sequence number lets the client discard a late reply to a
    /// call it already timed out.
    pub seq: u64,
    /// Reply channel (sequence number + encoded response).
    pub reply: SimSender<(u64, Bytes)>,
    /// Causal trace context, carried out-of-band: it rides the envelope so
    /// the server can attribute its work, but is deliberately *not* part of
    /// the encoded frame — `wire_size()` (and therefore transfer timing)
    /// must be identical with tracing on or off.
    pub trace: Option<TraceCtx>,
}

/// Server side of a connection: the inbox an API server drains.
pub struct RpcInbox {
    rx: SimReceiver<RpcEnvelope>,
}

impl RpcInbox {
    /// Wait for the next request; `None` at simulation shutdown.
    pub fn next(&self, p: &ProcCtx) -> Option<RpcEnvelope> {
        self.rx.recv(p)
    }

    /// Wait for the next request, giving up after `timeout` of virtual
    /// time — how an API server notices its client went silent (crashed
    /// function host, abandoned invocation).
    pub fn next_timeout(&self, p: &ProcCtx, timeout: Dur) -> Result<RpcEnvelope, RecvError> {
        self.rx.recv_timeout(p, timeout)
    }

    /// Decode an envelope's frame.
    pub fn decode(env: &RpcEnvelope) -> Result<Request, WireError> {
        let mut frame = env.frame.clone();
        Request::decode(&mut frame)
    }

    /// Encode and send a response, charging downlink time for its wire size
    /// (times the envelope's repeat factor). Returns whether the response
    /// survived the link — a fault-injected drop means the client waits for
    /// a reply that never comes.
    pub fn respond(
        &self,
        p: &ProcCtx,
        link: &NetLink,
        env: &RpcEnvelope,
        resp: &Response,
    ) -> Delivery {
        let (frame, wire_size) = resp.encode_sized();
        let delivery = link.transfer(p, Direction::ToClient, wire_size, env.repeat);
        if delivery == Delivery::Delivered {
            env.reply.send(p, (env.seq, frame));
        }
        delivery
    }
}

/// Client side of a connection: what the guest library holds after the
/// monitor hands it an API server address.
pub struct RpcClient {
    #[allow(dead_code)]
    handle: SimHandle,
    link: Arc<NetLink>,
    tx: SimSender<RpcEnvelope>,
    /// Persistent reply path, created once at connect: a fresh channel per
    /// call costs an allocation on every RPC. Replies are matched to calls
    /// by sequence number; stale ones (a reply landing after its call timed
    /// out) are discarded in the receive loop.
    reply_tx: SimSender<(u64, Bytes)>,
    reply_rx: SimReceiver<(u64, Bytes)>,
    next_seq: Cell<u64>,
    timeout: Option<Dur>,
    trace: Option<TraceCtx>,
}

impl RpcClient {
    /// Create a connected client/inbox pair over `link`. No reply timeout:
    /// calls block until the reply arrives or the transport closes.
    pub fn connect(h: &SimHandle, link: Arc<NetLink>) -> (RpcClient, RpcInbox) {
        let (tx, rx) = h.channel::<RpcEnvelope>();
        let (reply_tx, reply_rx) = h.channel::<(u64, Bytes)>();
        (
            RpcClient {
                handle: h.clone(),
                link,
                tx,
                reply_tx,
                reply_rx,
                next_seq: Cell::new(0),
                timeout: None,
                trace: None,
            },
            RpcInbox { rx },
        )
    }

    /// Set the per-round-trip reply deadline (`None` = wait forever). The
    /// deadline covers the whole aggregate of a repeated call.
    pub fn set_timeout(&mut self, timeout: Option<Dur>) {
        self.timeout = timeout;
    }

    /// The configured reply deadline.
    pub fn timeout(&self) -> Option<Dur> {
        self.timeout
    }

    /// Attach a causal trace context: every subsequent call stamps its
    /// envelope (and its recorded rpc spans) with it.
    pub fn set_trace(&mut self, trace: Option<TraceCtx>) {
        self.trace = trace;
    }

    /// The attached trace context, if any.
    pub fn trace(&self) -> Option<&TraceCtx> {
        self.trace.as_ref()
    }

    /// One round trip.
    pub fn call(&self, p: &ProcCtx, req: &Request) -> Result<Response, TransportError> {
        self.call_repeated(p, req, 1)
    }

    /// `repeat` sequential identical round trips, executed as one aggregate
    /// on the server.
    pub fn call_repeated(
        &self,
        p: &ProcCtx,
        req: &Request,
        repeat: u32,
    ) -> Result<Response, TransportError> {
        assert!(repeat >= 1, "call_repeated needs at least one round trip");
        let tel = p.telemetry();
        let t0 = p.now();
        // Single-pass: encode once, derive the network charge from the
        // frame's length (wire v2 — the old path encoded a throwaway copy
        // just to measure it).
        let (frame, req_bytes) = req.encode_sized();
        let delivery = self
            .link
            .transfer(p, Direction::ToServer, req_bytes, repeat);
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        if delivery == Delivery::Delivered {
            self.tx.send(
                p,
                RpcEnvelope {
                    frame,
                    repeat,
                    seq,
                    reply: self.reply_tx.clone(),
                    trace: self.trace.clone(),
                },
            );
        }
        // On failure the client still records a span for the time it spent
        // waiting: the trace decomposition needs timed-out round trips on
        // the critical path just like successful ones.
        let fail = |kind: &'static str, outcome: &str| {
            if tel.is_enabled() {
                tel.counter_add(kind, 1);
                tel.counter_add("rpc.transport_errors", 1);
                if let Some(t) = &self.trace {
                    let mut args = t.span_args().to_vec();
                    args.push(("outcome", outcome.to_string()));
                    tel.span_args(p.name(), req.class(), "rpc", t0, p.now(), &args);
                }
            }
        };
        // A dropped request is indistinguishable from a dead server to the
        // client: it waits for the reply and (with a timeout set) gives up.
        // Replies tagged with an older sequence number are strays from calls
        // that already timed out — skip them without resetting the deadline.
        let wait_start = p.now();
        let mut reply = loop {
            let got = match self.timeout {
                Some(t) => {
                    let remaining = Dur(t
                        .as_nanos()
                        .saturating_sub(p.now().since(wait_start).as_nanos()));
                    match self.reply_rx.recv_timeout(p, remaining) {
                        Ok(r) => r,
                        Err(RecvError::Timeout) => {
                            fail("rpc.timeouts", "timeout");
                            return Err(TransportError::Timeout { waited: t });
                        }
                        Err(RecvError::Shutdown) => {
                            fail("rpc.closed", "closed");
                            return Err(TransportError::Closed);
                        }
                    }
                }
                None => match self.reply_rx.recv(p) {
                    Some(r) => r,
                    None => {
                        fail("rpc.closed", "closed");
                        return Err(TransportError::Closed);
                    }
                },
            };
            if got.0 == seq {
                break got.1;
            }
        };
        let resp_bytes = reply.len() as u64;
        match Response::decode(&mut reply) {
            Ok(resp) => {
                if tel.is_enabled() {
                    let keys = req.class_keys();
                    let end = p.now();
                    match &self.trace {
                        Some(t) => {
                            tel.span_args(p.name(), keys.class, "rpc", t0, end, &t.span_args())
                        }
                        None => tel.span(p.name(), keys.class, "rpc", t0, end),
                    }
                    tel.histogram_record(keys.latency_ns, end.since(t0).as_nanos());
                    tel.histogram_record(
                        keys.bytes,
                        (req_bytes + resp_bytes).saturating_mul(repeat as u64),
                    );
                    tel.counter_add(keys.calls, repeat as u64);
                }
                Ok(resp)
            }
            Err(e) => {
                fail("rpc.decode_errors", "decode");
                Err(TransportError::Decode(e))
            }
        }
    }

    /// The link this client rides on.
    pub fn link(&self) -> &Arc<NetLink> {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::faults::LinkFaults;
    use crate::net::NetProfile;
    use dgsf_sim::{Dur, Sim};
    use parking_lot::Mutex;

    fn fast_profile() -> NetProfile {
        NetProfile {
            rpc_latency: Dur::from_millis(1),
            rpc_jitter: Dur::ZERO,
            nic_bw: 1e12,
            s3_bw: 1e12,
        }
    }

    #[test]
    fn echo_round_trip_charges_both_directions() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let link = NetLink::new(&h, fast_profile());
        let (client, inbox) = RpcClient::connect(&h, link.clone());
        let srv_link = link.clone();
        sim.spawn("server", move |p| {
            while let Some(env) = inbox.next(p) {
                let req = RpcInbox::decode(&env).unwrap();
                assert_eq!(req, Request::GetDeviceCount);
                inbox.respond(p, &srv_link, &env, &Response::Count(1));
            }
        });
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("client", move |p| {
            let resp = client.call(p, &Request::GetDeviceCount).unwrap();
            *o.lock() = Some((resp, p.now().as_secs_f64()));
        });
        sim.run();
        let (resp, t) = out.lock().take().unwrap();
        assert_eq!(resp, Response::Count(1));
        // one uplink + one downlink latency
        assert!((t - 0.002).abs() < 1e-6, "round trip is 2 ms: {t}");
    }

    #[test]
    fn repeated_calls_cost_n_round_trips_but_one_execution() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let link = NetLink::new(
            &h,
            NetProfile {
                rpc_latency: Dur::from_micros(100),
                rpc_jitter: Dur::ZERO,
                nic_bw: 1e12,
                s3_bw: 1e12,
            },
        );
        let (client, inbox) = RpcClient::connect(&h, link.clone());
        let executions = Arc::new(Mutex::new(0u32));
        let e2 = executions.clone();
        let srv_link = link.clone();
        sim.spawn("server", move |p| {
            while let Some(env) = inbox.next(p) {
                *e2.lock() += 1;
                inbox.respond(p, &srv_link, &env, &Response::Ok);
            }
        });
        let t_out = Arc::new(Mutex::new(0.0));
        let t2 = t_out.clone();
        sim.spawn("client", move |p| {
            let r = client.call_repeated(p, &Request::Sync, 500).unwrap();
            assert_eq!(r, Response::Ok);
            *t2.lock() = p.now().as_secs_f64();
        });
        sim.run();
        assert_eq!(*executions.lock(), 1, "aggregate executes once");
        let t = *t_out.lock();
        // 500 × (100 µs up + 100 µs down) = 0.1 s
        assert!((t - 0.1).abs() < 1e-3, "500 round trips: {t}");
    }

    #[test]
    fn unanswered_call_times_out() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let link = NetLink::new(&h, fast_profile());
        let (mut client, inbox) = RpcClient::connect(&h, link);
        client.set_timeout(Some(Dur::from_millis(500)));
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("client", move |p| {
            let _keep_inbox_alive = &inbox; // server never answers
            let r = client.call(p, &Request::Sync);
            *o.lock() = Some((r, p.now().as_secs_f64()));
        });
        sim.run();
        let (r, t) = out.lock().take().unwrap();
        assert_eq!(
            r,
            Err(TransportError::Timeout {
                waited: Dur::from_millis(500)
            })
        );
        // 1 ms uplink + 500 ms deadline
        assert!((t - 0.501).abs() < 1e-6, "timeout fires on schedule: {t}");
    }

    #[test]
    fn dropped_request_never_reaches_the_server_and_times_out() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let faults = LinkFaults::new(&FaultPlan::new(0).drop_message(0));
        let link = NetLink::with_faults(&h, fast_profile(), Some(faults));
        let (mut client, inbox) = RpcClient::connect(&h, link.clone());
        client.set_timeout(Some(Dur::from_millis(100)));
        let served = Arc::new(Mutex::new(0u32));
        let s2 = served.clone();
        let srv_link = link.clone();
        sim.spawn("server", move |p| {
            while let Some(env) = inbox.next(p) {
                *s2.lock() += 1;
                inbox.respond(p, &srv_link, &env, &Response::Ok);
            }
        });
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = out.clone();
        sim.spawn("client", move |p| {
            // message 0 is dropped → timeout; message 1+2 (request+reply) pass
            o.lock().push(client.call(p, &Request::Sync).is_err());
            o.lock().push(client.call(p, &Request::Sync).is_err());
        });
        sim.run();
        assert_eq!(*out.lock(), vec![true, false]);
        assert_eq!(*served.lock(), 1, "dropped request never executed");
    }
}
