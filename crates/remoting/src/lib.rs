//! # dgsf-remoting — API remoting specialized for serverless
//!
//! The transport half of DGSF (paper §V): a length-framed binary wire
//! protocol ([`wire`]), a contended network model ([`NetLink`]), an RPC
//! transport ([`RpcClient`]/[`RpcInbox`]), the guest interposition library
//! ([`RemoteCuda`]) with the serverless specializations the paper ablates
//! (context/handle pooling, guest-side descriptor pools, batching, API
//! elision — [`OptConfig`]), and the server-side request [`Dispatcher`].
//!
//! End-to-end, a workload written against `dyn CudaApi` runs over this path
//! with real serialization (every frame is encoded and decoded) and
//! simulated wire time.

#![warn(missing_docs)]

mod dispatch;
mod faults;
mod guest;
mod net;
mod transport;
pub mod wire;

pub use dispatch::{error_response, Dispatcher, ServerStats};
pub use faults::{FaultPlan, FaultStats, LinkFaults, MsgFate};
pub use guest::{OptConfig, RemoteCuda};
pub use net::{Delivery, Direction, NetLink, NetProfile};
pub use transport::{RpcClient, RpcEnvelope, RpcInbox, TransportError};

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_cuda::{
        CostTable, CudaApi, CudaContext, GpuSession, HostBuf, KernelArgs, KernelCost, KernelDef,
        LaunchConfig, LibOp, ModuleRegistry,
    };
    use dgsf_gpu::{Gpu, GpuId, MB};
    use dgsf_sim::{Dur, Sim};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Spin up a one-GPU API server process and return a connected guest.
    fn serve(
        sim: &Sim,
        registry: Arc<ModuleRegistry>,
        opts: OptConfig,
    ) -> Arc<Mutex<Option<RemoteCuda>>> {
        let h = sim.handle();
        let gpu = Gpu::v100(&h, GpuId(0));
        let link = NetLink::new(&h, NetProfile::datacenter());
        let (client, inbox) = RpcClient::connect(&h, link.clone());
        let h2 = h.clone();
        sim.spawn("api-server", move |p| {
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(p, &h2, gpu, costs, false).unwrap();
            let session = GpuSession::new(&h2, ctx, None);
            let mut d = Dispatcher::new(session, registry);
            while let Some(env) = inbox.next(p) {
                let req = RpcInbox::decode(&env).unwrap();
                let resp = d.handle(p, req, env.repeat);
                inbox.respond(p, &link, &env, &resp);
            }
        });
        Arc::new(Mutex::new(Some(RemoteCuda::new(client, opts))))
    }

    fn functional_registry() -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::functional(
            "scale2",
            KernelCost::Fixed(0.001),
            |view, _c, args| {
                let n = args.scalars[0] as usize;
                let v = view.read_f32s(args.ptrs[0], n);
                let out: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
                view.write_f32s(args.ptrs[0], &out);
            },
        )))
    }

    #[test]
    fn functional_workload_runs_identically_over_the_wire() {
        let mut sim = Sim::new(7);
        let api = serve(&sim, functional_registry(), OptConfig::full());
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let registry = functional_registry();
        sim.spawn("guest", move |p| {
            let mut api = api.lock().take().unwrap();
            api.runtime_init(p).unwrap();
            api.register_module(p, registry).unwrap();
            assert_eq!(api.get_device_count(p).unwrap(), 1);
            let buf = api.malloc(p, MB).unwrap();
            api.memcpy_h2d(p, buf, HostBuf::from_f32s(&[1.0, 2.0, 3.0, 4.0]))
                .unwrap();
            api.launch_kernel(
                p,
                "scale2",
                LaunchConfig::linear(4, 32),
                KernelArgs {
                    ptrs: vec![buf],
                    scalars: vec![4],
                    ..Default::default()
                },
            )
            .unwrap();
            api.device_synchronize(p).unwrap();
            let back = api.memcpy_d2h(p, buf, 16, true).unwrap();
            api.finish(p).unwrap();
            *o.lock() = Some((back.to_f32s().unwrap(), api.stats()));
        });
        sim.run();
        let (vals, stats) = out.lock().take().unwrap();
        assert_eq!(vals, vec![2.0, 4.0, 6.0, 8.0]);
        assert!(stats.remoted_calls > 0);
        assert!(stats.kernel_launches == 1);
    }

    #[test]
    fn optimizations_reduce_forwarded_calls() {
        // The same call sequence under no-opts vs full opts: the full
        // configuration must forward dramatically fewer calls — the §V-C
        // claim (up to 48 % / 96 % fewer forwarded APIs).
        let run = |opts: OptConfig| {
            let mut sim = Sim::new(7);
            let api = serve(&sim, functional_registry(), opts);
            let stats_out = Arc::new(Mutex::new(None));
            let so = stats_out.clone();
            let registry = functional_registry();
            sim.spawn("guest", move |p| {
                let mut api = api.lock().take().unwrap();
                api.runtime_init(p).unwrap();
                api.register_module(p, registry).unwrap();
                let dnn = api.cudnn_create(p).unwrap();
                let descs = api
                    .cudnn_create_descriptors(p, dgsf_cuda::DescriptorKind::Tensor, 200)
                    .unwrap();
                api.cudnn_set_descriptors(p, &descs).unwrap();
                for _ in 0..10 {
                    api.cudnn_op(
                        p,
                        dnn,
                        LibOp {
                            work: 0.001,
                            bytes: 0,
                            api_calls: 50,
                            elidable_calls: 48,
                        },
                    )
                    .unwrap();
                }
                api.device_synchronize(p).unwrap();
                api.finish(p).unwrap();
                *so.lock() = Some((api.stats(), p.now()));
            });
            sim.run();
            let r = stats_out.lock().take().unwrap();
            r
        };
        let (none, t_none) = run(OptConfig::none());
        let (full, t_full) = run(OptConfig::full());
        assert_eq!(none.issued_calls, full.issued_calls, "same app trace");
        assert!(
            full.remoted_calls * 5 < none.remoted_calls,
            "full opts forward far fewer calls: {} vs {}",
            full.remoted_calls,
            none.remoted_calls
        );
        assert!(full.forwarding_reduction() > 0.8);
        assert!(
            t_full < t_none,
            "optimizations reduce wall time: {t_full:?} vs {t_none:?}"
        );
    }

    #[test]
    fn handle_pooling_removes_init_latency_from_critical_path() {
        let run = |opts: OptConfig| {
            let mut sim = Sim::new(7);
            let api = serve(&sim, functional_registry(), opts);
            let out = Arc::new(Mutex::new(Dur::ZERO));
            let o = out.clone();
            sim.spawn("guest", move |p| {
                let mut api = api.lock().take().unwrap();
                let t0 = p.now();
                api.runtime_init(p).unwrap();
                let _ = api.cudnn_create(p).unwrap();
                let _ = api.cublas_create(p).unwrap();
                api.finish(p).unwrap();
                *o.lock() = p.now().since(t0);
            });
            sim.run();
            let d = *out.lock();
            d
        };
        let cold = run(OptConfig::none()).as_secs_f64();
        let pooled = run(OptConfig::handle_pools()).as_secs_f64();
        // cold pays 3.2 + 1.2 + 0.2 ≈ 4.6 s; pooled pays only round trips
        assert!(cold > 4.5, "cold start pays full init: {cold}");
        assert!(pooled < 0.1, "pooled start hides init: {pooled}");
    }

    #[test]
    fn batch_flush_threshold_bounds_deferral_without_changing_semantics() {
        let run = |threshold: usize| {
            let mut sim = Sim::new(7);
            let mut opts = OptConfig::full();
            opts.batch_flush_threshold = threshold;
            let api = serve(&sim, functional_registry(), opts);
            let out = Arc::new(Mutex::new(None));
            let o = out.clone();
            let registry = functional_registry();
            sim.spawn("guest", move |p| {
                let mut api = api.lock().take().unwrap();
                api.runtime_init(p).unwrap();
                api.register_module(p, registry).unwrap();
                let buf = api.malloc(p, MB).unwrap();
                api.memcpy_h2d(p, buf, HostBuf::from_f32s(&[1.0; 8]))
                    .unwrap();
                // 40 async launches before a single sync point
                for _ in 0..40 {
                    api.launch_kernel(
                        p,
                        "scale2",
                        LaunchConfig::linear(8, 32),
                        KernelArgs {
                            ptrs: vec![buf],
                            scalars: vec![8],
                            ..Default::default()
                        },
                    )
                    .unwrap();
                }
                api.device_synchronize(p).unwrap();
                let data = api.memcpy_d2h(p, buf, 32, true).unwrap();
                api.finish(p).unwrap();
                *o.lock() = Some((data.to_f32s().unwrap(), api.stats().remoted_calls));
            });
            sim.run();
            let r = out.lock().take().unwrap();
            r
        };
        let (vals_unbounded, rpcs_unbounded) = run(0);
        let (vals_bounded, rpcs_bounded) = run(8);
        // identical results (2^40 overflows f32 to inf — still identical)
        assert_eq!(vals_unbounded, vals_bounded);
        // bounding the batch costs more round trips
        assert!(
            rpcs_bounded > rpcs_unbounded,
            "threshold forces extra flushes: {rpcs_bounded} vs {rpcs_unbounded}"
        );
    }

    #[test]
    fn unknown_kernel_is_rejected_end_to_end() {
        let mut sim = Sim::new(7);
        let api = serve(&sim, functional_registry(), OptConfig::full());
        sim.spawn("guest", move |p| {
            let mut api = api.lock().take().unwrap();
            api.runtime_init(p).unwrap();
            let err = api
                .register_module(
                    p,
                    Arc::new(ModuleRegistry::new().with(KernelDef::timed("not-deployed"))),
                )
                .unwrap_err();
            assert!(matches!(err, dgsf_cuda::CudaError::InvalidValue(_)));
            api.finish(p).unwrap();
        });
        sim.run();
    }
}
