//! The DGSF wire protocol.
//!
//! Every interposed API call that must be remoted is serialized into a
//! length-framed binary message and shipped to the API server; responses
//! come back the same way. The codec is hand-rolled over [`bytes`] — no
//! format crate — so framing is explicit, deterministic, and cheap.
//!
//! Trace-modeled workloads move *logical* payloads (size-only); the codec
//! encodes them as an 9-byte marker but [`Request::wire_size`] reports the
//! size the real bytes would have had, which is what the network model
//! charges. Functional workloads move real bytes end to end.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgsf_cuda::{DescriptorKind, HostBuf, KernelArgs, LaunchConfig};

/// Decode failure (malformed or truncated frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}
impl std::error::Error for WireError {}

type WireResult<T> = Result<T, WireError>;

/// A remotable API request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Connect / initialize. `pooled_context` tells the server whether a
    /// pre-initialized context may be used (the startup optimization).
    Init {
        /// Use a pre-initialized pooled CUDA context.
        pooled_context: bool,
    },
    /// Ship the application's kernel metadata (Figure 2 step ②); the
    /// response carries the context-specific function pointers.
    RegisterModule {
        /// Kernel symbol names.
        kernels: Vec<String>,
    },
    /// `cudaGetDeviceCount`.
    GetDeviceCount,
    /// `cudaGetDeviceProperties`.
    GetDeviceProps {
        /// Device ordinal.
        dev: u32,
    },
    /// `cudaSetDevice`.
    SetDevice {
        /// Device ordinal.
        dev: u32,
    },
    /// `cudaMalloc`.
    Malloc {
        /// Size in bytes.
        bytes: u64,
    },
    /// `cudaFree`.
    Free {
        /// Device pointer.
        ptr: u64,
    },
    /// `cudaMemset`.
    Memset {
        /// Device pointer.
        ptr: u64,
        /// Fill byte.
        value: u8,
        /// Length.
        bytes: u64,
    },
    /// `cudaMemcpy` host→device.
    MemcpyH2D {
        /// Destination pointer.
        dst: u64,
        /// Payload.
        data: WireBuf,
    },
    /// `cudaMemcpy` device→host.
    MemcpyD2H {
        /// Source pointer.
        src: u64,
        /// Length.
        bytes: u64,
        /// Whether real bytes must come back.
        want_data: bool,
    },
    /// Unoptimized launch prelude (`__cudaPushCallConfiguration`).
    PushCallConfiguration {
        /// Launch geometry.
        cfg: WireCfg,
    },
    /// Unoptimized launch (consumes the pushed configuration).
    Launch {
        /// Context-specific function pointer (client view).
        fptr: u64,
        /// Arguments.
        args: WireArgs,
    },
    /// Optimized launch with the configuration piggybacked (§V-C).
    LaunchConfigured {
        /// Context-specific function pointer (client view).
        fptr: u64,
        /// Client stream handle (0 = default stream).
        stream: u64,
        /// Launch geometry.
        cfg: WireCfg,
        /// Arguments.
        args: WireArgs,
    },
    /// `cudaDeviceSynchronize`.
    Sync,
    /// `cudaStreamCreate`.
    StreamCreate,
    /// `cudaStreamDestroy`.
    StreamDestroy {
        /// Client stream handle.
        h: u64,
    },
    /// `cudaStreamSynchronize`.
    StreamSync {
        /// Client stream handle.
        h: u64,
    },
    /// `cudaEventCreate`.
    EventCreate,
    /// `cudaEventRecord`.
    EventRecord {
        /// Client event handle.
        h: u64,
    },
    /// `cudaEventSynchronize`.
    EventSync {
        /// Client event handle.
        h: u64,
    },
    /// `cudaPointerGetAttributes` (only remoted when localization is off).
    PointerGetAttributes {
        /// Pointer to query.
        ptr: u64,
    },
    /// `cudaMallocHost` (only remoted when localization is off).
    MallocHost {
        /// Size in bytes.
        bytes: u64,
    },
    /// `cudnnCreate`. `pooled` selects a pre-created handle.
    CudnnCreate {
        /// Serve from the pre-created pool.
        pooled: bool,
    },
    /// `cudnnDestroy`.
    CudnnDestroy {
        /// Client handle.
        h: u64,
    },
    /// `cudnnCreate*Descriptor` × n (only remoted when guest pools are off).
    CudnnCreateDescriptors {
        /// Descriptor kind.
        kind: u8,
        /// Count.
        n: u64,
    },
    /// `cudnnSet*Descriptor` × n.
    CudnnSetDescriptors {
        /// Count.
        n: u64,
    },
    /// `cudnnDestroy*Descriptor` × n.
    CudnnDestroyDescriptors {
        /// Count.
        n: u64,
    },
    /// Aggregate cuDNN operation.
    CudnnOp {
        /// Client handle.
        h: u64,
        /// GPU-seconds.
        work: f64,
        /// Device bytes touched.
        bytes: u64,
        /// API calls this stands for.
        api_calls: u64,
    },
    /// `cublasCreate`.
    CublasCreate {
        /// Serve from the pre-created pool.
        pooled: bool,
    },
    /// `cublasDestroy`.
    CublasDestroy {
        /// Client handle.
        h: u64,
    },
    /// Aggregate cuBLAS operation.
    CublasOp {
        /// Client handle.
        h: u64,
        /// GPU-seconds.
        work: f64,
        /// Device bytes touched.
        bytes: u64,
        /// API calls this stands for.
        api_calls: u64,
    },
    /// A batch of deferred asynchronous calls flushed in one round trip.
    Batch(Vec<Request>),
    /// Function finished; release all of its state.
    EndFunction,
    /// DGSF handoff extension: park allocation `ptr` in the serving
    /// context's resident store under `key`, surviving `EndFunction`.
    PublishBuffer {
        /// Handoff key (single-use).
        key: u64,
        /// Device pointer of the allocation to park.
        ptr: u64,
    },
    /// DGSF handoff extension: adopt the buffer parked under `key` into
    /// this function's session; answers with the fresh device pointer.
    AdoptBuffer {
        /// Handoff key a predecessor published under.
        key: u64,
    },
}

/// Payload crossing the wire.
///
/// Real payloads are refcounted [`Bytes`] views: decoding subslices the
/// received frame instead of copying, so a payload travels guest → frame →
/// dispatch → device without duplication.
#[derive(Debug, Clone, PartialEq)]
pub enum WireBuf {
    /// Real bytes (zero-copy view into the carrying frame after decode).
    Bytes(Bytes),
    /// Size-only payload (trace-modeled data); charged at full size by the
    /// network model without materializing.
    Logical(u64),
}

impl WireBuf {
    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            WireBuf::Bytes(b) => b.len() as u64,
            WireBuf::Logical(n) => *n,
        }
    }
    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for WireBuf {
    fn from(v: Vec<u8>) -> Self {
        WireBuf::Bytes(v.into())
    }
}

impl From<HostBuf> for WireBuf {
    fn from(h: HostBuf) -> Self {
        match h {
            HostBuf::Bytes(b) => WireBuf::Bytes(b),
            HostBuf::Logical(n) => WireBuf::Logical(n),
        }
    }
}

impl From<WireBuf> for HostBuf {
    fn from(w: WireBuf) -> Self {
        match w {
            WireBuf::Bytes(b) => HostBuf::Bytes(b),
            WireBuf::Logical(n) => HostBuf::Logical(n),
        }
    }
}

/// Launch geometry on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCfg {
    /// Grid dims.
    pub grid: (u32, u32, u32),
    /// Block dims.
    pub block: (u32, u32, u32),
}

impl From<LaunchConfig> for WireCfg {
    fn from(c: LaunchConfig) -> Self {
        WireCfg {
            grid: c.grid,
            block: c.block,
        }
    }
}
impl From<WireCfg> for LaunchConfig {
    fn from(c: WireCfg) -> Self {
        LaunchConfig {
            grid: c.grid,
            block: c.block,
        }
    }
}

/// Kernel arguments on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireArgs {
    /// Device-pointer arguments.
    pub ptrs: Vec<u64>,
    /// Scalar arguments.
    pub scalars: Vec<u64>,
    /// Bytes the kernel touches.
    pub bytes: u64,
    /// GPU-seconds hint for trace-modeled kernels.
    pub work_hint: Option<f64>,
}

impl From<KernelArgs> for WireArgs {
    fn from(a: KernelArgs) -> Self {
        WireArgs {
            ptrs: a.ptrs.into_iter().map(|p| p.0).collect(),
            scalars: a.scalars,
            bytes: a.bytes,
            work_hint: a.work_hint,
        }
    }
}
impl From<WireArgs> for KernelArgs {
    fn from(a: WireArgs) -> Self {
        KernelArgs {
            ptrs: a.ptrs.into_iter().map(dgsf_cuda::DevPtr).collect(),
            scalars: a.scalars,
            bytes: a.bytes,
            work_hint: a.work_hint,
        }
    }
}

/// Device properties on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireProps {
    /// Device name.
    pub name: String,
    /// Total device memory.
    pub total_mem: u64,
    /// SM count.
    pub sm_count: u32,
    /// Compute capability.
    pub cc: (u32, u32),
}

/// A response from the API server.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success, no payload.
    Ok,
    /// Failure with a coarse error class and message.
    Err {
        /// Error class (see [`err_class`]).
        class: u8,
        /// Human-readable detail.
        msg: String,
    },
    /// A pointer (`cudaMalloc`).
    Ptr(u64),
    /// A count (`cudaGetDeviceCount`).
    Count(u32),
    /// Device properties.
    Props(WireProps),
    /// A handle (stream/event/cudnn/cublas).
    Handle(u64),
    /// Data coming back from the device.
    Data(WireBuf),
    /// A batch of fresh handles (descriptors).
    Handles(Vec<u64>),
    /// Kernel name → function pointer assignments.
    Fptrs(Vec<(String, u64)>),
    /// Pointer attributes.
    Attrs {
        /// Pointer refers to device memory.
        is_device: bool,
        /// Owning allocation size, if known.
        alloc_size: Option<u64>,
        /// Device ordinal as seen by the app.
        device: u32,
    },
}

/// Error classes carried on the wire.
pub mod err_class {
    /// Out of device memory.
    pub const OOM: u8 = 1;
    /// Invalid value / pointer.
    pub const INVALID_VALUE: u8 = 2;
    /// Invalid device ordinal.
    pub const INVALID_DEVICE: u8 = 3;
    /// Bad handle.
    pub const INVALID_HANDLE: u8 = 4;
    /// Unsupported by the prototype.
    pub const UNSUPPORTED: u8 = 5;
    /// Function memory limit exceeded.
    pub const MEM_LIMIT: u8 = 6;
    /// Transport-level failure (connection closed, undecodable frame,
    /// timed-out round trip) — distinct from CUDA semantics.
    pub const TRANSPORT: u8 = 7;
    /// Other.
    pub const OTHER: u8 = 0;
}

// ---------------- codec helpers ----------------

/// Nested [`Request::Batch`] frames deeper than this are rejected by the
/// decoder: a crafted frame of repeated tag-32 prefixes must produce a
/// [`WireError`], not a stack overflow. The guest only ever produces depth 1.
pub const MAX_BATCH_DEPTH: u32 = 4;

fn put_str(b: &mut BytesMut, s: &str) {
    // The length prefix is u32: an oversize string would silently truncate
    // on `as u32` and produce a frame the decoder misparses. No caller can
    // legitimately ship a 4 GiB kernel name or error message.
    assert!(
        s.len() <= u32::MAX as usize,
        "string too long for wire frame: {} bytes",
        s.len()
    );
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

/// Encoded size of [`put_str`]'s output.
fn str_len(s: &str) -> u64 {
    4 + s.len() as u64
}

fn get_str(b: &mut Bytes) -> WireResult<String> {
    let n = get_u32(b)? as usize;
    if b.remaining() < n {
        return Err(WireError("truncated string".into()));
    }
    let raw = b.split_to(n);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError("invalid utf8".into()))
}

fn get_u8(b: &mut Bytes) -> WireResult<u8> {
    if b.remaining() < 1 {
        return Err(WireError("truncated u8".into()));
    }
    Ok(b.get_u8())
}

fn get_u32(b: &mut Bytes) -> WireResult<u32> {
    if b.remaining() < 4 {
        return Err(WireError("truncated u32".into()));
    }
    Ok(b.get_u32_le())
}

fn get_u64(b: &mut Bytes) -> WireResult<u64> {
    if b.remaining() < 8 {
        return Err(WireError("truncated u64".into()));
    }
    Ok(b.get_u64_le())
}

fn get_f64(b: &mut Bytes) -> WireResult<f64> {
    if b.remaining() < 8 {
        return Err(WireError("truncated f64".into()));
    }
    Ok(b.get_f64_le())
}

fn put_vec_u64(b: &mut BytesMut, v: &[u64]) {
    b.put_u32_le(v.len() as u32);
    for x in v {
        b.put_u64_le(*x);
    }
}

/// Encoded size of [`put_vec_u64`]'s output.
fn vec_u64_len(v: &[u64]) -> u64 {
    4 + 8 * v.len() as u64
}

fn get_vec_u64(b: &mut Bytes) -> WireResult<Vec<u64>> {
    let n = get_u32(b)?;
    // The byte count is computed in u64: `n as usize * 8` would overflow on
    // 32-bit targets and let a truncated frame pass the bounds check.
    if (b.remaining() as u64) < u64::from(n) * 8 {
        return Err(WireError("truncated u64 vec".into()));
    }
    Ok((0..n).map(|_| b.get_u64_le()).collect())
}

fn put_buf(b: &mut BytesMut, buf: &WireBuf) {
    match buf {
        WireBuf::Bytes(raw) => {
            b.put_u8(0);
            b.put_u64_le(raw.len() as u64);
            b.put_slice(raw);
        }
        WireBuf::Logical(n) => {
            b.put_u8(1);
            b.put_u64_le(*n);
        }
    }
}

fn get_buf(b: &mut Bytes) -> WireResult<WireBuf> {
    match get_u8(b)? {
        0 => {
            let n = get_u64(b)?;
            // Compare in u64 before narrowing: on 32-bit targets a huge
            // length must fail the check, not wrap in the `as usize` cast.
            if (b.remaining() as u64) < n {
                return Err(WireError("truncated payload".into()));
            }
            // Zero-copy: the payload is a refcounted subslice of the frame.
            Ok(WireBuf::Bytes(b.split_to(n as usize)))
        }
        1 => Ok(WireBuf::Logical(get_u64(b)?)),
        t => Err(WireError(format!("bad WireBuf tag {t}"))),
    }
}

/// Encoded size of [`put_buf`]'s output.
fn buf_len(buf: &WireBuf) -> u64 {
    match buf {
        WireBuf::Bytes(raw) => 1 + 8 + raw.len() as u64,
        WireBuf::Logical(_) => 1 + 8,
    }
}

fn put_cfg(b: &mut BytesMut, c: &WireCfg) {
    for v in [
        c.grid.0, c.grid.1, c.grid.2, c.block.0, c.block.1, c.block.2,
    ] {
        b.put_u32_le(v);
    }
}

fn get_cfg(b: &mut Bytes) -> WireResult<WireCfg> {
    let mut v = [0u32; 6];
    for x in &mut v {
        *x = get_u32(b)?;
    }
    Ok(WireCfg {
        grid: (v[0], v[1], v[2]),
        block: (v[3], v[4], v[5]),
    })
}

fn put_args(b: &mut BytesMut, a: &WireArgs) {
    put_vec_u64(b, &a.ptrs);
    put_vec_u64(b, &a.scalars);
    b.put_u64_le(a.bytes);
    match a.work_hint {
        Some(w) => {
            b.put_u8(1);
            b.put_f64_le(w);
        }
        None => b.put_u8(0),
    }
}

/// Encoded size of [`put_cfg`]'s output (six u32 dims).
const CFG_LEN: u64 = 24;

/// Encoded size of [`put_args`]'s output.
fn args_len(a: &WireArgs) -> u64 {
    vec_u64_len(&a.ptrs)
        + vec_u64_len(&a.scalars)
        + 8
        + 1
        + if a.work_hint.is_some() { 8 } else { 0 }
}

fn get_args(b: &mut Bytes) -> WireResult<WireArgs> {
    let ptrs = get_vec_u64(b)?;
    let scalars = get_vec_u64(b)?;
    let bytes = get_u64(b)?;
    let work_hint = match get_u8(b)? {
        0 => None,
        1 => Some(get_f64(b)?),
        t => return Err(WireError(format!("bad option tag {t}"))),
    };
    Ok(WireArgs {
        ptrs,
        scalars,
        bytes,
        work_hint,
    })
}

/// Map a [`DescriptorKind`] to its wire byte.
pub fn descriptor_kind_to_u8(k: DescriptorKind) -> u8 {
    match k {
        DescriptorKind::Tensor => 0,
        DescriptorKind::Filter => 1,
        DescriptorKind::Convolution => 2,
        DescriptorKind::Pooling => 3,
        DescriptorKind::Activation => 4,
    }
}

/// Inverse of [`descriptor_kind_to_u8`].
pub fn descriptor_kind_from_u8(v: u8) -> WireResult<DescriptorKind> {
    Ok(match v {
        0 => DescriptorKind::Tensor,
        1 => DescriptorKind::Filter,
        2 => DescriptorKind::Convolution,
        3 => DescriptorKind::Pooling,
        4 => DescriptorKind::Activation,
        t => return Err(WireError(format!("bad descriptor kind {t}"))),
    })
}

/// Pre-joined telemetry key strings for one API class. The RPC and dispatch
/// hot paths record several metrics per call; building these names with
/// `format!` allocated three strings per request, so they are interned here
/// once per class at compile time. The strings are byte-identical to what
/// the old `format!` calls produced (golden traces depend on them).
pub struct ClassKeys {
    /// The bare class label (what [`Request::class`] returns).
    pub class: &'static str,
    /// `rpc.latency_ns.<class>` — client round-trip latency histogram.
    pub latency_ns: &'static str,
    /// `rpc.bytes.<class>` — client per-call wire bytes histogram.
    pub bytes: &'static str,
    /// `rpc.calls.<class>` — client round-trip counter.
    pub calls: &'static str,
    /// `server.requests.<class>` — dispatcher served-request counter.
    pub server_requests: &'static str,
}

macro_rules! class_keys {
    ($class:literal) => {
        &ClassKeys {
            class: $class,
            latency_ns: concat!("rpc.latency_ns.", $class),
            bytes: concat!("rpc.bytes.", $class),
            calls: concat!("rpc.calls.", $class),
            server_requests: concat!("server.requests.", $class),
        }
    };
}

impl Request {
    /// Telemetry API class of this request: a small, stable label grouping
    /// the CUDA/cuDNN/cuBLAS surface the way the remoting-characterization
    /// literature buckets it (memory ops, copies, launches, sync, library
    /// handles). Used to key per-class latency/bytes histograms.
    pub fn class(&self) -> &'static str {
        self.class_keys().class
    }

    /// The interned per-class telemetry key set (see [`ClassKeys`]).
    pub fn class_keys(&self) -> &'static ClassKeys {
        use Request::*;
        match self {
            Init { .. } => class_keys!("init"),
            RegisterModule { .. } => class_keys!("register_module"),
            GetDeviceCount
            | GetDeviceProps { .. }
            | SetDevice { .. }
            | PointerGetAttributes { .. } => class_keys!("device_query"),
            Malloc { .. } | Free { .. } | Memset { .. } | MallocHost { .. } => class_keys!("mem"),
            MemcpyH2D { .. } => class_keys!("memcpy_h2d"),
            MemcpyD2H { .. } => class_keys!("memcpy_d2h"),
            PushCallConfiguration { .. } | Launch { .. } | LaunchConfigured { .. } => {
                class_keys!("launch")
            }
            Sync => class_keys!("sync"),
            StreamCreate | StreamDestroy { .. } | StreamSync { .. } => class_keys!("stream"),
            EventCreate | EventRecord { .. } | EventSync { .. } => class_keys!("event"),
            CudnnCreate { .. }
            | CudnnDestroy { .. }
            | CudnnCreateDescriptors { .. }
            | CudnnSetDescriptors { .. }
            | CudnnDestroyDescriptors { .. }
            | CudnnOp { .. } => class_keys!("cudnn"),
            CublasCreate { .. } | CublasDestroy { .. } | CublasOp { .. } => class_keys!("cublas"),
            Batch(_) => class_keys!("batch"),
            EndFunction => class_keys!("end_function"),
            PublishBuffer { .. } | AdoptBuffer { .. } => class_keys!("resident"),
        }
    }

    /// Exact number of bytes [`Request::encode`] will produce, computed
    /// arithmetically — no buffer is filled. `encode` allocates exactly this
    /// much and [`Request::wire_size`] builds on it, so the hot path pays
    /// one traversal instead of a throwaway encode.
    pub fn encoded_len(&self) -> u64 {
        use Request::*;
        1 + match self {
            Init { .. } | CudnnCreate { .. } | CublasCreate { .. } => 1,
            RegisterModule { kernels } => 4 + kernels.iter().map(|k| str_len(k)).sum::<u64>(),
            GetDeviceCount | Sync | StreamCreate | EventCreate | EndFunction => 0,
            GetDeviceProps { .. } | SetDevice { .. } => 4,
            Malloc { .. }
            | Free { .. }
            | MallocHost { .. }
            | StreamDestroy { .. }
            | StreamSync { .. }
            | EventRecord { .. }
            | EventSync { .. }
            | PointerGetAttributes { .. }
            | CudnnDestroy { .. }
            | CudnnSetDescriptors { .. }
            | CudnnDestroyDescriptors { .. }
            | CublasDestroy { .. } => 8,
            Memset { .. } => 8 + 1 + 8,
            MemcpyH2D { data, .. } => 8 + buf_len(data),
            MemcpyD2H { .. } => 8 + 8 + 1,
            PushCallConfiguration { .. } => CFG_LEN,
            Launch { args, .. } => 8 + args_len(args),
            LaunchConfigured { args, .. } => 8 + 8 + CFG_LEN + args_len(args),
            CudnnCreateDescriptors { .. } => 1 + 8,
            CudnnOp { .. } | CublasOp { .. } => 8 + 8 + 8 + 8,
            Batch(reqs) => 4 + reqs.iter().map(|r| r.encoded_len()).sum::<u64>(),
            PublishBuffer { .. } => 8 + 8,
            AdoptBuffer { .. } => 8,
        }
    }

    /// Serialize into a fresh frame (allocated at exactly
    /// [`Request::encoded_len`] bytes).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.encoded_len() as usize);
        self.encode_into(&mut b);
        debug_assert_eq!(b.len() as u64, self.encoded_len(), "encoded_len drift");
        b.freeze()
    }

    fn encode_into(&self, b: &mut BytesMut) {
        use Request::*;
        match self {
            Init { pooled_context } => {
                b.put_u8(1);
                b.put_u8(*pooled_context as u8);
            }
            RegisterModule { kernels } => {
                b.put_u8(2);
                b.put_u32_le(kernels.len() as u32);
                for k in kernels {
                    put_str(b, k);
                }
            }
            GetDeviceCount => b.put_u8(3),
            GetDeviceProps { dev } => {
                b.put_u8(4);
                b.put_u32_le(*dev);
            }
            SetDevice { dev } => {
                b.put_u8(5);
                b.put_u32_le(*dev);
            }
            Malloc { bytes } => {
                b.put_u8(6);
                b.put_u64_le(*bytes);
            }
            Free { ptr } => {
                b.put_u8(7);
                b.put_u64_le(*ptr);
            }
            Memset { ptr, value, bytes } => {
                b.put_u8(8);
                b.put_u64_le(*ptr);
                b.put_u8(*value);
                b.put_u64_le(*bytes);
            }
            MemcpyH2D { dst, data } => {
                b.put_u8(9);
                b.put_u64_le(*dst);
                put_buf(b, data);
            }
            MemcpyD2H {
                src,
                bytes,
                want_data,
            } => {
                b.put_u8(10);
                b.put_u64_le(*src);
                b.put_u64_le(*bytes);
                b.put_u8(*want_data as u8);
            }
            PushCallConfiguration { cfg } => {
                b.put_u8(11);
                put_cfg(b, cfg);
            }
            Launch { fptr, args } => {
                b.put_u8(12);
                b.put_u64_le(*fptr);
                put_args(b, args);
            }
            LaunchConfigured {
                fptr,
                stream,
                cfg,
                args,
            } => {
                b.put_u8(13);
                b.put_u64_le(*fptr);
                b.put_u64_le(*stream);
                put_cfg(b, cfg);
                put_args(b, args);
            }
            Sync => b.put_u8(14),
            StreamCreate => b.put_u8(15),
            StreamDestroy { h } => {
                b.put_u8(16);
                b.put_u64_le(*h);
            }
            StreamSync { h } => {
                b.put_u8(17);
                b.put_u64_le(*h);
            }
            EventCreate => b.put_u8(18),
            EventRecord { h } => {
                b.put_u8(19);
                b.put_u64_le(*h);
            }
            EventSync { h } => {
                b.put_u8(20);
                b.put_u64_le(*h);
            }
            PointerGetAttributes { ptr } => {
                b.put_u8(21);
                b.put_u64_le(*ptr);
            }
            MallocHost { bytes } => {
                b.put_u8(22);
                b.put_u64_le(*bytes);
            }
            CudnnCreate { pooled } => {
                b.put_u8(23);
                b.put_u8(*pooled as u8);
            }
            CudnnDestroy { h } => {
                b.put_u8(24);
                b.put_u64_le(*h);
            }
            CudnnCreateDescriptors { kind, n } => {
                b.put_u8(25);
                b.put_u8(*kind);
                b.put_u64_le(*n);
            }
            CudnnSetDescriptors { n } => {
                b.put_u8(26);
                b.put_u64_le(*n);
            }
            CudnnDestroyDescriptors { n } => {
                b.put_u8(27);
                b.put_u64_le(*n);
            }
            CudnnOp {
                h,
                work,
                bytes,
                api_calls,
            } => {
                b.put_u8(28);
                b.put_u64_le(*h);
                b.put_f64_le(*work);
                b.put_u64_le(*bytes);
                b.put_u64_le(*api_calls);
            }
            CublasCreate { pooled } => {
                b.put_u8(29);
                b.put_u8(*pooled as u8);
            }
            CublasDestroy { h } => {
                b.put_u8(30);
                b.put_u64_le(*h);
            }
            CublasOp {
                h,
                work,
                bytes,
                api_calls,
            } => {
                b.put_u8(31);
                b.put_u64_le(*h);
                b.put_f64_le(*work);
                b.put_u64_le(*bytes);
                b.put_u64_le(*api_calls);
            }
            Batch(reqs) => {
                b.put_u8(32);
                b.put_u32_le(reqs.len() as u32);
                for r in reqs {
                    r.encode_into(b);
                }
            }
            EndFunction => b.put_u8(33),
            PublishBuffer { key, ptr } => {
                b.put_u8(34);
                b.put_u64_le(*key);
                b.put_u64_le(*ptr);
            }
            AdoptBuffer { key } => {
                b.put_u8(35);
                b.put_u64_le(*key);
            }
        }
    }

    /// Deserialize from a frame. Payloads ([`WireBuf::Bytes`]) are zero-copy
    /// refcounted subslices of `frame`; nested [`Request::Batch`] frames
    /// deeper than [`MAX_BATCH_DEPTH`] are rejected with a [`WireError`].
    pub fn decode(frame: &mut Bytes) -> WireResult<Request> {
        Request::decode_at(frame, 0)
    }

    fn decode_at(frame: &mut Bytes, depth: u32) -> WireResult<Request> {
        use Request::*;
        let tag = get_u8(frame)?;
        Ok(match tag {
            1 => Init {
                pooled_context: get_u8(frame)? != 0,
            },
            2 => {
                let n = get_u32(frame)? as usize;
                // n is untrusted: cap the pre-allocation, let decode errors bound growth
                let mut kernels = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    kernels.push(get_str(frame)?);
                }
                RegisterModule { kernels }
            }
            3 => GetDeviceCount,
            4 => GetDeviceProps {
                dev: get_u32(frame)?,
            },
            5 => SetDevice {
                dev: get_u32(frame)?,
            },
            6 => Malloc {
                bytes: get_u64(frame)?,
            },
            7 => Free {
                ptr: get_u64(frame)?,
            },
            8 => Memset {
                ptr: get_u64(frame)?,
                value: get_u8(frame)?,
                bytes: get_u64(frame)?,
            },
            9 => MemcpyH2D {
                dst: get_u64(frame)?,
                data: get_buf(frame)?,
            },
            10 => MemcpyD2H {
                src: get_u64(frame)?,
                bytes: get_u64(frame)?,
                want_data: get_u8(frame)? != 0,
            },
            11 => PushCallConfiguration {
                cfg: get_cfg(frame)?,
            },
            12 => Launch {
                fptr: get_u64(frame)?,
                args: get_args(frame)?,
            },
            13 => LaunchConfigured {
                fptr: get_u64(frame)?,
                stream: get_u64(frame)?,
                cfg: get_cfg(frame)?,
                args: get_args(frame)?,
            },
            14 => Sync,
            15 => StreamCreate,
            16 => StreamDestroy { h: get_u64(frame)? },
            17 => StreamSync { h: get_u64(frame)? },
            18 => EventCreate,
            19 => EventRecord { h: get_u64(frame)? },
            20 => EventSync { h: get_u64(frame)? },
            21 => PointerGetAttributes {
                ptr: get_u64(frame)?,
            },
            22 => MallocHost {
                bytes: get_u64(frame)?,
            },
            23 => CudnnCreate {
                pooled: get_u8(frame)? != 0,
            },
            24 => CudnnDestroy { h: get_u64(frame)? },
            25 => CudnnCreateDescriptors {
                kind: get_u8(frame)?,
                n: get_u64(frame)?,
            },
            26 => CudnnSetDescriptors { n: get_u64(frame)? },
            27 => CudnnDestroyDescriptors { n: get_u64(frame)? },
            28 => CudnnOp {
                h: get_u64(frame)?,
                work: get_f64(frame)?,
                bytes: get_u64(frame)?,
                api_calls: get_u64(frame)?,
            },
            29 => CublasCreate {
                pooled: get_u8(frame)? != 0,
            },
            30 => CublasDestroy { h: get_u64(frame)? },
            31 => CublasOp {
                h: get_u64(frame)?,
                work: get_f64(frame)?,
                bytes: get_u64(frame)?,
                api_calls: get_u64(frame)?,
            },
            32 => {
                if depth >= MAX_BATCH_DEPTH {
                    return Err(WireError(format!(
                        "batch nesting exceeds depth {MAX_BATCH_DEPTH}"
                    )));
                }
                let n = get_u32(frame)? as usize;
                let mut reqs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    reqs.push(Request::decode_at(frame, depth + 1)?);
                }
                Batch(reqs)
            }
            33 => EndFunction,
            34 => PublishBuffer {
                key: get_u64(frame)?,
                ptr: get_u64(frame)?,
            },
            35 => AdoptBuffer {
                key: get_u64(frame)?,
            },
            t => return Err(WireError(format!("bad request tag {t}"))),
        })
    }

    /// Bytes this request occupies on the wire, counting logical payloads at
    /// their full size (what the network model must charge). Pure arithmetic
    /// over [`Request::encoded_len`] — nothing is allocated or encoded.
    pub fn wire_size(&self) -> u64 {
        self.encoded_len() + self.logical_extra()
    }

    /// Encode and compute [`Request::wire_size`] in one pass: the wire size
    /// is derived from the already-encoded frame's length instead of a
    /// second traversal.
    pub fn encode_sized(&self) -> (Bytes, u64) {
        let frame = self.encode();
        let size = frame.len() as u64 + self.logical_extra();
        (frame, size)
    }

    fn logical_extra(&self) -> u64 {
        match self {
            Request::MemcpyH2D {
                data: WireBuf::Logical(n),
                ..
            } => *n,
            Request::Batch(reqs) => reqs.iter().map(|r| r.logical_extra()).sum(),
            _ => 0,
        }
    }
}

impl Response {
    /// Exact number of bytes [`Response::encode`] will produce, computed
    /// arithmetically (see [`Request::encoded_len`]).
    pub fn encoded_len(&self) -> u64 {
        use Response::*;
        1 + match self {
            Ok => 0,
            Err { msg, .. } => 1 + str_len(msg),
            Ptr(_) | Handle(_) => 8,
            Count(_) => 4,
            Props(p) => str_len(&p.name) + 8 + 4 + 4 + 4,
            Data(d) => buf_len(d),
            Handles(hs) => vec_u64_len(hs),
            Fptrs(fs) => 4 + fs.iter().map(|(name, _)| str_len(name) + 8).sum::<u64>(),
            Attrs { alloc_size, .. } => 1 + 1 + if alloc_size.is_some() { 8 } else { 0 } + 4,
        }
    }

    /// Serialize into a fresh frame (allocated at exactly
    /// [`Response::encoded_len`] bytes).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.encoded_len() as usize);
        use Response::*;
        match self {
            Ok => b.put_u8(0),
            Err { class, msg } => {
                b.put_u8(1);
                b.put_u8(*class);
                put_str(&mut b, msg);
            }
            Ptr(p) => {
                b.put_u8(2);
                b.put_u64_le(*p);
            }
            Count(c) => {
                b.put_u8(3);
                b.put_u32_le(*c);
            }
            Props(p) => {
                b.put_u8(4);
                put_str(&mut b, &p.name);
                b.put_u64_le(p.total_mem);
                b.put_u32_le(p.sm_count);
                b.put_u32_le(p.cc.0);
                b.put_u32_le(p.cc.1);
            }
            Handle(h) => {
                b.put_u8(5);
                b.put_u64_le(*h);
            }
            Data(d) => {
                b.put_u8(6);
                put_buf(&mut b, d);
            }
            Handles(hs) => {
                b.put_u8(7);
                put_vec_u64(&mut b, hs);
            }
            Fptrs(fs) => {
                b.put_u8(8);
                b.put_u32_le(fs.len() as u32);
                for (name, fptr) in fs {
                    put_str(&mut b, name);
                    b.put_u64_le(*fptr);
                }
            }
            Attrs {
                is_device,
                alloc_size,
                device,
            } => {
                b.put_u8(9);
                b.put_u8(*is_device as u8);
                match alloc_size {
                    Some(s) => {
                        b.put_u8(1);
                        b.put_u64_le(*s);
                    }
                    None => b.put_u8(0),
                }
                b.put_u32_le(*device);
            }
        }
        debug_assert_eq!(b.len() as u64, self.encoded_len(), "encoded_len drift");
        b.freeze()
    }

    /// Deserialize from a frame.
    pub fn decode(frame: &mut Bytes) -> WireResult<Response> {
        use Response::*;
        let tag = get_u8(frame)?;
        std::result::Result::Ok(match tag {
            0 => Ok,
            1 => Err {
                class: get_u8(frame)?,
                msg: get_str(frame)?,
            },
            2 => Ptr(get_u64(frame)?),
            3 => Count(get_u32(frame)?),
            4 => Props(WireProps {
                name: get_str(frame)?,
                total_mem: get_u64(frame)?,
                sm_count: get_u32(frame)?,
                cc: (get_u32(frame)?, get_u32(frame)?),
            }),
            5 => Handle(get_u64(frame)?),
            6 => Data(get_buf(frame)?),
            7 => Handles(get_vec_u64(frame)?),
            8 => {
                let n = get_u32(frame)? as usize;
                let mut fs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = get_str(frame)?;
                    let fptr = get_u64(frame)?;
                    fs.push((name, fptr));
                }
                Fptrs(fs)
            }
            9 => Attrs {
                is_device: get_u8(frame)? != 0,
                alloc_size: match get_u8(frame)? {
                    0 => None,
                    1 => Some(get_u64(frame)?),
                    t => return std::result::Result::Err(WireError(format!("bad opt tag {t}"))),
                },
                device: get_u32(frame)?,
            },
            t => return std::result::Result::Err(WireError(format!("bad response tag {t}"))),
        })
    }

    /// Bytes on the wire, counting logical payloads at full size. Pure
    /// arithmetic — nothing is allocated or encoded.
    pub fn wire_size(&self) -> u64 {
        self.encoded_len() + self.logical_extra()
    }

    /// Encode and compute [`Response::wire_size`] in one pass.
    pub fn encode_sized(&self) -> (Bytes, u64) {
        let frame = self.encode();
        let size = frame.len() as u64 + self.logical_extra();
        (frame, size)
    }

    fn logical_extra(&self) -> u64 {
        match self {
            Response::Data(WireBuf::Logical(n)) => *n,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_req(r: &Request) {
        let mut frame = r.encode();
        let back = Request::decode(&mut frame).expect("decode");
        assert_eq!(&back, r);
        assert_eq!(frame.remaining(), 0, "frame fully consumed");
    }

    fn roundtrip_resp(r: &Response) {
        let mut frame = r.encode();
        let back = Response::decode(&mut frame).expect("decode");
        assert_eq!(&back, r);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(&Request::Init {
            pooled_context: true,
        });
        roundtrip_req(&Request::RegisterModule {
            kernels: vec!["kmeans_assign".into(), "kmeans_update".into()],
        });
        roundtrip_req(&Request::MemcpyH2D {
            dst: 0x7000_0000_0000,
            data: vec![1, 2, 3].into(),
        });
        roundtrip_req(&Request::LaunchConfigured {
            fptr: 42,
            stream: 7,
            cfg: WireCfg {
                grid: (1, 2, 3),
                block: (4, 5, 6),
            },
            args: WireArgs {
                ptrs: vec![1, 2],
                scalars: vec![99],
                bytes: 1000,
                work_hint: Some(0.5),
            },
        });
        roundtrip_req(&Request::Batch(vec![
            Request::Memset {
                ptr: 1,
                value: 0,
                bytes: 100,
            },
            Request::Sync,
        ]));
        roundtrip_req(&Request::PublishBuffer {
            key: 0xFEED_BEEF,
            ptr: 0x7000_0000_0000,
        });
        roundtrip_req(&Request::AdoptBuffer { key: 0xFEED_BEEF });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(&Response::Ok);
        roundtrip_resp(&Response::Err {
            class: err_class::OOM,
            msg: "requested 1 GB".into(),
        });
        roundtrip_resp(&Response::Props(WireProps {
            name: "V100".into(),
            total_mem: 16 << 30,
            sm_count: 80,
            cc: (7, 0),
        }));
        roundtrip_resp(&Response::Fptrs(vec![("k".into(), 7)]));
        roundtrip_resp(&Response::Attrs {
            is_device: true,
            alloc_size: Some(100),
            device: 0,
        });
        roundtrip_resp(&Response::Data(WireBuf::Logical(1 << 30)));
    }

    #[test]
    fn logical_payloads_counted_at_full_size_but_encoded_small() {
        let r = Request::MemcpyH2D {
            dst: 0,
            data: WireBuf::Logical(1 << 30),
        };
        assert!(r.encode().len() < 64, "marker only");
        assert!(r.wire_size() >= 1 << 30, "network charge is the real size");
        // nested in a batch too
        let b = Request::Batch(vec![r]);
        assert!(b.wire_size() >= 1 << 30);
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let full = Request::Malloc { bytes: 123 }.encode();
        for cut in 0..full.len() {
            let mut frame = full.slice(..cut);
            let _ = Request::decode(&mut frame); // must not panic
        }
        let mut empty = Bytes::new();
        assert!(Request::decode(&mut empty).is_err());
    }

    #[test]
    fn descriptor_kind_wire_mapping_is_bijective() {
        for k in DescriptorKind::ALL {
            assert_eq!(
                descriptor_kind_from_u8(descriptor_kind_to_u8(k)).unwrap(),
                k
            );
        }
        assert!(descriptor_kind_from_u8(200).is_err());
    }

    proptest! {
        #[test]
        fn prop_launch_args_roundtrip(
            ptrs in proptest::collection::vec(any::<u64>(), 0..8),
            scalars in proptest::collection::vec(any::<u64>(), 0..8),
            bytes in any::<u64>(),
            work in proptest::option::of(0.0f64..1e6),
            fptr in any::<u64>(),
        ) {
            let r = Request::Launch {
                fptr,
                args: WireArgs { ptrs, scalars, bytes, work_hint: work },
            };
            let mut frame = r.encode();
            let back = Request::decode(&mut frame).unwrap();
            prop_assert_eq!(back, r);
        }

        #[test]
        fn prop_h2d_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048), dst in any::<u64>()) {
            let r = Request::MemcpyH2D { dst, data: data.into() };
            let mut frame = r.encode();
            prop_assert_eq!(Request::decode(&mut frame).unwrap(), r);
        }

        #[test]
        fn prop_random_bytes_never_panic_decoder(
            raw in proptest::collection::vec(any::<u8>(), 0..4096),
            // Seed the frame with a run of valid tags so the fuzzer reaches
            // deep into variant bodies (and the Batch recursion) instead of
            // bailing on the first byte.
            prefix in proptest::collection::vec(1u8..36, 0..8),
        ) {
            let mut seeded = prefix;
            seeded.extend_from_slice(&raw);
            let mut frame = Bytes::from(seeded);
            let _ = Request::decode(&mut frame);
            let mut frame2 = frame.clone();
            let _ = Response::decode(&mut frame2);
        }

        #[test]
        fn prop_encoded_len_matches_encode(r in arb_request()) {
            prop_assert_eq!(r.encoded_len(), r.encode().len() as u64);
            // and wire_size = encoded_len + logical payload charge, always
            prop_assert!(r.wire_size() >= r.encoded_len());
        }

        #[test]
        fn prop_response_encoded_len_matches_encode(r in arb_response()) {
            prop_assert_eq!(r.encoded_len(), r.encode().len() as u64);
            prop_assert!(r.wire_size() >= r.encoded_len());
        }
    }

    use proptest::test_runner::TestRng;

    /// Strategy over every `Request` variant — including nested batches and
    /// logical payloads — for the encoded_len ≡ encode().len() equivalence.
    /// (The vendored proptest is a plain sampler, so this is a direct
    /// recursive generator rather than a combinator tree.)
    struct ArbRequest;
    impl Strategy for ArbRequest {
        type Value = Request;
        fn sample(&self, rng: &mut TestRng) -> Request {
            gen_request(rng, 0)
        }
    }
    fn arb_request() -> ArbRequest {
        ArbRequest
    }

    /// Strategy over every `Response` variant.
    struct ArbResponse;
    impl Strategy for ArbResponse {
        type Value = Response;
        fn sample(&self, rng: &mut TestRng) -> Response {
            gen_response(rng)
        }
    }
    fn arb_response() -> ArbResponse {
        ArbResponse
    }

    fn gen_string(rng: &mut TestRng) -> String {
        let len = rng.range(0usize..16);
        (0..len)
            .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
            .collect()
    }

    fn gen_buf(rng: &mut TestRng) -> WireBuf {
        if rng.next_u64().is_multiple_of(2) {
            let len = rng.range(0usize..64);
            WireBuf::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
        } else {
            WireBuf::Logical(rng.next_u64())
        }
    }

    fn gen_args(rng: &mut TestRng) -> WireArgs {
        WireArgs {
            ptrs: (0..rng.range(0usize..4)).map(|_| rng.next_u64()).collect(),
            scalars: (0..rng.range(0usize..4)).map(|_| rng.next_u64()).collect(),
            bytes: rng.next_u64(),
            work_hint: (rng.next_u64().is_multiple_of(2)).then(|| rng.unit_f64()),
        }
    }

    fn gen_cfg(rng: &mut TestRng) -> WireCfg {
        WireCfg {
            grid: (
                rng.next_u64() as u32,
                rng.next_u64() as u32,
                rng.next_u64() as u32,
            ),
            block: (
                rng.next_u64() as u32,
                rng.next_u64() as u32,
                rng.next_u64() as u32,
            ),
        }
    }

    fn gen_request(rng: &mut TestRng, depth: u32) -> Request {
        use Request::*;
        // Batch only below the decoder's depth cap, weighted in often enough
        // that nesting is exercised every run.
        let max_tag = if depth < MAX_BATCH_DEPTH { 35 } else { 33 };
        match rng.range(1u32..max_tag + 1) {
            1 => Init {
                pooled_context: rng.next_u64().is_multiple_of(2),
            },
            2 => RegisterModule {
                kernels: (0..rng.range(0usize..4)).map(|_| gen_string(rng)).collect(),
            },
            3 => GetDeviceCount,
            4 => GetDeviceProps {
                dev: rng.next_u64() as u32,
            },
            5 => SetDevice {
                dev: rng.next_u64() as u32,
            },
            6 => Malloc {
                bytes: rng.next_u64(),
            },
            7 => Free {
                ptr: rng.next_u64(),
            },
            8 => Memset {
                ptr: rng.next_u64(),
                value: rng.next_u64() as u8,
                bytes: rng.next_u64(),
            },
            9 => MemcpyH2D {
                dst: rng.next_u64(),
                data: gen_buf(rng),
            },
            10 => MemcpyD2H {
                src: rng.next_u64(),
                bytes: rng.next_u64(),
                want_data: rng.next_u64().is_multiple_of(2),
            },
            11 => PushCallConfiguration { cfg: gen_cfg(rng) },
            12 => Launch {
                fptr: rng.next_u64(),
                args: gen_args(rng),
            },
            13 => LaunchConfigured {
                fptr: rng.next_u64(),
                stream: rng.next_u64(),
                cfg: gen_cfg(rng),
                args: gen_args(rng),
            },
            14 => Sync,
            15 => StreamCreate,
            16 => StreamDestroy { h: rng.next_u64() },
            17 => StreamSync { h: rng.next_u64() },
            18 => EventCreate,
            19 => EventRecord { h: rng.next_u64() },
            20 => EventSync { h: rng.next_u64() },
            21 => PointerGetAttributes {
                ptr: rng.next_u64(),
            },
            22 => MallocHost {
                bytes: rng.next_u64(),
            },
            23 => CudnnCreate {
                pooled: rng.next_u64().is_multiple_of(2),
            },
            24 => CudnnDestroy { h: rng.next_u64() },
            25 => CudnnCreateDescriptors {
                kind: rng.next_u64() as u8,
                n: rng.next_u64(),
            },
            26 => CudnnSetDescriptors { n: rng.next_u64() },
            27 => CudnnDestroyDescriptors { n: rng.next_u64() },
            28 => CudnnOp {
                h: rng.next_u64(),
                work: rng.unit_f64(),
                bytes: rng.next_u64(),
                api_calls: rng.next_u64(),
            },
            29 => CublasCreate {
                pooled: rng.next_u64().is_multiple_of(2),
            },
            30 => CublasDestroy { h: rng.next_u64() },
            31 => CublasOp {
                h: rng.next_u64(),
                work: rng.unit_f64(),
                bytes: rng.next_u64(),
                api_calls: rng.next_u64(),
            },
            32 => EndFunction,
            33 => PublishBuffer {
                key: rng.next_u64(),
                ptr: rng.next_u64(),
            },
            34 => AdoptBuffer {
                key: rng.next_u64(),
            },
            _ => Batch(
                (0..rng.range(0usize..4))
                    .map(|_| gen_request(rng, depth + 1))
                    .collect(),
            ),
        }
    }

    fn gen_response(rng: &mut TestRng) -> Response {
        use Response::*;
        match rng.range(0u32..10) {
            0 => Ok,
            1 => Err {
                class: rng.next_u64() as u8,
                msg: gen_string(rng),
            },
            2 => Ptr(rng.next_u64()),
            3 => Count(rng.next_u64() as u32),
            4 => Props(WireProps {
                name: gen_string(rng),
                total_mem: rng.next_u64(),
                sm_count: rng.next_u64() as u32,
                cc: (rng.next_u64() as u32, rng.next_u64() as u32),
            }),
            5 => Handle(rng.next_u64()),
            6 => Data(gen_buf(rng)),
            7 => Handles((0..rng.range(0usize..8)).map(|_| rng.next_u64()).collect()),
            8 => Fptrs(
                (0..rng.range(0usize..4))
                    .map(|_| (gen_string(rng), rng.next_u64()))
                    .collect(),
            ),
            _ => Attrs {
                is_device: rng.next_u64().is_multiple_of(2),
                alloc_size: (rng.next_u64().is_multiple_of(2)).then(|| rng.next_u64()),
                device: rng.next_u64() as u32,
            },
        }
    }

    #[test]
    fn deeply_nested_batch_errors_instead_of_overflowing() {
        // A frame of repeated tag-32 prefixes claims batches nested far past
        // any legitimate producer. Pre-fix this recursed once per level and
        // aborted on stack overflow; now it must come back as a WireError.
        let mut raw = Vec::new();
        for _ in 0..100_000 {
            raw.push(32u8); // Batch tag
            raw.extend_from_slice(&1u32.to_le_bytes()); // "one element follows"
        }
        raw.push(14); // innermost: Sync
        let mut frame = Bytes::from(raw);
        let err = Request::decode(&mut frame).expect_err("must reject, not abort");
        assert!(err.0.contains("depth"), "unexpected error: {err}");
    }

    #[test]
    fn batch_nesting_at_the_cap_still_decodes() {
        // Depth MAX_BATCH_DEPTH itself is legal; one past is not.
        let mut r = Request::Sync;
        for _ in 0..MAX_BATCH_DEPTH {
            r = Request::Batch(vec![r]);
        }
        roundtrip_req(&r);
        let too_deep = Request::Batch(vec![r]);
        let mut frame = too_deep.encode();
        assert!(Request::decode(&mut frame).is_err());
    }

    #[test]
    fn decoded_payload_borrows_from_the_frame() {
        // Zero-copy contract: the decoded WireBuf is a subslice of the
        // arriving frame, not a fresh allocation.
        let r = Request::MemcpyH2D {
            dst: 7,
            data: vec![9u8; 4096].into(),
        };
        let frame = r.encode();
        let mut f = frame.clone();
        let back = Request::decode(&mut f).unwrap();
        match back {
            Request::MemcpyH2D {
                data: WireBuf::Bytes(b),
                ..
            } => {
                assert_eq!(b.len(), 4096);
                // same backing storage ⇒ the payload's first byte lives
                // inside the frame's allocation
                let frame_range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
                assert!(frame_range.contains(&(b.as_ptr() as usize)));
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn oversize_u64_vec_length_is_rejected() {
        // A claimed length of u32::MAX must fail the bounds check (and on
        // 32-bit targets must not wrap `n * 8` into a tiny number).
        let mut raw = vec![12u8]; // Launch tag
        raw.extend_from_slice(&8u64.to_le_bytes()); // fptr
        raw.extend_from_slice(&u32::MAX.to_le_bytes()); // ptrs len
        let mut frame = Bytes::from(raw);
        assert!(Request::decode(&mut frame).is_err());
    }
}
