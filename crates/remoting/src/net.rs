//! Network model between function hosts and GPU servers.
//!
//! The paper's testbed gives each p3.8xlarge "a network interface of up to
//! 10 Gbps"; AWS Lambda adds "lower bandwidth and larger variance". A
//! [`NetLink`] models one GPU server NIC: a pair of processor-sharing
//! directional links (all connected functions contend) plus a per-message
//! propagation latency with optional jitter.

use std::sync::Arc;

use dgsf_sim::{rng, Dur, GpsResource, ProcCtx, SimHandle};

use crate::faults::{LinkFaults, MsgFate};

/// Calibrated network parameters of a deployment.
#[derive(Debug, Clone)]
pub struct NetProfile {
    /// One-way RPC propagation latency.
    pub rpc_latency: Dur,
    /// Additional uniform jitter in `[0, rpc_jitter)` per message.
    pub rpc_jitter: Dur,
    /// GPU-server NIC bandwidth, bytes/s per direction.
    pub nic_bw: f64,
    /// Object-store (S3) download bandwidth per stream, bytes/s.
    pub s3_bw: f64,
}

impl NetProfile {
    /// The paper's OpenFaaS-on-EC2 deployment: 10 Gb/s NIC, low latency,
    /// ~1.2 Gb/s effective S3 throughput.
    pub fn datacenter() -> NetProfile {
        NetProfile {
            rpc_latency: Dur::from_micros(60),
            rpc_jitter: Dur::ZERO,
            nic_bw: 1.25e9,
            s3_bw: 0.15e9,
        }
    }

    /// The AWS Lambda deployment: higher, jittery latency and much lower
    /// effective bandwidth *between the function and the GPU server* — the
    /// cause of the NLP / image-classification spikes in Table II, whose
    /// extra cost tracks the model+input bytes that must cross the remoting
    /// link. S3 stays fast (downloads run inside AWS either way).
    pub fn lambda() -> NetProfile {
        NetProfile {
            rpc_latency: Dur::from_micros(250),
            rpc_jitter: Dur::from_micros(300),
            nic_bw: 0.05e9,
            s3_bw: 0.15e9,
        }
    }
}

/// Direction of a transfer on a [`NetLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Function host → GPU server.
    ToServer,
    /// GPU server → function host.
    ToClient,
}

/// Outcome of a transfer on a fault-injected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message(s) reached the other side.
    Delivered,
    /// Lost in the network (fault injection). The sender still paid the
    /// propagation latency and NIC bandwidth — the bytes left, then died.
    Dropped,
}

/// One GPU server's NIC: shared by every function currently remoting to it.
pub struct NetLink {
    profile: NetProfile,
    up: GpsResource,
    down: GpsResource,
    faults: Option<Arc<LinkFaults>>,
}

impl NetLink {
    /// Create a NIC with the given profile.
    pub fn new(h: &SimHandle, profile: NetProfile) -> Arc<NetLink> {
        NetLink::with_faults(h, profile, None)
    }

    /// Create a NIC with an optional fault-injection layer attached.
    pub fn with_faults(
        h: &SimHandle,
        profile: NetProfile,
        faults: Option<Arc<LinkFaults>>,
    ) -> Arc<NetLink> {
        Arc::new(NetLink {
            up: h.gps(profile.nic_bw),
            down: h.gps(profile.nic_bw),
            profile,
            faults,
        })
    }

    /// The link's profile.
    pub fn profile(&self) -> &NetProfile {
        &self.profile
    }

    /// The attached fault layer, if any.
    pub fn faults(&self) -> Option<&Arc<LinkFaults>> {
        self.faults.as_ref()
    }

    /// Move `bytes` across the link `repeat` times back-to-back (used to
    /// model `repeat` sequential round trips of an un-batched call pattern
    /// without creating `repeat` simulation events). Charges propagation
    /// latency per message — each message drawing its own jitter, so the
    /// variance of an aggregate scales like `repeat` independent round trips
    /// rather than `repeat` perfectly correlated ones — plus
    /// shared-bandwidth time for the payloads. With a fault layer attached
    /// the transfer may be [`Delivery::Dropped`]: the cost is still charged
    /// (the bytes were sent), but the receiver never sees them.
    pub fn transfer(&self, p: &ProcCtx, dir: Direction, bytes: u64, repeat: u32) -> Delivery {
        if repeat == 0 {
            return Delivery::Delivered;
        }
        let fate = match &self.faults {
            Some(f) => f.fate(p.now(), repeat),
            None => MsgFate::Deliver {
                extra_delay: Dur::ZERO,
            },
        };
        let tel = p.telemetry();
        if tel.is_enabled() {
            tel.counter_add("net.messages", repeat as u64);
            let key = match dir {
                Direction::ToServer => "net.bytes.up",
                Direction::ToClient => "net.bytes.down",
            };
            tel.histogram_record(key, bytes.saturating_mul(repeat as u64));
            match fate {
                MsgFate::Drop => tel.counter_add("net.dropped", 1),
                MsgFate::Deliver { extra_delay } if extra_delay > Dur::ZERO => {
                    tel.counter_add("net.delayed", 1)
                }
                MsgFate::Deliver { .. } => {}
            }
        }
        let mut lat = Dur(self
            .profile
            .rpc_latency
            .as_nanos()
            .saturating_mul(repeat as u64));
        if self.profile.rpc_jitter > Dur::ZERO {
            let j = p.with_rng(|r| {
                (0..repeat).fold(Dur::ZERO, |acc, _| {
                    acc.saturating_add(rng::uniform_gap(r, Dur::ZERO, self.profile.rpc_jitter))
                })
            });
            lat = lat.saturating_add(j);
        }
        if let MsgFate::Deliver { extra_delay } = fate {
            lat = lat.saturating_add(extra_delay);
        }
        p.sleep(lat);
        let link = match dir {
            Direction::ToServer => &self.up,
            Direction::ToClient => &self.down,
        };
        link.acquire(p, bytes as f64 * repeat as f64);
        match fate {
            MsgFate::Deliver { .. } => Delivery::Delivered,
            MsgFate::Drop => Delivery::Dropped,
        }
    }

    /// Move one migration state-transfer of `bytes` (context + handle-pool
    /// descriptors) across the server NIC. Unlike [`NetLink::transfer`] this
    /// asks the fault layer for a *migration* fate — a dedicated RNG stream
    /// and counter — and never draws simulation-RNG jitter, so adding
    /// migrations to a run perturbs neither ordinary message fates nor
    /// arrival processes. The sender pays latency and bandwidth even when
    /// the transfer is dropped mid-flight.
    pub fn transfer_state(&self, p: &ProcCtx, bytes: u64) -> Delivery {
        let fate = match &self.faults {
            Some(f) => f.migration_fate(p.now()),
            None => MsgFate::Deliver {
                extra_delay: Dur::ZERO,
            },
        };
        let tel = p.telemetry();
        if tel.is_enabled() {
            tel.counter_add("net.migration_messages", 1);
            tel.histogram_record("net.bytes.migration", bytes);
            match fate {
                MsgFate::Drop => tel.counter_add("net.migration_dropped", 1),
                MsgFate::Deliver { extra_delay } if extra_delay > Dur::ZERO => {
                    tel.counter_add("net.migration_delayed", 1)
                }
                MsgFate::Deliver { .. } => {}
            }
        }
        let mut lat = self.profile.rpc_latency;
        if let MsgFate::Deliver { extra_delay } = fate {
            lat = lat.saturating_add(extra_delay);
        }
        p.sleep(lat);
        self.up.acquire(p, bytes as f64);
        match fate {
            MsgFate::Deliver { .. } => Delivery::Delivered,
            MsgFate::Drop => Delivery::Dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Sim;
    use parking_lot::Mutex;

    #[test]
    fn latency_plus_bandwidth() {
        let mut sim = Sim::new(1);
        let link = NetLink::new(
            &sim.handle(),
            NetProfile {
                rpc_latency: Dur::from_millis(1),
                rpc_jitter: Dur::ZERO,
                nic_bw: 1e6, // 1 MB/s
                s3_bw: 1e6,
            },
        );
        let t = Arc::new(Mutex::new(0.0));
        let t2 = t.clone();
        sim.spawn("xfer", move |p| {
            link.transfer(p, Direction::ToServer, 1_000_000, 1);
            *t2.lock() = p.now().as_secs_f64();
        });
        sim.run();
        let elapsed = *t.lock();
        assert!(
            (elapsed - 1.001).abs() < 1e-6,
            "1 ms latency + 1 s transfer: {elapsed}"
        );
    }

    #[test]
    fn repeat_charges_n_round_latencies() {
        let mut sim = Sim::new(1);
        let link = NetLink::new(
            &sim.handle(),
            NetProfile {
                rpc_latency: Dur::from_micros(100),
                rpc_jitter: Dur::ZERO,
                nic_bw: 1e12,
                s3_bw: 1e12,
            },
        );
        let t = Arc::new(Mutex::new(0.0));
        let t2 = t.clone();
        sim.spawn("xfer", move |p| {
            link.transfer(p, Direction::ToServer, 64, 1000);
            *t2.lock() = p.now().as_secs_f64();
        });
        sim.run();
        let elapsed = *t.lock();
        assert!((elapsed - 0.1).abs() < 1e-3, "1000 × 100 µs: {elapsed}");
    }

    #[test]
    fn concurrent_transfers_share_bandwidth() {
        let mut sim = Sim::new(1);
        let link = NetLink::new(
            &sim.handle(),
            NetProfile {
                rpc_latency: Dur::ZERO,
                rpc_jitter: Dur::ZERO,
                nic_bw: 1e6,
                s3_bw: 1e6,
            },
        );
        let done = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let link = link.clone();
            let done = done.clone();
            sim.spawn(&format!("x{i}"), move |p| {
                link.transfer(p, Direction::ToServer, 500_000, 1);
                done.lock().push(p.now().as_secs_f64());
            });
        }
        sim.run();
        for t in done.lock().iter() {
            assert!((t - 1.0).abs() < 1e-6, "two halves share the MB/s: {t}");
        }
    }

    #[test]
    fn aggregate_jitter_is_a_sum_of_independent_draws() {
        // Sum of `n` independent U[0, J) draws concentrates around n·J/2
        // (σ = J·√(n/12) ≈ 0.9 % of the mean at n = 1000). The old
        // correlated-jitter bug scaled a single draw by n, which lands in
        // any given 10 %-wide band around the midpoint only 10 % of the
        // time — across several seeds it would certainly escape.
        let jitter = Dur::from_micros(300);
        let n = 1000u32;
        for seed in 1..=5 {
            let mut sim = Sim::new(seed);
            let link = NetLink::new(
                &sim.handle(),
                NetProfile {
                    rpc_latency: Dur::ZERO,
                    rpc_jitter: jitter,
                    nic_bw: 1e18,
                    s3_bw: 1e18,
                },
            );
            let t = Arc::new(Mutex::new(0.0));
            let t2 = t.clone();
            sim.spawn("xfer", move |p| {
                link.transfer(p, Direction::ToServer, 64, n);
                *t2.lock() = p.now().as_secs_f64();
            });
            sim.run();
            let elapsed = *t.lock();
            let mid = n as f64 * jitter.as_secs_f64() / 2.0;
            assert!(
                (elapsed - mid).abs() < 0.05 * 2.0 * mid,
                "seed {seed}: aggregate jitter {elapsed:.6} s not near {mid:.6} s"
            );
        }
    }

    #[test]
    fn faulted_link_drops_but_still_charges_the_send() {
        use crate::faults::{FaultPlan, LinkFaults};
        let mut sim = Sim::new(1);
        let faults = LinkFaults::new(&FaultPlan::new(0).drop_message(0));
        let link = NetLink::with_faults(
            &sim.handle(),
            NetProfile {
                rpc_latency: Dur::from_millis(1),
                rpc_jitter: Dur::ZERO,
                nic_bw: 1e6,
                s3_bw: 1e6,
            },
            Some(faults.clone()),
        );
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("xfer", move |p| {
            let first = link.transfer(p, Direction::ToServer, 1_000_000, 1);
            let t1 = p.now().as_secs_f64();
            let second = link.transfer(p, Direction::ToServer, 1_000_000, 1);
            *o.lock() = Some((first, t1, second, p.now().as_secs_f64()));
        });
        sim.run();
        let (first, t1, second, t2) = out.lock().take().unwrap();
        assert_eq!(first, Delivery::Dropped);
        assert_eq!(second, Delivery::Delivered);
        assert!((t1 - 1.001).abs() < 1e-6, "dropped send still pays: {t1}");
        assert!((t2 - 2.002).abs() < 1e-6, "second send: {t2}");
        assert_eq!(faults.stats().dropped, 1);
    }

    #[test]
    fn lambda_profile_is_slower_and_jittery() {
        let dc = NetProfile::datacenter();
        let lam = NetProfile::lambda();
        assert!(lam.rpc_latency > dc.rpc_latency);
        assert!(lam.rpc_jitter > Dur::ZERO);
        assert!(lam.nic_bw < dc.nic_bw);
    }
}
