//! Property-based tests of the remoting layer: the paper's central
//! transparency claim (C1) as a property — *no optimization configuration
//! may change observable results*, only timing.

use std::sync::Arc;

use dgsf_cuda::{
    CostTable, CudaApi, CudaContext, GpuSession, HostBuf, KernelArgs, KernelCost, KernelDef,
    LaunchConfig, ModuleRegistry, NativeCuda,
};
use dgsf_gpu::{Gpu, GpuId, MB};
use dgsf_remoting::{Dispatcher, NetLink, NetProfile, OptConfig, RemoteCuda, RpcClient, RpcInbox};
use dgsf_sim::Sim;
use parking_lot::Mutex;
use proptest::prelude::*;

fn registry() -> Arc<ModuleRegistry> {
    Arc::new(ModuleRegistry::new().with(KernelDef::functional(
        "affine",
        KernelCost::Fixed(0.0005),
        |view, _c, args| {
            let n = args.scalars[0] as usize;
            let scale = f32::from_bits(args.scalars[1] as u32);
            let bias = f32::from_bits(args.scalars[2] as u32);
            let v = view.read_f32s(args.ptrs[0], n);
            let out: Vec<f32> = v.iter().map(|x| x * scale + bias).collect();
            view.write_f32s(args.ptrs[0], &out);
        },
    )))
}

/// Run the pipeline natively and return the resulting floats.
fn run_native(data: &[f32], steps: &[(f32, f32)]) -> Vec<f32> {
    let mut sim = Sim::new(1);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    let data = data.to_vec();
    let steps = steps.to_vec();
    sim.spawn("native", move |p| {
        let gpu = Gpu::v100(&h, GpuId(0));
        let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
        *o.lock() = Some(drive(&mut api, p, &data, &steps));
    });
    sim.run();
    let r = out.lock().take().unwrap();
    r
}

/// Run the same pipeline through the remoting stack under `opts`.
fn run_remote(data: &[f32], steps: &[(f32, f32)], opts: OptConfig) -> Vec<f32> {
    let mut sim = Sim::new(1);
    let h = sim.handle();
    let gpu = Gpu::v100(&h, GpuId(0));
    let link = NetLink::new(&h, NetProfile::datacenter());
    let (client, inbox) = RpcClient::connect(&h, link.clone());
    let reg = registry();
    let h2 = h.clone();
    sim.spawn("server", move |p| {
        let costs = Arc::new(CostTable::default());
        let ctx = CudaContext::create(p, &h2, gpu, costs, false).unwrap();
        let session = GpuSession::new(&h2, ctx, None);
        let mut d = Dispatcher::new(session, reg);
        while let Some(env) = inbox.next(p) {
            let req = RpcInbox::decode(&env).unwrap();
            let resp = d.handle(p, req, env.repeat);
            inbox.respond(p, &link, &env, &resp);
        }
    });
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    let data = data.to_vec();
    let steps = steps.to_vec();
    sim.spawn("guest", move |p| {
        let mut api = RemoteCuda::new(client, opts);
        *o.lock() = Some(drive(&mut api, p, &data, &steps));
        api.finish(p).unwrap();
    });
    sim.run();
    let r = out.lock().take().unwrap();
    r
}

/// The application trace: upload, run a chain of affine kernels, read back.
fn drive(
    api: &mut dyn CudaApi,
    p: &dgsf_sim::ProcCtx,
    data: &[f32],
    steps: &[(f32, f32)],
) -> Vec<f32> {
    api.runtime_init(p).unwrap();
    api.register_module(p, registry()).unwrap();
    let buf = api.malloc(p, 2 * MB).unwrap();
    api.memcpy_h2d(p, buf, HostBuf::from_f32s(data)).unwrap();
    for (scale, bias) in steps {
        api.launch_kernel(
            p,
            "affine",
            LaunchConfig::linear(data.len() as u64, 128),
            KernelArgs {
                ptrs: vec![buf],
                scalars: vec![
                    data.len() as u64,
                    scale.to_bits() as u64,
                    bias.to_bits() as u64,
                ],
                ..Default::default()
            },
        )
        .unwrap();
    }
    api.device_synchronize(p).unwrap();
    api.memcpy_d2h(p, buf, data.len() as u64 * 4, true)
        .unwrap()
        .to_f32s()
        .unwrap()
}

fn opt_config() -> impl Strategy<Value = OptConfig> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0usize..16,
    )
        .prop_map(|(a, b, c, d, e, t)| OptConfig {
            pooled_runtime: a,
            pooled_handles: b,
            descriptor_pools: c,
            batching: d,
            localization: e,
            batch_flush_threshold: t,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// C1 as a property: any combination of optimization layers produces
    /// bit-identical results to native execution.
    #[test]
    fn transparency_holds_for_every_opt_config(
        data in proptest::collection::vec(-100.0f32..100.0, 1..64),
        steps in proptest::collection::vec((-2.0f32..2.0, -5.0f32..5.0), 1..6),
        opts in opt_config(),
    ) {
        let native = run_native(&data, &steps);
        let remote = run_remote(&data, &steps, opts);
        prop_assert_eq!(native, remote, "opts {:?} changed results", opts);
    }
}
