//! Allocation budget of the steady-state RPC hot path.
//!
//! Wire v2's point is that a round trip allocates a small, *constant*
//! amount: one exact-capacity frame per encode (no `wire_size()` throwaway
//! encode, no per-call reply channel, no payload copy on decode). This
//! harness counts real allocator traffic across thousands of steady-state
//! round trips and pins the per-call budget; a regression that reintroduces
//! a double encode or a per-call channel shows up as a budget blowout, not
//! a subjective slowdown.
//!
//! Lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgsf_remoting::wire::{Request, Response};
use dgsf_remoting::{NetLink, NetProfile, RpcClient, RpcInbox};
use dgsf_sim::{Dur, Sim};
use parking_lot::Mutex;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates straight to `System`; the counters are simple atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::SeqCst),
        ALLOC_BYTES.load(Ordering::SeqCst),
    )
}

#[test]
fn steady_state_round_trip_allocation_is_bounded() {
    const WARMUP: usize = 200;
    const MEASURED: u64 = 2_000;
    // Budget per round trip, with ~50% headroom over the measured 8 calls /
    // ~780 B (two frame Arcs, channel nodes, kernel wake bookkeeping). The
    // old double-encode + per-call reply channel path cannot fit in it.
    const MAX_CALLS_PER_RT: u64 = 12;
    const MAX_BYTES_PER_RT: u64 = 1536;

    let mut sim = Sim::new(7);
    let h = sim.handle();
    let link = NetLink::new(
        &h,
        NetProfile {
            rpc_latency: Dur::from_micros(60),
            rpc_jitter: Dur::ZERO,
            nic_bw: 1.25e9,
            s3_bw: 0.15e9,
        },
    );
    let (client, inbox) = RpcClient::connect(&h, link.clone());
    let srv_link = link.clone();
    sim.spawn("server", move |p| {
        while let Some(env) = inbox.next(p) {
            let _req = RpcInbox::decode(&env).unwrap();
            inbox.respond(p, &srv_link, &env, &Response::Ok);
        }
    });
    let measured = Arc::new(Mutex::new((0u64, 0u64)));
    let m = measured.clone();
    sim.spawn("client", move |p| {
        for _ in 0..WARMUP {
            client.call(p, &Request::Sync).unwrap();
        }
        let (calls0, bytes0) = snapshot();
        for _ in 0..MEASURED {
            client.call(p, &Request::Sync).unwrap();
        }
        let (calls1, bytes1) = snapshot();
        *m.lock() = (calls1 - calls0, bytes1 - bytes0);
    });
    sim.run();
    let (calls, bytes) = *measured.lock();
    assert!(calls > 0, "harness must observe allocator traffic");
    let calls_per_rt = calls / MEASURED;
    let bytes_per_rt = bytes / MEASURED;
    assert!(
        calls_per_rt <= MAX_CALLS_PER_RT,
        "steady-state round trip allocates too often: {calls_per_rt} calls/rt \
         (budget {MAX_CALLS_PER_RT}) — double encode or per-call channel regression?"
    );
    assert!(
        bytes_per_rt <= MAX_BYTES_PER_RT,
        "steady-state round trip allocates too much: {bytes_per_rt} B/rt \
         (budget {MAX_BYTES_PER_RT})"
    );
    println!("steady-state rpc: {calls_per_rt} allocs/rt, {bytes_per_rt} B/rt");
}

#[test]
fn encode_allocates_exactly_once() {
    // The exact-capacity single-pass encode: one backing buffer, sized by
    // `encoded_len()`, never grown; `wire_size()` allocates nothing at all.
    let req = Request::Launch {
        fptr: 0xdead_beef,
        args: dgsf_remoting::wire::WireArgs {
            ptrs: vec![1, 2, 3, 4],
            scalars: vec![5, 6],
            bytes: 1 << 20,
            work_hint: Some(0.25),
        },
    };
    let (c0, _) = snapshot();
    let size = req.wire_size();
    let (c1, _) = snapshot();
    assert_eq!(c1 - c0, 0, "wire_size() must not allocate");
    let frame = req.encode();
    let (c2, _) = snapshot();
    // BytesMut buffer + the Arc that freeze() wraps it in.
    assert!(
        c2 - c1 <= 2,
        "encode must be a single exact-capacity pass, saw {} allocations",
        c2 - c1
    );
    assert_eq!(frame.len() as u64, size);
}
