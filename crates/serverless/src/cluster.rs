//! The cluster-level fleet balancer (§IV's open policy space, scaled out).
//!
//! The paper's prototype uses a fixed round-robin choice over GPU servers
//! and notes that "different policies can be used in a commercial
//! deployment". This module is that commercial deployment layer: it routes
//! each invocation across a sharded fleet of [`GpuServer`]s using the
//! monitor's exported gauges ([`ServerGauges`]) — queue depth, active
//! functions, live API-server capacity and memory pressure — and it
//! **never** routes to a server whose lease has expired (a server whose
//! whole API-server pool has been declared dead serves nothing).
//!
//! Selection is a pure function ([`select`]) over gauge snapshots, so the
//! routing invariants are property-testable without running a simulation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dgsf_server::{FleetPolicy, GpuServer, ServerGauges};

/// Weight of one active/queued function in the load-aware score, relative
/// to one permille of memory pressure. Load dominates (a queued function
/// costs as much as 100% memory pressure); memory breaks ties between
/// equally loaded servers.
const LOAD_WEIGHT: u64 = 1000;

/// Penalty per in-flight migration in the load-aware score: a migrating
/// server is briefly stalled at an API-call boundary (quiesce + state
/// transfer), so new work placed there eats that stall. Half a per-slot
/// function's weight steers traffic away without blacklisting the box.
const MIGRATION_WEIGHT: u64 = 500 * LOAD_WEIGHT;

/// Load-aware score of one server: lower is better. Combines queue depth
/// and active functions (normalized by live capacity, so a big server
/// absorbs more before looking loaded) with memory pressure in permille,
/// plus a transient penalty while migrations are in flight.
fn load_score(g: &ServerGauges) -> u64 {
    let live = g.live_api_servers().max(1) as u64;
    let load = g.active_functions as u64 + g.queued_functions as u64;
    // Per-slot load in milli-functions: 1500 means 1.5 functions per live
    // API server (queue building up).
    let per_slot_milli = load.saturating_mul(1000) / live;
    per_slot_milli
        .saturating_mul(LOAD_WEIGHT)
        .saturating_add(g.mem_used_permille())
        .saturating_add((g.migrations_in_flight as u64).saturating_mul(MIGRATION_WEIGHT))
}

/// Choose a fleet index under `policy` from gauge `snaps`.
///
/// * Servers with no live API server (expired lease) are never eligible.
/// * `avoid` (the server a previous attempt just failed on) is skipped
///   when any other live server exists.
/// * `rr` is the round-robin cursor value for [`FleetPolicy::RoundRobin`].
/// * Ties break toward the lowest index, so the choice is deterministic.
///
/// Returns `None` when every server's lease has expired.
pub fn select(
    policy: FleetPolicy,
    snaps: &[ServerGauges],
    rr: usize,
    avoid: Option<usize>,
) -> Option<usize> {
    let mut eligible: Vec<usize> = (0..snaps.len())
        .filter(|&i| snaps[i].lease_live() && Some(i) != avoid)
        .collect();
    if eligible.is_empty() {
        // Nothing but the avoided server left: better a suspect server
        // than none, as long as its lease is live.
        eligible = (0..snaps.len())
            .filter(|&i| snaps[i].lease_live())
            .collect();
    }
    if eligible.is_empty() {
        return None;
    }
    let pick = match policy {
        FleetPolicy::RoundRobin => eligible[rr % eligible.len()],
        FleetPolicy::LeastLoaded => eligible
            .into_iter()
            .min_by_key(|&i| (snaps[i].active_functions, i))
            .expect("non-empty"),
        FleetPolicy::MostLoaded => eligible
            .into_iter()
            .max_by_key(|&i| (snaps[i].active_functions, usize::MAX - i))
            .expect("non-empty"),
        FleetPolicy::LoadAware => eligible
            .into_iter()
            .min_by_key(|&i| (load_score(&snaps[i]), i))
            .expect("non-empty"),
    };
    Some(pick)
}

/// The balancer: a fleet policy plus the round-robin cursor. Cheap to
/// share; [`crate::Backend`] owns one and consults it per attempt.
pub struct ClusterBalancer {
    policy: FleetPolicy,
    rr: AtomicUsize,
}

impl ClusterBalancer {
    /// A balancer under `policy`.
    pub fn new(policy: FleetPolicy) -> ClusterBalancer {
        ClusterBalancer {
            policy,
            rr: AtomicUsize::new(0),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> FleetPolicy {
        self.policy
    }

    /// Route one invocation across `fleet`, steering away from `avoid`
    /// when possible. `None` means the whole fleet is lease-expired.
    pub fn route(&self, fleet: &[Arc<GpuServer>], avoid: Option<usize>) -> Option<usize> {
        let snaps: Vec<ServerGauges> = fleet.iter().map(|s| s.gauges()).collect();
        self.route_snapshots(&snaps, avoid)
    }

    /// [`route`](Self::route) over pre-collected gauges (the testable
    /// entry point; advances the round-robin cursor exactly like `route`).
    pub fn route_snapshots(&self, snaps: &[ServerGauges], avoid: Option<usize>) -> Option<usize> {
        let rr = match self.policy {
            FleetPolicy::RoundRobin => self.rr.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        select(self.policy, snaps, rr, avoid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges(live: usize, failed: usize, active: usize, queued: usize) -> ServerGauges {
        ServerGauges {
            pool_size: live + failed,
            failed_api_servers: failed,
            active_functions: active,
            queued_functions: queued,
            used_mem_bytes: 0,
            total_mem_bytes: 16 << 30,
            migrations_in_flight: 0,
        }
    }

    #[test]
    fn round_robin_skips_dead_servers() {
        let snaps = vec![gauges(1, 0, 0, 0), gauges(0, 2, 0, 0), gauges(1, 0, 0, 0)];
        let b = ClusterBalancer::new(FleetPolicy::RoundRobin);
        let picks: Vec<usize> = (0..4)
            .map(|_| b.route_snapshots(&snaps, None).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn load_aware_prefers_idle_then_memory() {
        // Same load, different memory pressure: lower pressure wins.
        let mut a = gauges(2, 0, 1, 0);
        a.used_mem_bytes = 8 << 30;
        let b_ = gauges(2, 0, 1, 0); // 0 bytes used
        assert_eq!(select(FleetPolicy::LoadAware, &[a, b_], 0, None), Some(1));
        // Queue depth dominates memory.
        let mut busy = gauges(2, 0, 2, 3);
        busy.used_mem_bytes = 0;
        let mut calm = gauges(2, 0, 1, 0);
        calm.used_mem_bytes = 12 << 30;
        assert_eq!(
            select(FleetPolicy::LoadAware, &[busy, calm], 0, None),
            Some(1)
        );
    }

    #[test]
    fn avoid_is_respected_unless_it_is_the_last_live_server() {
        let snaps = vec![gauges(1, 0, 0, 0), gauges(1, 0, 5, 5)];
        assert_eq!(
            select(FleetPolicy::LeastLoaded, &snaps, 0, Some(0)),
            Some(1)
        );
        let lone = vec![gauges(1, 0, 0, 0), gauges(0, 1, 0, 0)];
        assert_eq!(select(FleetPolicy::LeastLoaded, &lone, 0, Some(0)), Some(0));
    }

    #[test]
    fn load_aware_steers_around_in_flight_migrations() {
        // Equal load and memory, but server 0 is mid-migration: the
        // balancer routes to server 1 until the move commits.
        let mut migrating = gauges(2, 0, 1, 0);
        migrating.migrations_in_flight = 1;
        let calm = gauges(2, 0, 1, 0);
        assert_eq!(
            select(FleetPolicy::LoadAware, &[migrating, calm], 0, None),
            Some(1)
        );
        // The penalty is transient and bounded: a migrating-but-idle server
        // still beats a heavily queued one.
        let mut migrating_idle = gauges(2, 0, 0, 0);
        migrating_idle.migrations_in_flight = 1;
        let queued = gauges(2, 0, 2, 2);
        assert_eq!(
            select(FleetPolicy::LoadAware, &[migrating_idle, queued], 0, None),
            Some(0)
        );
    }

    #[test]
    fn all_dead_routes_nowhere() {
        let snaps = vec![gauges(0, 1, 0, 0), gauges(0, 4, 0, 0)];
        for p in [
            FleetPolicy::RoundRobin,
            FleetPolicy::LeastLoaded,
            FleetPolicy::MostLoaded,
            FleetPolicy::LoadAware,
        ] {
            assert_eq!(select(p, &snaps, 0, None), None);
        }
    }
}
