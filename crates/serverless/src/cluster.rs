//! The cluster-level fleet balancer (§IV's open policy space, scaled out).
//!
//! The paper's prototype uses a fixed round-robin choice over GPU servers
//! and notes that "different policies can be used in a commercial
//! deployment". This module is that commercial deployment layer: it routes
//! each invocation across a sharded fleet of [`GpuServer`]s using the
//! monitor's exported gauges ([`ServerGauges`]) — queue depth, active
//! functions, live API-server capacity and memory pressure — and it
//! **never** routes to a server whose lease has expired (a server whose
//! whole API-server pool has been declared dead serves nothing).
//!
//! Selection is a pure function ([`select`]) over gauge snapshots, so the
//! routing invariants are property-testable without running a simulation.
//!
//! ## Sticky tenant placement (MQFQ-Sticky)
//!
//! With a [`StickyConfig`] installed, the balancer remembers which fleet
//! members each tenant has landed on (its *warm set* — servers already
//! holding the tenant's warm contexts and cached modules) and steers
//! repeat traffic back there: warm servers get a score bonus under
//! [`FleetPolicy::LoadAware`], and once a tenant's warm set reaches the
//! **max-share bound** (`max_share_permille` of the fleet), routing is
//! confined to the warm set entirely — a heavy tenant concentrates on its
//! slice of the fleet instead of spraying cold starts everywhere, and it
//! can never capture servers beyond its share and defeat the per-tenant
//! fair queues inside each monitor. Warm entries for lease-expired servers
//! are pruned, so a dead server's slot returns to the pool.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dgsf_server::{FleetPolicy, GpuServer, ServerGauges};
use parking_lot::Mutex;

/// Weight of one active/queued function in the load-aware score, relative
/// to one permille of memory pressure. Load dominates (a queued function
/// costs as much as 100% memory pressure); memory breaks ties between
/// equally loaded servers.
const LOAD_WEIGHT: u64 = 1000;

/// Penalty per in-flight migration in the load-aware score: a migrating
/// server is briefly stalled at an API-call boundary (quiesce + state
/// transfer), so new work placed there eats that stall. Half a per-slot
/// function's weight steers traffic away without blacklisting the box.
const MIGRATION_WEIGHT: u64 = 500 * LOAD_WEIGHT;

/// Load-aware score of one server: lower is better. Combines queue depth
/// and active functions (normalized by live capacity, so a big server
/// absorbs more before looking loaded) with memory pressure in permille,
/// plus a transient penalty while migrations are in flight.
fn load_score(g: &ServerGauges) -> u64 {
    let live = g.live_api_servers().max(1) as u64;
    let load = g.active_functions as u64 + g.queued_functions as u64;
    // Per-slot load in milli-functions: 1500 means 1.5 functions per live
    // API server (queue building up).
    let per_slot_milli = load.saturating_mul(1000) / live;
    per_slot_milli
        .saturating_mul(LOAD_WEIGHT)
        .saturating_add(g.mem_used_permille())
        .saturating_add((g.migrations_in_flight as u64).saturating_mul(MIGRATION_WEIGHT))
}

/// Bounded sticky tenant→server placement (the "Sticky" half of
/// MQFQ-Sticky).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StickyConfig {
    /// Largest fraction of the fleet (per mille) one tenant's warm set may
    /// span; once reached, the tenant's traffic is confined to its warm
    /// servers. At least one server is always allowed.
    pub max_share_permille: u64,
    /// Load-score bonus a warm server gets under
    /// [`FleetPolicy::LoadAware`] before the cap bites: large enough to
    /// win most ties against cold servers, small enough that a genuinely
    /// overloaded warm server still loses (1 000 000 = one whole function
    /// per slot of load).
    pub sticky_bonus: u64,
}

impl Default for StickyConfig {
    fn default() -> Self {
        StickyConfig {
            max_share_permille: 500,
            sticky_bonus: 1_500_000,
        }
    }
}

impl StickyConfig {
    /// Default stickiness: half the fleet per tenant, a 1.5-function bonus.
    pub fn new() -> StickyConfig {
        StickyConfig::default()
    }

    /// Set the max-share bound (per mille, clamped to 1..=1000).
    pub fn with_max_share(mut self, permille: u64) -> Self {
        self.max_share_permille = permille.clamp(1, 1000);
        self
    }

    /// Set the warm-server load-score bonus.
    pub fn with_bonus(mut self, bonus: u64) -> Self {
        self.sticky_bonus = bonus;
        self
    }
}

/// One tenant's placement affinity, resolved against the live fleet.
#[derive(Debug, Clone)]
pub struct TenantAffinity {
    /// Fleet indices already warm for the tenant (lease-live only).
    pub warm: BTreeSet<usize>,
    /// True when the warm set has reached the max-share bound: routing is
    /// confined to warm servers (unless none is live).
    pub capped: bool,
    /// Load-score bonus for warm servers under load-aware selection.
    pub bonus: u64,
}

/// Choose a fleet index under `policy` from gauge `snaps`.
///
/// * Servers with no live API server (expired lease) are never eligible.
/// * `avoid` (the server a previous attempt just failed on) is skipped
///   when any other live server exists.
/// * `rr` is the round-robin cursor value for [`FleetPolicy::RoundRobin`].
/// * Ties break toward the lowest index, so the choice is deterministic.
///
/// Returns `None` when every server's lease has expired.
pub fn select(
    policy: FleetPolicy,
    snaps: &[ServerGauges],
    rr: usize,
    avoid: Option<usize>,
) -> Option<usize> {
    select_with_affinity(policy, snaps, rr, avoid, None)
}

/// [`select`] with an optional tenant affinity (sticky placement).
///
/// A capped tenant is confined to its live warm servers (falling back to
/// the whole fleet only when none of them is live); an uncapped tenant
/// sees its warm servers win load-aware ties through the score bonus. The
/// liveness and `avoid` rules of [`select`] hold unchanged.
pub fn select_with_affinity(
    policy: FleetPolicy,
    snaps: &[ServerGauges],
    rr: usize,
    avoid: Option<usize>,
    affinity: Option<&TenantAffinity>,
) -> Option<usize> {
    let live = |i: &usize| snaps[*i].lease_live();
    let mut pool: Vec<usize> = (0..snaps.len()).collect();
    if let Some(aff) = affinity {
        if aff.capped {
            let warm_live: Vec<usize> = pool
                .iter()
                .copied()
                .filter(|i| aff.warm.contains(i))
                .filter(live)
                .collect();
            if !warm_live.is_empty() {
                pool = warm_live;
            }
        }
    }
    let mut eligible: Vec<usize> = pool
        .iter()
        .copied()
        .filter(live)
        .filter(|&i| Some(i) != avoid)
        .collect();
    if eligible.is_empty() {
        // Nothing but the avoided server left: better a suspect server
        // than none, as long as its lease is live.
        eligible = pool.into_iter().filter(live).collect();
    }
    if eligible.is_empty() {
        return None;
    }
    let warm_bonus = |i: usize| -> u64 {
        match affinity {
            Some(aff) if aff.warm.contains(&i) => aff.bonus,
            _ => 0,
        }
    };
    let pick = match policy {
        FleetPolicy::RoundRobin => eligible[rr % eligible.len()],
        FleetPolicy::LeastLoaded => eligible
            .into_iter()
            .min_by_key(|&i| (snaps[i].active_functions, i))
            .expect("non-empty"),
        FleetPolicy::MostLoaded => eligible
            .into_iter()
            .max_by_key(|&i| (snaps[i].active_functions, usize::MAX - i))
            .expect("non-empty"),
        FleetPolicy::LoadAware => eligible
            .into_iter()
            .min_by_key(|&i| (load_score(&snaps[i]).saturating_sub(warm_bonus(i)), i))
            .expect("non-empty"),
    };
    Some(pick)
}

/// Per-tenant warm-set memory of a sticky balancer.
#[derive(Debug, Default)]
struct StickyState {
    /// Fleet indices each tenant has been routed to (its warm contexts).
    warm: BTreeMap<String, BTreeSet<usize>>,
    /// Cold placements per tenant: routes that grew the warm set (the
    /// tenant had never touched that server). A sticky balancer should
    /// keep this far below the round-robin spray.
    cold_placements: BTreeMap<String, u64>,
}

/// The balancer: a fleet policy plus the round-robin cursor, and — when
/// stickiness is configured — the per-tenant warm-set memory. Cheap to
/// share; [`crate::Backend`] owns one and consults it per attempt.
pub struct ClusterBalancer {
    policy: FleetPolicy,
    rr: AtomicUsize,
    sticky: Option<(StickyConfig, Mutex<StickyState>)>,
}

impl ClusterBalancer {
    /// A balancer under `policy`, without tenant stickiness.
    pub fn new(policy: FleetPolicy) -> ClusterBalancer {
        ClusterBalancer {
            policy,
            rr: AtomicUsize::new(0),
            sticky: None,
        }
    }

    /// Builder-style: enable bounded sticky tenant placement.
    pub fn with_sticky(mut self, cfg: StickyConfig) -> ClusterBalancer {
        self.sticky = Some((cfg, Mutex::new(StickyState::default())));
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> FleetPolicy {
        self.policy
    }

    /// Route one invocation across `fleet`, steering away from `avoid`
    /// when possible. `None` means the whole fleet is lease-expired.
    /// Tenant-blind: sticky state is neither consulted nor updated.
    pub fn route(&self, fleet: &[Arc<GpuServer>], avoid: Option<usize>) -> Option<usize> {
        let snaps: Vec<ServerGauges> = fleet.iter().map(|s| s.gauges()).collect();
        self.route_snapshots(&snaps, avoid)
    }

    /// [`route`](Self::route) over pre-collected gauges (the testable
    /// entry point; advances the round-robin cursor exactly like `route`).
    pub fn route_snapshots(&self, snaps: &[ServerGauges], avoid: Option<usize>) -> Option<usize> {
        let rr = match self.policy {
            FleetPolicy::RoundRobin => self.rr.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        select(self.policy, snaps, rr, avoid)
    }

    /// Route one of `tenant`'s invocations across `fleet` with sticky
    /// placement (falls back to tenant-blind routing when stickiness is
    /// not configured).
    pub fn route_for(
        &self,
        tenant: &str,
        fleet: &[Arc<GpuServer>],
        avoid: Option<usize>,
    ) -> Option<usize> {
        let snaps: Vec<ServerGauges> = fleet.iter().map(|s| s.gauges()).collect();
        self.route_snapshots_for(tenant, &snaps, avoid)
    }

    /// [`route_for`](Self::route_for) over pre-collected gauges.
    ///
    /// Prunes lease-expired servers from the tenant's warm set, applies
    /// the max-share cap and warm bonus, and records the chosen server
    /// back into the warm set (counting a cold placement when the server
    /// was new to the tenant).
    pub fn route_snapshots_for(
        &self,
        tenant: &str,
        snaps: &[ServerGauges],
        avoid: Option<usize>,
    ) -> Option<usize> {
        let Some((cfg, state)) = &self.sticky else {
            return self.route_snapshots(snaps, avoid);
        };
        let rr = match self.policy {
            FleetPolicy::RoundRobin => self.rr.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        let mut st = state.lock();
        let warm = st.warm.entry(tenant.to_string()).or_default();
        // A dead server's warm contexts are gone; its slot in the share
        // returns to the pool.
        warm.retain(|&i| i < snaps.len() && snaps[i].lease_live());
        let cap = ((snaps.len() as u64 * cfg.max_share_permille) / 1000).max(1) as usize;
        let aff = TenantAffinity {
            warm: warm.clone(),
            capped: warm.len() >= cap,
            bonus: cfg.sticky_bonus,
        };
        let pick = select_with_affinity(self.policy, snaps, rr, avoid, Some(&aff))?;
        if warm.insert(pick) {
            *st.cold_placements.entry(tenant.to_string()).or_insert(0) += 1;
        }
        Some(pick)
    }

    /// The tenant's current warm set (empty when stickiness is off).
    pub fn warm_servers_of(&self, tenant: &str) -> BTreeSet<usize> {
        match &self.sticky {
            Some((_, state)) => state.lock().warm.get(tenant).cloned().unwrap_or_default(),
            None => BTreeSet::new(),
        }
    }

    /// How many of the tenant's routes landed on a server it had never
    /// touched (cold placements; 0 when stickiness is off).
    pub fn cold_placements_of(&self, tenant: &str) -> u64 {
        match &self.sticky {
            Some((_, state)) => state
                .lock()
                .cold_placements
                .get(tenant)
                .copied()
                .unwrap_or(0),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges(live: usize, failed: usize, active: usize, queued: usize) -> ServerGauges {
        ServerGauges {
            pool_size: live + failed,
            failed_api_servers: failed,
            active_functions: active,
            queued_functions: queued,
            used_mem_bytes: 0,
            total_mem_bytes: 16 << 30,
            migrations_in_flight: 0,
        }
    }

    #[test]
    fn round_robin_skips_dead_servers() {
        let snaps = vec![gauges(1, 0, 0, 0), gauges(0, 2, 0, 0), gauges(1, 0, 0, 0)];
        let b = ClusterBalancer::new(FleetPolicy::RoundRobin);
        let picks: Vec<usize> = (0..4)
            .map(|_| b.route_snapshots(&snaps, None).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn load_aware_prefers_idle_then_memory() {
        // Same load, different memory pressure: lower pressure wins.
        let mut a = gauges(2, 0, 1, 0);
        a.used_mem_bytes = 8 << 30;
        let b_ = gauges(2, 0, 1, 0); // 0 bytes used
        assert_eq!(select(FleetPolicy::LoadAware, &[a, b_], 0, None), Some(1));
        // Queue depth dominates memory.
        let mut busy = gauges(2, 0, 2, 3);
        busy.used_mem_bytes = 0;
        let mut calm = gauges(2, 0, 1, 0);
        calm.used_mem_bytes = 12 << 30;
        assert_eq!(
            select(FleetPolicy::LoadAware, &[busy, calm], 0, None),
            Some(1)
        );
    }

    #[test]
    fn avoid_is_respected_unless_it_is_the_last_live_server() {
        let snaps = vec![gauges(1, 0, 0, 0), gauges(1, 0, 5, 5)];
        assert_eq!(
            select(FleetPolicy::LeastLoaded, &snaps, 0, Some(0)),
            Some(1)
        );
        let lone = vec![gauges(1, 0, 0, 0), gauges(0, 1, 0, 0)];
        assert_eq!(select(FleetPolicy::LeastLoaded, &lone, 0, Some(0)), Some(0));
    }

    #[test]
    fn load_aware_steers_around_in_flight_migrations() {
        // Equal load and memory, but server 0 is mid-migration: the
        // balancer routes to server 1 until the move commits.
        let mut migrating = gauges(2, 0, 1, 0);
        migrating.migrations_in_flight = 1;
        let calm = gauges(2, 0, 1, 0);
        assert_eq!(
            select(FleetPolicy::LoadAware, &[migrating, calm], 0, None),
            Some(1)
        );
        // The penalty is transient and bounded: a migrating-but-idle server
        // still beats a heavily queued one.
        let mut migrating_idle = gauges(2, 0, 0, 0);
        migrating_idle.migrations_in_flight = 1;
        let queued = gauges(2, 0, 2, 2);
        assert_eq!(
            select(FleetPolicy::LoadAware, &[migrating_idle, queued], 0, None),
            Some(0)
        );
    }

    #[test]
    fn sticky_confines_a_capped_tenant_to_its_warm_set() {
        // 4 servers, max share 50% → warm cap 2.
        let snaps = vec![
            gauges(1, 0, 0, 0),
            gauges(1, 0, 0, 0),
            gauges(1, 0, 0, 0),
            gauges(1, 0, 0, 0),
        ];
        let b = ClusterBalancer::new(FleetPolicy::RoundRobin)
            .with_sticky(StickyConfig::new().with_max_share(500));
        for _ in 0..32 {
            let i = b.route_snapshots_for("heavy", &snaps, None).unwrap();
            assert!(b.warm_servers_of("heavy").contains(&i));
        }
        assert!(b.warm_servers_of("heavy").len() <= 2);
        assert_eq!(b.cold_placements_of("heavy"), 2);
    }

    #[test]
    fn sticky_prunes_dead_warm_servers_and_refills_the_share() {
        let live = gauges(1, 0, 0, 0);
        let dead = gauges(0, 1, 0, 0);
        let b = ClusterBalancer::new(FleetPolicy::LoadAware)
            .with_sticky(StickyConfig::new().with_max_share(500));
        let snaps = vec![live; 4];
        // The first route warms server 0; loading it past the warm bonus
        // spills the tenant onto a second server, filling the 50% share.
        assert_eq!(b.route_snapshots_for("t", &snaps, None), Some(0));
        let mut loaded = snaps.clone();
        loaded[0] = gauges(1, 0, 6, 6);
        b.route_snapshots_for("t", &loaded, None).unwrap();
        let warm = b.warm_servers_of("t");
        assert_eq!(warm.len(), 2);
        // Kill one warm server: the next route prunes it and routing
        // continues on live servers, never exceeding the cap.
        let dead_idx = *warm.iter().next().unwrap();
        let mut snaps2 = snaps.clone();
        snaps2[dead_idx] = dead;
        let pick = b.route_snapshots_for("t", &snaps2, None).unwrap();
        assert!(snaps2[pick].lease_live());
        let warm2 = b.warm_servers_of("t");
        assert!(
            !warm2.contains(&dead_idx),
            "the dead server is pruned from the warm set"
        );
        assert!(warm2.len() <= 2);
    }

    #[test]
    fn warm_bonus_wins_ties_but_not_against_overload() {
        let b = ClusterBalancer::new(FleetPolicy::LoadAware)
            .with_sticky(StickyConfig::new().with_max_share(1000));
        // First route warms server 0 (tie → lowest index).
        let idle = vec![gauges(2, 0, 0, 0), gauges(2, 0, 0, 0)];
        assert_eq!(b.route_snapshots_for("t", &idle, None), Some(0));
        // Equal load: the warm server wins the tie.
        let even = vec![gauges(2, 0, 1, 0), gauges(2, 0, 1, 0)];
        assert_eq!(b.route_snapshots_for("t", &even, None), Some(0));
        // Server 0 heavily overloaded: the bonus must not pin traffic there.
        let skewed = vec![gauges(2, 0, 6, 6), gauges(2, 0, 0, 0)];
        assert_eq!(b.route_snapshots_for("t", &skewed, None), Some(1));
    }

    #[test]
    fn all_dead_routes_nowhere() {
        let snaps = vec![gauges(0, 1, 0, 0), gauges(0, 4, 0, 0)];
        for p in [
            FleetPolicy::RoundRobin,
            FleetPolicy::LeastLoaded,
            FleetPolicy::MostLoaded,
            FleetPolicy::LoadAware,
        ] {
            assert_eq!(select(p, &snaps, 0, None), None);
        }
    }
}
