//! Per-tenant weighted fair shedding.
//!
//! Admission control (PR 3) bounds the platform-wide in-flight budget, but
//! shedding was FIFO-blind across tenants: one hot customer could occupy
//! every slot and everyone else's arrivals got shed. This module adds the
//! fairness layer: each tenant owns a weighted share of the in-flight
//! budget, guaranteed for as long as it is under that share, plus a token
//! bucket (refilled in proportion to its weight) that meters how fast it
//! may borrow slots *beyond* its share. Under sustained overload the most
//! over-budget tenant drains its bucket first and becomes the one that is
//! shed, while under-share tenants keep being admitted.
//!
//! Everything is integer arithmetic over virtual time (milli-tokens,
//! nanosecond credit), so admission decisions are byte-deterministic per
//! seed.

use std::collections::BTreeMap;

use dgsf_sim::SimTime;

/// Milli-tokens consumed per borrowed admission.
const TOKEN_MILLI: u64 = 1000;

/// Configuration of per-tenant weighted fair shedding.
///
/// Built with [`FairShedConfig::new`] plus `with_*` builders and installed
/// via [`crate::AdmissionConfig::with_weighted_fair`].
#[derive(Debug, Clone)]
pub struct FairShedConfig {
    /// Per-tenant weights. Tenants absent from the map get
    /// [`default_weight`](Self::default_weight) on first arrival.
    pub weights: BTreeMap<String, u64>,
    /// Weight assigned to tenants not named in `weights`.
    pub default_weight: u64,
    /// Token-bucket capacity, in tokens: how many admissions beyond its
    /// fair share a tenant may burst before the refill rate binds.
    pub burst_tokens: u64,
    /// Bucket refill, in milli-tokens per second per weight unit: the
    /// sustained rate at which a tenant may borrow beyond its share.
    pub refill_milli_per_sec_per_weight: u64,
}

impl FairShedConfig {
    /// Equal-weight fairness: every tenant weight 1, a 4-token burst, one
    /// borrowed admission per second per weight unit sustained.
    pub fn new() -> FairShedConfig {
        FairShedConfig {
            weights: BTreeMap::new(),
            default_weight: 1,
            burst_tokens: 4,
            refill_milli_per_sec_per_weight: 1000,
        }
    }

    /// Builder-style: set one tenant's weight.
    pub fn with_weight(mut self, tenant: &str, weight: u64) -> Self {
        self.weights.insert(tenant.to_string(), weight.max(1));
        self
    }

    /// Builder-style: weight for tenants not explicitly listed.
    pub fn with_default_weight(mut self, weight: u64) -> Self {
        self.default_weight = weight.max(1);
        self
    }

    /// Builder-style: token-bucket burst capacity.
    pub fn with_burst(mut self, tokens: u64) -> Self {
        self.burst_tokens = tokens;
        self
    }

    /// Builder-style: sustained borrow rate (milli-tokens per second per
    /// weight unit).
    pub fn with_refill(mut self, milli_per_sec_per_weight: u64) -> Self {
        self.refill_milli_per_sec_per_weight = milli_per_sec_per_weight;
        self
    }

    /// Weight of `tenant` under this configuration.
    pub fn weight_of(&self, tenant: &str) -> u64 {
        self.weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight)
            .max(1)
    }
}

impl Default for FairShedConfig {
    fn default() -> Self {
        FairShedConfig::new()
    }
}

/// Live state of one tenant's bucket and occupancy.
#[derive(Debug)]
struct TenantState {
    weight: u64,
    inflight: usize,
    /// Bucket level in milli-tokens.
    tokens_milli: u64,
    /// Refill credit carried between refills, in (nanoseconds × rate)
    /// units, so no fraction of a milli-token is ever lost to rounding.
    credit: u128,
    last_refill: SimTime,
}

/// The fair shedder: per-tenant buckets plus share accounting. Owned by
/// the backend's admission state, consulted under its lock.
#[derive(Debug)]
pub struct FairShedder {
    cfg: FairShedConfig,
    tenants: BTreeMap<String, TenantState>,
}

/// Why the fair shedder refused an admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FairRefusal {
    /// The tenant is past its weighted share and its token bucket is
    /// empty: it is the most over-budget tenant and gets shed first.
    OverFairShare,
}

impl FairShedder {
    /// A shedder under `cfg`, with no tenants seen yet.
    pub fn new(cfg: FairShedConfig) -> FairShedder {
        // Pre-seed explicitly weighted tenants so shares are stable from
        // the first arrival onward regardless of arrival order.
        let tenants = cfg
            .weights
            .iter()
            .map(|(t, &w)| {
                (
                    t.clone(),
                    TenantState {
                        weight: w.max(1),
                        inflight: 0,
                        tokens_milli: cfg.burst_tokens * TOKEN_MILLI,
                        credit: 0,
                        last_refill: SimTime::ZERO,
                    },
                )
            })
            .collect();
        FairShedder { cfg, tenants }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FairShedConfig {
        &self.cfg
    }

    /// Total weight across known tenants.
    fn total_weight(&self) -> u64 {
        self.tenants.values().map(|t| t.weight).sum::<u64>().max(1)
    }

    /// `tenant`'s guaranteed slot share of `max_inflight` (floor, min 1).
    pub fn share_of(&self, tenant: &str, max_inflight: usize) -> usize {
        let w = self
            .tenants
            .get(tenant)
            .map(|t| t.weight)
            .unwrap_or_else(|| self.cfg.weight_of(tenant));
        let total = self.total_weight().max(w);
        (((max_inflight as u128) * w as u128 / total as u128) as usize).max(1)
    }

    /// In-flight admissions currently charged to `tenant`.
    pub fn inflight_of(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map(|t| t.inflight).unwrap_or(0)
    }

    fn ensure(&mut self, tenant: &str, now: SimTime) {
        if !self.tenants.contains_key(tenant) {
            let weight = self.cfg.weight_of(tenant);
            self.tenants.insert(
                tenant.to_string(),
                TenantState {
                    weight,
                    inflight: 0,
                    tokens_milli: self.cfg.burst_tokens * TOKEN_MILLI,
                    credit: 0,
                    last_refill: now,
                },
            );
        }
    }

    /// Refill `tenant`'s bucket up to `now` (integer, remainder-carrying).
    fn refill(&mut self, tenant: &str, now: SimTime) {
        let rate = self.cfg.refill_milli_per_sec_per_weight;
        let cap = self.cfg.burst_tokens * TOKEN_MILLI;
        let Some(t) = self.tenants.get_mut(tenant) else {
            return;
        };
        let elapsed = now.since(t.last_refill).as_nanos() as u128;
        t.last_refill = now;
        t.credit += elapsed * (rate as u128) * (t.weight as u128);
        // 1 second of credit units per milli-token.
        let gained = (t.credit / 1_000_000_000) as u64;
        t.credit %= 1_000_000_000;
        t.tokens_milli = (t.tokens_milli + gained).min(cap);
        if t.tokens_milli == cap {
            t.credit = 0; // a full bucket accrues nothing
        }
    }

    /// Decide admission for `tenant` at `now`, given the global budget.
    /// The caller has already verified `inflight_total < max_inflight`
    /// (the hard cap is tenant-blind — slots cannot be preempted). On
    /// `Ok(())` the tenant's in-flight count has been charged; release it
    /// with [`release`](Self::release).
    pub fn try_admit(
        &mut self,
        tenant: &str,
        now: SimTime,
        max_inflight: usize,
    ) -> Result<(), FairRefusal> {
        self.ensure(tenant, now);
        self.refill(tenant, now);
        let share = self.share_of(tenant, max_inflight);
        let t = self.tenants.get_mut(tenant).expect("ensured");
        if t.inflight < share {
            // Within the guaranteed share: always admitted.
            t.inflight += 1;
            return Ok(());
        }
        // Beyond the share: borrowing is metered by the token bucket, so
        // the most over-budget tenant runs dry first and is shed first.
        if t.tokens_milli >= TOKEN_MILLI {
            t.tokens_milli -= TOKEN_MILLI;
            t.inflight += 1;
            return Ok(());
        }
        Err(FairRefusal::OverFairShare)
    }

    /// Release one in-flight admission charged to `tenant`.
    pub fn release(&mut self, tenant: &str) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.inflight = t.inflight.saturating_sub(1);
        }
    }

    /// Normalized over-budget factor of `tenant` in permille:
    /// `inflight / share`. 1000 means exactly at its fair share.
    pub fn over_budget_permille(&self, tenant: &str, max_inflight: usize) -> u64 {
        let share = self.share_of(tenant, max_inflight).max(1) as u64;
        let inflight = self.inflight_of(tenant) as u64;
        inflight * 1000 / share
    }
}

/// Wrap a workload with a tenant label (and an optional distinct name), so
/// multi-tenant schedules can reuse one workload body.
pub struct Tenanted<W> {
    inner: W,
    tenant: String,
    name: String,
}

impl<W: crate::Workload> Tenanted<W> {
    /// `inner` deployed by `tenant`; the function keeps its own name.
    pub fn new(tenant: &str, inner: W) -> Tenanted<W> {
        let name = inner.name().to_string();
        Tenanted {
            inner,
            tenant: tenant.to_string(),
            name,
        }
    }

    /// `inner` deployed by `tenant` under an explicit function name.
    pub fn named(tenant: &str, name: &str, inner: W) -> Tenanted<W> {
        Tenanted {
            inner,
            tenant: tenant.to_string(),
            name: name.to_string(),
        }
    }
}

impl<W: crate::Workload> crate::Workload for Tenanted<W> {
    fn name(&self) -> &str {
        &self.name
    }
    fn tenant(&self) -> &str {
        &self.tenant
    }
    fn registry(&self) -> std::sync::Arc<dgsf_cuda::ModuleRegistry> {
        self.inner.registry()
    }
    fn required_gpu_mem(&self) -> u64 {
        self.inner.required_gpu_mem()
    }
    fn download_bytes(&self) -> u64 {
        self.inner.download_bytes()
    }
    fn run(
        &self,
        p: &dgsf_sim::ProcCtx,
        api: &mut dyn dgsf_cuda::CudaApi,
        rec: &mut crate::PhaseRecorder,
    ) -> dgsf_cuda::CudaResult<()> {
        self.inner.run(p, api, rec)
    }
    fn cpu_secs(&self) -> f64 {
        self.inner.cpu_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Dur;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn under_share_is_always_admitted() {
        let mut f = FairShedder::new(
            FairShedConfig::new()
                .with_weight("a", 1)
                .with_weight("b", 1),
        );
        // max_inflight 8, two tenants: share 4 each.
        for _ in 0..4 {
            assert!(f.try_admit("a", at(0), 8).is_ok());
        }
        assert_eq!(f.inflight_of("a"), 4);
        assert_eq!(f.share_of("a", 8), 4);
    }

    #[test]
    fn borrowing_is_metered_by_the_bucket() {
        let cfg = FairShedConfig::new()
            .with_weight("hot", 1)
            .with_weight("cold", 1)
            .with_burst(2)
            .with_refill(0); // no refill: the burst is all there is
        let mut f = FairShedder::new(cfg);
        // share of 8 = 4 guaranteed + 2 burst tokens.
        for _ in 0..6 {
            assert!(f.try_admit("hot", at(0), 8).is_ok());
        }
        assert_eq!(
            f.try_admit("hot", at(0), 8),
            Err(FairRefusal::OverFairShare)
        );
        // cold is untouched: still admitted.
        assert!(f.try_admit("cold", at(0), 8).is_ok());
    }

    #[test]
    fn bucket_refills_in_proportion_to_weight() {
        let cfg = FairShedConfig::new()
            .with_weight("w2", 2)
            .with_weight("w1", 1)
            .with_burst(1)
            .with_refill(1000); // 1 token/sec per weight unit
        let mut f = FairShedder::new(cfg);
        // Drain both buckets (weight-2 share of 3 slots = 2; weight-1 = 1).
        for _ in 0..3 {
            let _ = f.try_admit("w2", at(0), 3);
        }
        for _ in 0..2 {
            let _ = f.try_admit("w1", at(0), 3);
        }
        assert_eq!(f.try_admit("w2", at(0), 3), Err(FairRefusal::OverFairShare));
        assert_eq!(f.try_admit("w1", at(0), 3), Err(FairRefusal::OverFairShare));
        // After 500 ms the weight-2 tenant has a full token; weight-1 only
        // half of one.
        assert!(f.try_admit("w2", at(500), 3).is_ok());
        assert_eq!(
            f.try_admit("w1", at(500), 3),
            Err(FairRefusal::OverFairShare)
        );
        assert!(f.try_admit("w1", at(1000), 3).is_ok());
    }

    #[test]
    fn release_frees_share_capacity() {
        let mut f = FairShedder::new(
            FairShedConfig::new()
                .with_weight("a", 1)
                .with_weight("b", 1)
                .with_burst(0),
        );
        assert!(f.try_admit("a", at(0), 2).is_ok());
        assert_eq!(f.try_admit("a", at(0), 2), Err(FairRefusal::OverFairShare));
        f.release("a");
        assert!(f.try_admit("a", at(1), 2).is_ok());
    }

    #[test]
    fn refill_carries_sub_millitoken_remainders() {
        let cfg = FairShedConfig::new()
            .with_weight("t", 1)
            .with_burst(1)
            .with_refill(1000);
        let mut f = FairShedder::new(cfg);
        let _ = f.try_admit("t", at(0), 1); // share (1) used
        let _ = f.try_admit("t", at(0), 1); // burst token used
        assert_eq!(f.try_admit("t", at(0), 1), Err(FairRefusal::OverFairShare));
        // 1000 refill calls 1 ms apart must accumulate exactly one token,
        // not lose every sub-milli remainder to rounding. Each probe that
        // fails consumes nothing.
        for ms in 1..1000 {
            assert_eq!(
                f.try_admit("t", at(ms), 1),
                Err(FairRefusal::OverFairShare),
                "token arrived early at {ms} ms"
            );
        }
        assert!(f.try_admit("t", at(1000), 1).is_ok());
    }
}
