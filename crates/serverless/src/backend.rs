//! The serverless backend's GPU-server selection (§IV) and retry policy.
//!
//! "Our prototype uses a fixed policy to choose, given a function requesting
//! a GPU, which GPU server to use. Different policies can be used in a
//! commercial deployment, such as choosing the least loaded GPU server to
//! optimize latency or the opposite to increase utilization." This module
//! implements that policy space over multiple provisioned [`GpuServer`]s;
//! scaling out is exactly as simple as the paper describes — a new server
//! registers itself and becomes a choice.
//!
//! The backend is also where failure recovery lives: a transient
//! (transport-class) attempt failure triggers a bounded retry with
//! exponential backoff, preferring a *different* GPU server for the next
//! attempt. Every invocation therefore terminates: it either completes or
//! comes back as a [`FunctionResult`] with `failure` set after the attempt
//! budget is spent.

use std::collections::HashMap;
use std::sync::Arc;

use dgsf_remoting::OptConfig;
use dgsf_server::{FleetPolicy, GpuServer, InvocationOutcome, ShedPolicy};
use dgsf_sim::{Dur, ObsPlane, ProcCtx, SimTime, TraceCtx};
use parking_lot::Mutex;

use crate::cluster::ClusterBalancer;
use crate::invoke::{
    record_request_span, FailureClass, FunctionResult, InvokeFailure, InvokeOptions, Invoker,
};
use crate::phases::{phase, PhaseRecorder};
use crate::store::ObjectStore;
use crate::tenant::{FairShedConfig, FairShedder};
use crate::workload::Workload;

/// Bounded retry-with-backoff for transient invocation failures.
///
/// All arithmetic is integer milliseconds: the old `f64` `powi` path
/// rounded differently across platforms and silently went infinite for
/// large attempt counts. Growth is expressed in permille so non-integral
/// factors (×1.5 = 1500) stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempt budget per function (first try included). 1 disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds.
    pub initial_backoff_ms: u64,
    /// Growth factor for each subsequent backoff, in permille
    /// (2000 = double each time).
    pub backoff_multiplier_permille: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff_ms: 50,
            backoff_multiplier_permille: 2000,
        }
    }
}

impl RetryPolicy {
    /// Builder-style: set the attempt budget.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Builder-style: set the first backoff in milliseconds.
    pub fn with_initial_backoff_ms(mut self, ms: u64) -> Self {
        self.initial_backoff_ms = ms;
        self
    }

    /// Builder-style: set the growth factor in permille (2000 = ×2).
    pub fn with_multiplier_permille(mut self, permille: u64) -> Self {
        self.backoff_multiplier_permille = permille;
        self
    }

    /// Backoff to sleep after failed attempt number `attempt` (1-based).
    /// Saturates instead of overflowing: absurd policies produce the
    /// longest representable backoff, never a wrapped short one.
    pub fn backoff(&self, attempt: u32) -> Dur {
        // Largest millisecond count Dur's u64 nanoseconds can hold.
        const MAX_MS: u128 = (u64::MAX / 1_000_000) as u128;
        let mut ms: u128 = self.initial_backoff_ms as u128;
        for _ in 1..attempt {
            ms = ms.saturating_mul(self.backoff_multiplier_permille as u128) / 1000;
            if ms >= MAX_MS {
                ms = MAX_MS;
                break;
            }
        }
        Dur::from_millis(ms.min(MAX_MS) as u64)
    }
}

/// Admission control at the backend's front door: bounded concurrency and
/// queue age, so overload turns into fast, explicit shedding instead of
/// unbounded queueing. Shed invocations come back immediately with
/// [`FunctionResult::shed`] set and are never retried.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum invocations admitted concurrently (platform-wide). Anything
    /// beyond is shed on arrival.
    pub max_inflight: usize,
    /// Maximum time one attempt may wait in a GPU server's queue before
    /// the work is shed as overload (bounds queue *age*, not just depth).
    pub max_queue_age: Option<Dur>,
    /// Per-workload concurrency cap: one hot function cannot occupy the
    /// whole admitted set.
    pub max_per_workload: Option<usize>,
    /// Per-tenant weighted fair shedding ([`ShedPolicy::WeightedFair`]).
    /// `None` is the FIFO baseline: slots go to whoever arrives first,
    /// tenant-blind.
    pub fairness: Option<FairShedConfig>,
}

impl AdmissionConfig {
    /// Admit up to `max_inflight` concurrent invocations; no age or
    /// per-workload bounds.
    pub fn new(max_inflight: usize) -> AdmissionConfig {
        assert!(max_inflight >= 1, "admitting nothing serves nothing");
        AdmissionConfig {
            max_inflight,
            max_queue_age: None,
            max_per_workload: None,
            fairness: None,
        }
    }

    /// Builder-style: bound per-attempt queue wait.
    pub fn with_max_queue_age(mut self, d: Dur) -> Self {
        self.max_queue_age = Some(d);
        self
    }

    /// Builder-style: cap concurrent invocations of any single workload.
    pub fn with_max_per_workload(mut self, n: usize) -> Self {
        self.max_per_workload = Some(n.max(1));
        self
    }

    /// Builder-style: shed per tenant (weighted fair) instead of FIFO.
    pub fn with_weighted_fair(mut self, fairness: FairShedConfig) -> Self {
        self.fairness = Some(fairness);
        self
    }

    /// Which shed policy this configuration implements.
    pub fn shed_policy(&self) -> ShedPolicy {
        if self.fairness.is_some() {
            ShedPolicy::WeightedFair
        } else {
            ShedPolicy::Fifo
        }
    }
}

/// Live admission counters (one lock: admission decisions are atomic).
#[derive(Default)]
struct AdmissionState {
    inflight: usize,
    per_workload: HashMap<String, usize>,
    /// Present iff the admission config asked for weighted fair shedding.
    fair: Option<FairShedder>,
}

/// RAII release of an admission slot.
struct AdmissionSlot<'a> {
    state: &'a Mutex<AdmissionState>,
    name: String,
    /// Tenant charged by the fair shedder, when fairness is on.
    tenant: Option<String>,
}

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        let mut st = self.state.lock();
        st.inflight -= 1;
        if let Some(n) = st.per_workload.get_mut(&self.name) {
            *n -= 1;
            if *n == 0 {
                st.per_workload.remove(&self.name);
            }
        }
        if let (Some(t), Some(fair)) = (&self.tenant, st.fair.as_mut()) {
            fair.release(t);
        }
    }
}

/// The central serverless backend: a registry of GPU servers plus the
/// cluster balancer that routes across them.
pub struct Backend {
    servers: Vec<Arc<GpuServer>>,
    balancer: ClusterBalancer,
    retry: RetryPolicy,
    admission: Option<AdmissionConfig>,
    admitted: Mutex<AdmissionState>,
    /// Online observability plane: fed one arrival per invocation and one
    /// completion per terminal outcome (with the queue wait summed across
    /// every attempt, matching the offline trace decomposition), and
    /// consulted for per-tenant burn-rate shedding.
    obs: Option<Arc<ObsPlane>>,
}

impl Backend {
    /// Build a backend over already-provisioned servers.
    pub fn new(servers: Vec<Arc<GpuServer>>, policy: FleetPolicy) -> Backend {
        assert!(
            !servers.is_empty(),
            "a backend needs at least one GPU server"
        );
        Backend {
            servers,
            balancer: ClusterBalancer::new(policy),
            retry: RetryPolicy::default(),
            admission: None,
            admitted: Mutex::new(AdmissionState::default()),
            obs: None,
        }
    }

    /// Feed the online observability plane: every invocation records an
    /// arrival on entry and a completion (with its attempt-summed queue
    /// wait) on any terminal outcome, and — when the plane's shed
    /// threshold is configured — new work from a tenant burning its SLO
    /// budget on queueing is refused at the front door.
    pub fn with_obs(mut self, obs: Arc<ObsPlane>) -> Backend {
        self.obs = Some(obs);
        self
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Backend {
        self.retry = retry;
        self
    }

    /// Turn on admission control. Without it the backend admits everything
    /// and queues without bound (the paper's prototype behaviour).
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Backend {
        self.admitted.get_mut().fair = admission.fairness.clone().map(FairShedder::new);
        self.admission = Some(admission);
        self
    }

    /// Turn on bounded sticky tenant placement: the balancer steers each
    /// tenant back to its warm servers, capped at the configured fleet
    /// share (the MQFQ-Sticky locality half).
    pub fn with_sticky(mut self, sticky: crate::cluster::StickyConfig) -> Backend {
        self.balancer = ClusterBalancer::new(self.balancer.policy()).with_sticky(sticky);
        self
    }

    /// The cluster balancer (for inspecting warm sets and cold placements).
    pub fn balancer(&self) -> &ClusterBalancer {
        &self.balancer
    }

    /// The fleet policy the balancer routes under.
    pub fn policy(&self) -> FleetPolicy {
        self.balancer.policy()
    }

    /// The shed policy admission control implements ([`ShedPolicy::Fifo`]
    /// when admission control is off entirely).
    pub fn shed_policy(&self) -> ShedPolicy {
        self.admission
            .as_ref()
            .map(|a| a.shed_policy())
            .unwrap_or(ShedPolicy::Fifo)
    }

    /// Invocations currently admitted (holding an admission slot).
    pub fn inflight(&self) -> usize {
        self.admitted.lock().inflight
    }

    /// A GPU server announcing readiness (§IV: "it annouces it is ready
    /// ... and becomes a choice when a function requests a GPU").
    pub fn register(&mut self, server: Arc<GpuServer>) {
        self.servers.push(server);
    }

    /// The registered servers.
    pub fn servers(&self) -> &[Arc<GpuServer>] {
        &self.servers
    }

    /// Choose a server for the next function under the configured policy.
    ///
    /// Panics when every registered server's lease has expired — use
    /// [`invoke`](Self::invoke), which reports that case as a failed
    /// [`FunctionResult`] instead.
    pub fn choose(&self) -> &Arc<GpuServer> {
        let idx = self
            .balancer
            .route(&self.servers, None)
            .expect("every registered GPU server's lease has expired");
        &self.servers[idx]
    }

    /// Invoke a workload through the backend: choose a server, run the full
    /// DGSF path against it, and on a transient failure retry (with
    /// backoff, preferring a different server) up to the attempt budget.
    ///
    /// Always returns: check [`FunctionResult::succeeded`] for the outcome.
    /// `launched_at`/`finished_at` span the whole invocation including
    /// retries and backoff, so `e2e()` reflects what the client observed.
    pub fn invoke(
        &self,
        p: &ProcCtx,
        store: &ObjectStore,
        w: &dyn Workload,
        opts: OptConfig,
    ) -> FunctionResult {
        let launched_at = p.now();
        let tel = p.telemetry();
        tel.counter_add("backend.invocations", 1);
        if let Some(obs) = &self.obs {
            obs.record_arrival(launched_at);
        }
        // One causal trace per request, spanning every retry attempt; the
        // id rides the admission slot, the monitor queue and the RPC
        // envelopes so every layer's spans share it.
        let trace = TraceCtx::new(tel.next_trace_id(), w.tenant());
        // Admission control: claim a slot or shed on the spot.
        let _slot = match self.try_admit(p, w) {
            Ok(slot) => slot,
            Err(reason) => return self.shed(p, w, &trace, launched_at, &reason),
        };
        let max_queue_age = self.admission.as_ref().and_then(|a| a.max_queue_age);
        let mut avoid = None;
        let mut attempt = 1;
        // Queue wait summed across every attempt — the same total the
        // offline trace decomposition assigns to the "queue" segment, so
        // online burn alerts reconcile with post-hoc attribution.
        let mut queue_wait = Dur::ZERO;
        let last: InvokeFailure = loop {
            // Routing: the balancer never hands out a lease-expired
            // server. A fully expired fleet is a permanent failure, not a
            // shed — retrying or queueing cannot help.
            let Some(idx) = self.balancer.route_for(w.tenant(), &self.servers, avoid) else {
                tel.counter_add("backend.failures", 1);
                record_request_span(
                    p,
                    &trace,
                    w.name(),
                    launched_at,
                    p.now(),
                    "failed",
                    attempt - 1,
                );
                self.observe_completion(p.now(), w.tenant(), launched_at, queue_wait, false);
                return FunctionResult {
                    name: w.name().to_string(),
                    tenant: w.tenant().to_string(),
                    mode: "dgsf".into(),
                    launched_at,
                    finished_at: p.now(),
                    phases: PhaseRecorder::new(),
                    api_stats: dgsf_cuda::ApiStats::default(),
                    invocation: None,
                    attempts: attempt - 1,
                    failure: Some("no live GPU server: every lease expired".into()),
                    shed: false,
                    trace: Some(trace.id),
                    server: None,
                };
            };
            tel.counter_add("backend.attempts", 1);
            match Invoker::new(&self.servers[idx], store).invoke(
                p,
                w,
                InvokeOptions::new(opts)
                    .with_attempt(attempt)
                    .with_max_queue_age(max_queue_age)
                    .with_trace(trace.with_attempt(attempt)),
            ) {
                Ok(mut r) => {
                    r.launched_at = launched_at;
                    r.attempts = attempt;
                    record_request_span(
                        p,
                        &trace,
                        w.name(),
                        launched_at,
                        r.finished_at,
                        "completed",
                        attempt,
                    );
                    self.observe_completion(
                        r.finished_at,
                        w.tenant(),
                        launched_at,
                        queue_wait + r.phases.get(phase::QUEUE),
                        true,
                    );
                    return r;
                }
                Err(f) => {
                    queue_wait += f.phases.get(phase::QUEUE);
                    // Exactly-once fence: from here a lost *reply* is
                    // indistinguishable from a lost request. If the server's
                    // own record says the invocation completed, the work
                    // happened and only the response died on the wire —
                    // re-running it would execute the function twice, so
                    // recover the completion instead of retrying.
                    if f.class == FailureClass::Transient {
                        if let Some(inv) = f.invocation {
                            if self.servers[idx].invocation_outcome(inv)
                                == Some(InvocationOutcome::Completed)
                            {
                                tel.counter_add("backend.recovered_replies", 1);
                                if tel.is_enabled() {
                                    tel.instant(
                                        p.name(),
                                        "reply-recovered",
                                        p.now(),
                                        &[
                                            ("workload", w.name().to_string()),
                                            ("invocation", inv.to_string()),
                                            ("inv", trace.id.to_string()),
                                        ],
                                    );
                                }
                                record_request_span(
                                    p,
                                    &trace,
                                    w.name(),
                                    launched_at,
                                    p.now(),
                                    "completed",
                                    attempt,
                                );
                                // `queue_wait` already includes this
                                // attempt's wait (summed on entry to the
                                // Err arm).
                                self.observe_completion(
                                    p.now(),
                                    w.tenant(),
                                    launched_at,
                                    queue_wait,
                                    true,
                                );
                                return FunctionResult {
                                    name: w.name().to_string(),
                                    tenant: w.tenant().to_string(),
                                    mode: "dgsf".into(),
                                    launched_at,
                                    finished_at: p.now(),
                                    phases: *f.phases,
                                    // The reply carried the stats; they died
                                    // with it.
                                    api_stats: dgsf_cuda::ApiStats::default(),
                                    invocation: Some(inv),
                                    attempts: attempt,
                                    failure: None,
                                    shed: false,
                                    trace: Some(trace.id),
                                    server: self.servers[idx].invocation_server(inv),
                                };
                            }
                        }
                    }
                    // Overloaded is deliberately not retried: piling
                    // retries onto a saturated platform makes it worse.
                    if f.class == FailureClass::Transient && attempt < self.retry.max_attempts {
                        if tel.is_enabled() {
                            tel.counter_add("backend.retries", 1);
                            tel.instant(
                                p.name(),
                                "retry",
                                p.now(),
                                &[
                                    ("workload", w.name().to_string()),
                                    ("failed_attempt", attempt.to_string()),
                                    ("error", f.error.to_string()),
                                    ("inv", trace.id.to_string()),
                                ],
                            );
                        }
                        avoid = Some(idx);
                        p.sleep(self.retry.backoff(attempt));
                        attempt += 1;
                    } else {
                        break f;
                    }
                }
            }
        };
        let shed = last.class == FailureClass::Overloaded;
        if shed {
            tel.counter_add("backend.shed", 1);
            if tel.is_enabled() {
                tel.instant(
                    p.name(),
                    "shed",
                    p.now(),
                    &[
                        ("workload", w.name().to_string()),
                        ("reason", last.error.to_string()),
                        ("inv", trace.id.to_string()),
                    ],
                );
            }
        } else {
            tel.counter_add("backend.failures", 1);
        }
        record_request_span(
            p,
            &trace,
            w.name(),
            launched_at,
            p.now(),
            if shed { "shed" } else { "failed" },
            attempt,
        );
        let failure = if shed {
            format!("overloaded: {}", last.error)
        } else {
            last.error.to_string()
        };
        self.observe_completion(p.now(), w.tenant(), launched_at, queue_wait, false);
        FunctionResult {
            name: w.name().to_string(),
            tenant: w.tenant().to_string(),
            mode: "dgsf".into(),
            launched_at,
            finished_at: p.now(),
            phases: *last.phases,
            api_stats: dgsf_cuda::ApiStats::default(),
            invocation: last.invocation,
            attempts: attempt,
            failure: Some(failure),
            shed,
            trace: Some(trace.id),
            server: None,
        }
    }

    /// Feed one terminal outcome to the obs plane (no-op without one).
    fn observe_completion(
        &self,
        now: SimTime,
        tenant: &str,
        launched_at: SimTime,
        queue_wait: Dur,
        completed: bool,
    ) {
        if let Some(obs) = &self.obs {
            obs.record_completion(now, tenant, now.since(launched_at), queue_wait, completed);
        }
    }

    /// Claim an admission slot for `w`, or say why it was refused.
    fn try_admit(
        &self,
        p: &ProcCtx,
        w: &dyn Workload,
    ) -> Result<Option<AdmissionSlot<'_>>, String> {
        // Burn-rate shedding: when the obs plane says this tenant is
        // burning its SLO budget on queueing faster than the configured
        // threshold, refuse new work before it joins the queue and makes
        // the burn worse. Independent of classic admission control.
        if let Some(obs) = &self.obs {
            if obs.shed_due(p.now(), w.tenant()) {
                return Err(format!("tenant '{}' over SLO burn-rate budget", w.tenant()));
            }
        }
        let Some(adm) = &self.admission else {
            return Ok(None); // no admission control: everything enters
        };
        let name = w.name();
        let mut st = self.admitted.lock();
        if st.inflight >= adm.max_inflight {
            return Err(format!(
                "inflight limit reached ({}/{})",
                st.inflight, adm.max_inflight
            ));
        }
        let running = st.per_workload.get(name).copied().unwrap_or(0);
        if let Some(cap) = adm.max_per_workload {
            if running >= cap {
                return Err(format!("workload cap reached ({running}/{cap})"));
            }
        }
        // Weighted fair shedding: within the global budget, each tenant
        // owns its weighted share and borrows beyond it only as fast as
        // its token bucket refills — the most over-budget tenant is the
        // one refused.
        let max_inflight = adm.max_inflight;
        let tenant = if let Some(fair) = st.fair.as_mut() {
            let t = w.tenant();
            if fair.try_admit(t, p.now(), max_inflight).is_err() {
                return Err(format!(
                    "tenant '{t}' over fair share ({} inflight / {} slots, bucket empty)",
                    fair.inflight_of(t),
                    fair.share_of(t, max_inflight),
                ));
            }
            Some(t.to_string())
        } else {
            None
        };
        st.inflight += 1;
        *st.per_workload.entry(name.to_string()).or_insert(0) += 1;
        Ok(Some(AdmissionSlot {
            state: &self.admitted,
            name: name.to_string(),
            tenant,
        }))
    }

    /// A refused invocation: returns immediately, marked shed, never
    /// retried.
    fn shed(
        &self,
        p: &ProcCtx,
        w: &dyn Workload,
        trace: &TraceCtx,
        launched_at: dgsf_sim::SimTime,
        reason: &str,
    ) -> FunctionResult {
        let tel = p.telemetry();
        tel.counter_add("backend.shed", 1);
        if tel.is_enabled() {
            tel.instant(
                p.name(),
                "shed",
                p.now(),
                &[
                    ("workload", w.name().to_string()),
                    ("reason", reason.to_string()),
                    ("inv", trace.id.to_string()),
                ],
            );
        }
        record_request_span(p, trace, w.name(), launched_at, p.now(), "shed", 0);
        self.observe_completion(p.now(), w.tenant(), launched_at, Dur::ZERO, false);
        FunctionResult {
            name: w.name().to_string(),
            tenant: w.tenant().to_string(),
            mode: "dgsf".into(),
            launched_at,
            finished_at: p.now(),
            phases: PhaseRecorder::new(),
            api_stats: dgsf_cuda::ApiStats::default(),
            invocation: None,
            attempts: 0,
            failure: Some(format!("overloaded: {reason}")),
            shed: true,
            trace: Some(trace.id),
            server: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_cuda::{CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
    use dgsf_gpu::GB;
    use dgsf_remoting::NetProfile;
    use dgsf_server::GpuServerConfig;
    use dgsf_sim::{Dur, Sim};
    use parking_lot::Mutex;

    use crate::phases::PhaseRecorder;

    struct Spin;
    impl Workload for Spin {
        fn name(&self) -> &str {
            "spin"
        }
        fn registry(&self) -> Arc<ModuleRegistry> {
            Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
        }
        fn required_gpu_mem(&self) -> u64 {
            GB
        }
        fn download_bytes(&self) -> u64 {
            0
        }
        fn run(
            &self,
            p: &ProcCtx,
            api: &mut dyn dgsf_cuda::CudaApi,
            rec: &mut PhaseRecorder,
        ) -> CudaResult<()> {
            rec.enter(p, crate::phases::phase::PROCESSING);
            api.launch_kernel(
                p,
                "k",
                LaunchConfig::linear(1, 32),
                KernelArgs::timed(1.0, 0),
            )?;
            api.device_synchronize(p)?;
            rec.close(p);
            Ok(())
        }
        fn cpu_secs(&self) -> f64 {
            30.0
        }
    }

    fn two_server_backend(p: &ProcCtx, h: &dgsf_sim::SimHandle, policy: FleetPolicy) -> Backend {
        let cfg = GpuServerConfig::paper_default().gpus(1);
        let s1 = GpuServer::provision(p, h, cfg.clone());
        let s2 = GpuServer::provision(p, h, cfg);
        Backend::new(vec![s1, s2], policy)
    }

    #[test]
    fn round_robin_alternates() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("root", move |p| {
            let b = two_server_backend(p, &h, FleetPolicy::RoundRobin);
            let a = Arc::as_ptr(b.choose());
            let c = Arc::as_ptr(b.choose());
            let d = Arc::as_ptr(b.choose());
            assert_ne!(a, c);
            assert_eq!(a, d);
        });
        sim.run();
    }

    #[test]
    fn retry_backoff_grows_geometrically() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff(1), Dur::from_millis(50));
        assert_eq!(r.backoff(2), Dur::from_millis(100));
        assert_eq!(r.backoff(3), Dur::from_millis(200));
    }

    #[test]
    fn retry_backoff_is_exact_integer_millis() {
        // Non-integral growth (×1.5) stays exact in milli arithmetic —
        // pinned so the sequence can never drift with float rounding.
        let r = RetryPolicy::default()
            .with_initial_backoff_ms(100)
            .with_multiplier_permille(1500);
        let seq: Vec<Dur> = (1..=5).map(|a| r.backoff(a)).collect();
        assert_eq!(
            seq,
            vec![
                Dur::from_millis(100),
                Dur::from_millis(150),
                Dur::from_millis(225),
                Dur::from_millis(337), // 337.5 floors: integer millis
                Dur::from_millis(505), // 337 * 1500 / 1000
            ]
        );
    }

    #[test]
    fn retry_backoff_saturates_instead_of_overflowing() {
        let r = RetryPolicy::default()
            .with_initial_backoff_ms(u64::MAX)
            .with_multiplier_permille(u64::MAX);
        // The longest backoff Dur's u64 nanoseconds can represent,
        // reached monotonically — never a wrapped-around short sleep.
        let cap = Dur::from_millis(u64::MAX / 1_000_000);
        assert_eq!(r.backoff(1), cap);
        assert_eq!(r.backoff(64), cap);
        let grow = RetryPolicy::default().with_initial_backoff_ms(50);
        let mut prev = Dur::ZERO;
        for a in 1..=80 {
            let b = grow.backoff(a);
            assert!(b >= prev, "backoff shrank at attempt {a}");
            prev = b;
        }
        assert_eq!(prev, cap);
    }

    #[test]
    fn least_loaded_spreads_most_loaded_packs() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let spread = Arc::new(Mutex::new((0usize, 0usize)));
        let s2 = spread.clone();
        sim.spawn("root", move |p| {
            let b = Arc::new(two_server_backend(p, &h, FleetPolicy::LeastLoaded));
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            // launch 4 concurrent functions through the backend
            for i in 0..4 {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                h.spawn(&format!("fn{i}"), move |p| {
                    let _ = b.invoke(p, &store, &Spin, OptConfig::full());
                });
            }
            p.sleep(Dur::from_secs(30));
            *s2.lock() = (
                b.servers()[0].records().len(),
                b.servers()[1].records().len(),
            );
        });
        sim.run();
        let (a, c) = *spread.lock();
        assert_eq!(a + c, 4);
        assert_eq!(a, 2, "least-loaded balances 2/2, got {a}/{c}");
    }

    #[test]
    fn admission_sheds_beyond_the_inflight_limit() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let results = Arc::new(Mutex::new(Vec::new()));
        let r2 = results.clone();
        sim.spawn("root", move |p| {
            let cfg = GpuServerConfig::paper_default().gpus(1);
            let srv = GpuServer::provision(p, &h, cfg);
            let b = Arc::new(
                Backend::new(vec![srv], FleetPolicy::RoundRobin)
                    .with_admission(AdmissionConfig::new(1)),
            );
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            for i in 0..2 {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                let r = r2.clone();
                h.spawn(&format!("fn{i}"), move |p| {
                    // stagger by 1 ms so fn0 holds the only slot when fn1
                    // arrives (both well within fn0's ~1 s runtime)
                    p.sleep(Dur::from_millis(i as u64));
                    let res = b.invoke(p, &store, &Spin, OptConfig::full());
                    r.lock().push(res);
                });
            }
            p.sleep(Dur::from_secs(10));
            assert_eq!(b.inflight(), 0, "slots released after completion");
        });
        sim.run();
        let res = results.lock().clone();
        assert_eq!(res.len(), 2);
        let shed: Vec<&FunctionResult> = res.iter().filter(|r| r.shed).collect();
        assert_eq!(shed.len(), 1, "exactly one invocation shed");
        assert_eq!(shed[0].attempts, 0, "shed before any attempt");
        assert!(shed[0].failure.as_deref().unwrap().contains("overloaded"));
        assert!(
            res.iter().any(|r| r.succeeded()),
            "the admitted invocation completed"
        );
    }

    #[test]
    fn per_workload_cap_spares_other_workloads() {
        struct Named(&'static str);
        impl Workload for Named {
            fn name(&self) -> &str {
                self.0
            }
            fn registry(&self) -> Arc<ModuleRegistry> {
                Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
            }
            fn required_gpu_mem(&self) -> u64 {
                GB
            }
            fn download_bytes(&self) -> u64 {
                0
            }
            fn run(
                &self,
                p: &ProcCtx,
                api: &mut dyn dgsf_cuda::CudaApi,
                rec: &mut PhaseRecorder,
            ) -> CudaResult<()> {
                rec.enter(p, crate::phases::phase::PROCESSING);
                api.launch_kernel(
                    p,
                    "k",
                    LaunchConfig::linear(1, 32),
                    KernelArgs::timed(1.0, 0),
                )?;
                api.device_synchronize(p)?;
                rec.close(p);
                Ok(())
            }
            fn cpu_secs(&self) -> f64 {
                30.0
            }
        }
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let results = Arc::new(Mutex::new(Vec::new()));
        let r2 = results.clone();
        sim.spawn("root", move |p| {
            let cfg = GpuServerConfig::paper_default().gpus(2).sharing(2);
            let srv = GpuServer::provision(p, &h, cfg);
            let b = Arc::new(
                Backend::new(vec![srv], FleetPolicy::RoundRobin)
                    .with_admission(AdmissionConfig::new(16).with_max_per_workload(1)),
            );
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            for (i, name) in ["hot", "hot", "cold"].into_iter().enumerate() {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                let r = r2.clone();
                h.spawn(&format!("fn{i}"), move |p| {
                    p.sleep(Dur::from_millis(i as u64));
                    let res = b.invoke(p, &store, &Named(name), OptConfig::full());
                    r.lock().push((name, res.shed));
                });
            }
        });
        sim.run();
        let res = results.lock().clone();
        let hot_shed = res.iter().filter(|(n, s)| *n == "hot" && *s).count();
        let cold_shed = res.iter().filter(|(n, s)| *n == "cold" && *s).count();
        assert_eq!(hot_shed, 1, "second concurrent 'hot' hits the cap");
        assert_eq!(cold_shed, 0, "'cold' is unaffected by 'hot''s cap");
    }

    #[test]
    fn most_loaded_consolidates_onto_one_server() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let spread = Arc::new(Mutex::new((0usize, 0usize)));
        let s2 = spread.clone();
        sim.spawn("root", move |p| {
            let b = Arc::new(two_server_backend(p, &h, FleetPolicy::MostLoaded));
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            for i in 0..3 {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                h.spawn(&format!("fn{i}"), move |p| {
                    // stagger so load is observable at choice time
                    p.sleep(Dur::from_millis(200 * i as u64));
                    let _ = b.invoke(p, &store, &Spin, OptConfig::full());
                });
            }
            p.sleep(Dur::from_secs(30));
            *s2.lock() = (
                b.servers()[0].records().len(),
                b.servers()[1].records().len(),
            );
        });
        sim.run();
        let (a, c) = *spread.lock();
        assert_eq!(a + c, 3);
        assert!(
            a == 3 || c == 3,
            "most-loaded packs everything onto one server: {a}/{c}"
        );
    }
}
