//! The serverless backend's GPU-server selection (§IV) and retry policy.
//!
//! "Our prototype uses a fixed policy to choose, given a function requesting
//! a GPU, which GPU server to use. Different policies can be used in a
//! commercial deployment, such as choosing the least loaded GPU server to
//! optimize latency or the opposite to increase utilization." This module
//! implements that policy space over multiple provisioned [`GpuServer`]s;
//! scaling out is exactly as simple as the paper describes — a new server
//! registers itself and becomes a choice.
//!
//! The backend is also where failure recovery lives: a transient
//! (transport-class) attempt failure triggers a bounded retry with
//! exponential backoff, preferring a *different* GPU server for the next
//! attempt. Every invocation therefore terminates: it either completes or
//! comes back as a [`FunctionResult`] with `failure` set after the attempt
//! budget is spent.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dgsf_remoting::OptConfig;
use dgsf_server::GpuServer;
use dgsf_sim::{Dur, ProcCtx};
use parking_lot::Mutex;

use crate::invoke::{invoke_dgsf_bounded, FailureClass, FunctionResult, InvokeFailure};
use crate::phases::PhaseRecorder;
use crate::store::ObjectStore;
use crate::workload::Workload;

/// How the backend picks a GPU server for a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerPolicy {
    /// Rotate through servers (the fixed policy of the prototype).
    RoundRobin,
    /// Fewest active functions — optimizes latency.
    LeastLoaded,
    /// Most active functions — consolidates to maximize utilization (and
    /// lets the provider idle whole servers).
    MostLoaded,
}

/// Bounded retry-with-backoff for transient invocation failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempt budget per function (first try included). 1 disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub initial_backoff: Dur,
    /// Growth factor for each subsequent backoff.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Dur::from_millis(50),
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep after failed attempt number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Dur {
        let factor = self
            .backoff_multiplier
            .powi(attempt.saturating_sub(1) as i32);
        Dur::from_secs_f64(self.initial_backoff.as_secs_f64() * factor)
    }
}

/// Admission control at the backend's front door: bounded concurrency and
/// queue age, so overload turns into fast, explicit shedding instead of
/// unbounded queueing. Shed invocations come back immediately with
/// [`FunctionResult::shed`] set and are never retried.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum invocations admitted concurrently (platform-wide). Anything
    /// beyond is shed on arrival.
    pub max_inflight: usize,
    /// Maximum time one attempt may wait in a GPU server's queue before
    /// the work is shed as overload (bounds queue *age*, not just depth).
    pub max_queue_age: Option<Dur>,
    /// Per-workload concurrency cap: one hot function cannot occupy the
    /// whole admitted set.
    pub max_per_workload: Option<usize>,
}

impl AdmissionConfig {
    /// Admit up to `max_inflight` concurrent invocations; no age or
    /// per-workload bounds.
    pub fn new(max_inflight: usize) -> AdmissionConfig {
        assert!(max_inflight >= 1, "admitting nothing serves nothing");
        AdmissionConfig {
            max_inflight,
            max_queue_age: None,
            max_per_workload: None,
        }
    }

    /// Builder-style: bound per-attempt queue wait.
    pub fn with_max_queue_age(mut self, d: Dur) -> Self {
        self.max_queue_age = Some(d);
        self
    }

    /// Builder-style: cap concurrent invocations of any single workload.
    pub fn with_max_per_workload(mut self, n: usize) -> Self {
        self.max_per_workload = Some(n.max(1));
        self
    }
}

/// Live admission counters (one lock: admission decisions are atomic).
#[derive(Default)]
struct AdmissionState {
    inflight: usize,
    per_workload: HashMap<String, usize>,
}

/// RAII release of an admission slot.
struct AdmissionSlot<'a> {
    state: &'a Mutex<AdmissionState>,
    name: String,
}

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        let mut st = self.state.lock();
        st.inflight -= 1;
        if let Some(n) = st.per_workload.get_mut(&self.name) {
            *n -= 1;
            if *n == 0 {
                st.per_workload.remove(&self.name);
            }
        }
    }
}

/// The central serverless backend: a registry of GPU servers plus a
/// selection policy.
pub struct Backend {
    servers: Vec<Arc<GpuServer>>,
    policy: ServerPolicy,
    retry: RetryPolicy,
    admission: Option<AdmissionConfig>,
    admitted: Mutex<AdmissionState>,
    rr: AtomicUsize,
}

impl Backend {
    /// Build a backend over already-provisioned servers.
    pub fn new(servers: Vec<Arc<GpuServer>>, policy: ServerPolicy) -> Backend {
        assert!(
            !servers.is_empty(),
            "a backend needs at least one GPU server"
        );
        Backend {
            servers,
            policy,
            retry: RetryPolicy::default(),
            admission: None,
            admitted: Mutex::new(AdmissionState::default()),
            rr: AtomicUsize::new(0),
        }
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Backend {
        self.retry = retry;
        self
    }

    /// Turn on admission control. Without it the backend admits everything
    /// and queues without bound (the paper's prototype behaviour).
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Backend {
        self.admission = Some(admission);
        self
    }

    /// Invocations currently admitted (holding an admission slot).
    pub fn inflight(&self) -> usize {
        self.admitted.lock().inflight
    }

    /// A GPU server announcing readiness (§IV: "it annouces it is ready
    /// ... and becomes a choice when a function requests a GPU").
    pub fn register(&mut self, server: Arc<GpuServer>) {
        self.servers.push(server);
    }

    /// The registered servers.
    pub fn servers(&self) -> &[Arc<GpuServer>] {
        &self.servers
    }

    /// Choose a server for the next function under the configured policy.
    pub fn choose(&self) -> &Arc<GpuServer> {
        &self.servers[self.choose_idx(None)]
    }

    /// Choose a server index, steering away from `avoid` (the server a
    /// previous attempt just failed on) when there is an alternative.
    fn choose_idx(&self, avoid: Option<usize>) -> usize {
        let eligible: Vec<usize> = (0..self.servers.len())
            .filter(|&i| Some(i) != avoid || self.servers.len() == 1)
            .collect();
        match self.policy {
            ServerPolicy::RoundRobin => {
                let i = self.rr.fetch_add(1, Ordering::Relaxed) % eligible.len();
                eligible[i]
            }
            ServerPolicy::LeastLoaded => eligible
                .into_iter()
                .min_by_key(|&i| self.servers[i].active_functions())
                .expect("non-empty"),
            ServerPolicy::MostLoaded => eligible
                .into_iter()
                .max_by_key(|&i| self.servers[i].active_functions())
                .expect("non-empty"),
        }
    }

    /// Invoke a workload through the backend: choose a server, run the full
    /// DGSF path against it, and on a transient failure retry (with
    /// backoff, preferring a different server) up to the attempt budget.
    ///
    /// Always returns: check [`FunctionResult::succeeded`] for the outcome.
    /// `launched_at`/`finished_at` span the whole invocation including
    /// retries and backoff, so `e2e()` reflects what the client observed.
    pub fn invoke(
        &self,
        p: &ProcCtx,
        store: &ObjectStore,
        w: &dyn Workload,
        opts: OptConfig,
    ) -> FunctionResult {
        let launched_at = p.now();
        let tel = p.telemetry();
        tel.counter_add("backend.invocations", 1);
        // Admission control: claim a slot or shed on the spot.
        let _slot = match self.try_admit(w.name()) {
            Ok(slot) => slot,
            Err(reason) => return self.shed(p, w, launched_at, &reason),
        };
        let max_queue_age = self.admission.as_ref().and_then(|a| a.max_queue_age);
        let mut avoid = None;
        let mut attempt = 1;
        let last: InvokeFailure = loop {
            tel.counter_add("backend.attempts", 1);
            let idx = self.choose_idx(avoid);
            match invoke_dgsf_bounded(
                p,
                &self.servers[idx],
                store,
                w,
                opts,
                attempt,
                max_queue_age,
            ) {
                Ok(mut r) => {
                    r.launched_at = launched_at;
                    r.attempts = attempt;
                    return r;
                }
                Err(f) => {
                    // Overloaded is deliberately not retried: piling
                    // retries onto a saturated platform makes it worse.
                    if f.class == FailureClass::Transient && attempt < self.retry.max_attempts {
                        if tel.is_enabled() {
                            tel.counter_add("backend.retries", 1);
                            tel.instant(
                                p.name(),
                                "retry",
                                p.now(),
                                &[
                                    ("workload", w.name().to_string()),
                                    ("failed_attempt", attempt.to_string()),
                                    ("error", f.error.to_string()),
                                ],
                            );
                        }
                        avoid = Some(idx);
                        p.sleep(self.retry.backoff(attempt));
                        attempt += 1;
                    } else {
                        break f;
                    }
                }
            }
        };
        let shed = last.class == FailureClass::Overloaded;
        if shed {
            tel.counter_add("backend.shed", 1);
            if tel.is_enabled() {
                tel.instant(
                    p.name(),
                    "shed",
                    p.now(),
                    &[
                        ("workload", w.name().to_string()),
                        ("reason", last.error.to_string()),
                    ],
                );
            }
        } else {
            tel.counter_add("backend.failures", 1);
        }
        let failure = if shed {
            format!("overloaded: {}", last.error)
        } else {
            last.error.to_string()
        };
        FunctionResult {
            name: w.name().to_string(),
            mode: "dgsf".into(),
            launched_at,
            finished_at: p.now(),
            phases: *last.phases,
            api_stats: dgsf_cuda::ApiStats::default(),
            invocation: last.invocation,
            attempts: attempt,
            failure: Some(failure),
            shed,
        }
    }

    /// Claim an admission slot for `name`, or say why it was refused.
    fn try_admit(&self, name: &str) -> Result<Option<AdmissionSlot<'_>>, String> {
        let Some(adm) = &self.admission else {
            return Ok(None); // no admission control: everything enters
        };
        let mut st = self.admitted.lock();
        if st.inflight >= adm.max_inflight {
            return Err(format!(
                "inflight limit reached ({}/{})",
                st.inflight, adm.max_inflight
            ));
        }
        let running = st.per_workload.get(name).copied().unwrap_or(0);
        if let Some(cap) = adm.max_per_workload {
            if running >= cap {
                return Err(format!("workload cap reached ({running}/{cap})"));
            }
        }
        st.inflight += 1;
        *st.per_workload.entry(name.to_string()).or_insert(0) += 1;
        Ok(Some(AdmissionSlot {
            state: &self.admitted,
            name: name.to_string(),
        }))
    }

    /// A refused invocation: returns immediately, marked shed, never
    /// retried.
    fn shed(
        &self,
        p: &ProcCtx,
        w: &dyn Workload,
        launched_at: dgsf_sim::SimTime,
        reason: &str,
    ) -> FunctionResult {
        let tel = p.telemetry();
        tel.counter_add("backend.shed", 1);
        if tel.is_enabled() {
            tel.instant(
                p.name(),
                "shed",
                p.now(),
                &[
                    ("workload", w.name().to_string()),
                    ("reason", reason.to_string()),
                ],
            );
        }
        FunctionResult {
            name: w.name().to_string(),
            mode: "dgsf".into(),
            launched_at,
            finished_at: p.now(),
            phases: PhaseRecorder::new(),
            api_stats: dgsf_cuda::ApiStats::default(),
            invocation: None,
            attempts: 0,
            failure: Some(format!("overloaded: {reason}")),
            shed: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_cuda::{CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
    use dgsf_gpu::GB;
    use dgsf_remoting::NetProfile;
    use dgsf_server::GpuServerConfig;
    use dgsf_sim::{Dur, Sim};
    use parking_lot::Mutex;

    use crate::phases::PhaseRecorder;

    struct Spin;
    impl Workload for Spin {
        fn name(&self) -> &str {
            "spin"
        }
        fn registry(&self) -> Arc<ModuleRegistry> {
            Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
        }
        fn required_gpu_mem(&self) -> u64 {
            GB
        }
        fn download_bytes(&self) -> u64 {
            0
        }
        fn run(
            &self,
            p: &ProcCtx,
            api: &mut dyn dgsf_cuda::CudaApi,
            rec: &mut PhaseRecorder,
        ) -> CudaResult<()> {
            rec.enter(p, crate::phases::phase::PROCESSING);
            api.launch_kernel(
                p,
                "k",
                LaunchConfig::linear(1, 32),
                KernelArgs::timed(1.0, 0),
            )?;
            api.device_synchronize(p)?;
            rec.close(p);
            Ok(())
        }
        fn cpu_secs(&self) -> f64 {
            30.0
        }
    }

    fn two_server_backend(p: &ProcCtx, h: &dgsf_sim::SimHandle, policy: ServerPolicy) -> Backend {
        let cfg = GpuServerConfig::paper_default().gpus(1);
        let s1 = GpuServer::provision(p, h, cfg.clone());
        let s2 = GpuServer::provision(p, h, cfg);
        Backend::new(vec![s1, s2], policy)
    }

    #[test]
    fn round_robin_alternates() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("root", move |p| {
            let b = two_server_backend(p, &h, ServerPolicy::RoundRobin);
            let a = Arc::as_ptr(b.choose());
            let c = Arc::as_ptr(b.choose());
            let d = Arc::as_ptr(b.choose());
            assert_ne!(a, c);
            assert_eq!(a, d);
        });
        sim.run();
    }

    #[test]
    fn retry_backoff_grows_geometrically() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff(1), Dur::from_millis(50));
        assert_eq!(r.backoff(2), Dur::from_millis(100));
        assert_eq!(r.backoff(3), Dur::from_millis(200));
    }

    #[test]
    fn least_loaded_spreads_most_loaded_packs() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let spread = Arc::new(Mutex::new((0usize, 0usize)));
        let s2 = spread.clone();
        sim.spawn("root", move |p| {
            let b = Arc::new(two_server_backend(p, &h, ServerPolicy::LeastLoaded));
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            // launch 4 concurrent functions through the backend
            for i in 0..4 {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                h.spawn(&format!("fn{i}"), move |p| {
                    let _ = b.invoke(p, &store, &Spin, OptConfig::full());
                });
            }
            p.sleep(Dur::from_secs(30));
            *s2.lock() = (
                b.servers()[0].records().len(),
                b.servers()[1].records().len(),
            );
        });
        sim.run();
        let (a, c) = *spread.lock();
        assert_eq!(a + c, 4);
        assert_eq!(a, 2, "least-loaded balances 2/2, got {a}/{c}");
    }

    #[test]
    fn admission_sheds_beyond_the_inflight_limit() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let results = Arc::new(Mutex::new(Vec::new()));
        let r2 = results.clone();
        sim.spawn("root", move |p| {
            let cfg = GpuServerConfig::paper_default().gpus(1);
            let srv = GpuServer::provision(p, &h, cfg);
            let b = Arc::new(
                Backend::new(vec![srv], ServerPolicy::RoundRobin)
                    .with_admission(AdmissionConfig::new(1)),
            );
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            for i in 0..2 {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                let r = r2.clone();
                h.spawn(&format!("fn{i}"), move |p| {
                    // stagger by 1 ms so fn0 holds the only slot when fn1
                    // arrives (both well within fn0's ~1 s runtime)
                    p.sleep(Dur::from_millis(i as u64));
                    let res = b.invoke(p, &store, &Spin, OptConfig::full());
                    r.lock().push(res);
                });
            }
            p.sleep(Dur::from_secs(10));
            assert_eq!(b.inflight(), 0, "slots released after completion");
        });
        sim.run();
        let res = results.lock().clone();
        assert_eq!(res.len(), 2);
        let shed: Vec<&FunctionResult> = res.iter().filter(|r| r.shed).collect();
        assert_eq!(shed.len(), 1, "exactly one invocation shed");
        assert_eq!(shed[0].attempts, 0, "shed before any attempt");
        assert!(shed[0].failure.as_deref().unwrap().contains("overloaded"));
        assert!(
            res.iter().any(|r| r.succeeded()),
            "the admitted invocation completed"
        );
    }

    #[test]
    fn per_workload_cap_spares_other_workloads() {
        struct Named(&'static str);
        impl Workload for Named {
            fn name(&self) -> &str {
                self.0
            }
            fn registry(&self) -> Arc<ModuleRegistry> {
                Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
            }
            fn required_gpu_mem(&self) -> u64 {
                GB
            }
            fn download_bytes(&self) -> u64 {
                0
            }
            fn run(
                &self,
                p: &ProcCtx,
                api: &mut dyn dgsf_cuda::CudaApi,
                rec: &mut PhaseRecorder,
            ) -> CudaResult<()> {
                rec.enter(p, crate::phases::phase::PROCESSING);
                api.launch_kernel(
                    p,
                    "k",
                    LaunchConfig::linear(1, 32),
                    KernelArgs::timed(1.0, 0),
                )?;
                api.device_synchronize(p)?;
                rec.close(p);
                Ok(())
            }
            fn cpu_secs(&self) -> f64 {
                30.0
            }
        }
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let results = Arc::new(Mutex::new(Vec::new()));
        let r2 = results.clone();
        sim.spawn("root", move |p| {
            let cfg = GpuServerConfig::paper_default().gpus(2).sharing(2);
            let srv = GpuServer::provision(p, &h, cfg);
            let b = Arc::new(
                Backend::new(vec![srv], ServerPolicy::RoundRobin)
                    .with_admission(AdmissionConfig::new(16).with_max_per_workload(1)),
            );
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            for (i, name) in ["hot", "hot", "cold"].into_iter().enumerate() {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                let r = r2.clone();
                h.spawn(&format!("fn{i}"), move |p| {
                    p.sleep(Dur::from_millis(i as u64));
                    let res = b.invoke(p, &store, &Named(name), OptConfig::full());
                    r.lock().push((name, res.shed));
                });
            }
        });
        sim.run();
        let res = results.lock().clone();
        let hot_shed = res.iter().filter(|(n, s)| *n == "hot" && *s).count();
        let cold_shed = res.iter().filter(|(n, s)| *n == "cold" && *s).count();
        assert_eq!(hot_shed, 1, "second concurrent 'hot' hits the cap");
        assert_eq!(cold_shed, 0, "'cold' is unaffected by 'hot''s cap");
    }

    #[test]
    fn most_loaded_consolidates_onto_one_server() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let spread = Arc::new(Mutex::new((0usize, 0usize)));
        let s2 = spread.clone();
        sim.spawn("root", move |p| {
            let b = Arc::new(two_server_backend(p, &h, ServerPolicy::MostLoaded));
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            for i in 0..3 {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                h.spawn(&format!("fn{i}"), move |p| {
                    // stagger so load is observable at choice time
                    p.sleep(Dur::from_millis(200 * i as u64));
                    let _ = b.invoke(p, &store, &Spin, OptConfig::full());
                });
            }
            p.sleep(Dur::from_secs(30));
            *s2.lock() = (
                b.servers()[0].records().len(),
                b.servers()[1].records().len(),
            );
        });
        sim.run();
        let (a, c) = *spread.lock();
        assert_eq!(a + c, 3);
        assert!(
            a == 3 || c == 3,
            "most-loaded packs everything onto one server: {a}/{c}"
        );
    }
}
