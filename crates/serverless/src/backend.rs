//! The serverless backend's GPU-server selection (§IV) and retry policy.
//!
//! "Our prototype uses a fixed policy to choose, given a function requesting
//! a GPU, which GPU server to use. Different policies can be used in a
//! commercial deployment, such as choosing the least loaded GPU server to
//! optimize latency or the opposite to increase utilization." This module
//! implements that policy space over multiple provisioned [`GpuServer`]s;
//! scaling out is exactly as simple as the paper describes — a new server
//! registers itself and becomes a choice.
//!
//! The backend is also where failure recovery lives: a transient
//! (transport-class) attempt failure triggers a bounded retry with
//! exponential backoff, preferring a *different* GPU server for the next
//! attempt. Every invocation therefore terminates: it either completes or
//! comes back as a [`FunctionResult`] with `failure` set after the attempt
//! budget is spent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dgsf_remoting::OptConfig;
use dgsf_server::GpuServer;
use dgsf_sim::{Dur, ProcCtx};

use crate::invoke::{invoke_dgsf_attempt, FunctionResult, InvokeFailure};
use crate::store::ObjectStore;
use crate::workload::Workload;

/// How the backend picks a GPU server for a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerPolicy {
    /// Rotate through servers (the fixed policy of the prototype).
    RoundRobin,
    /// Fewest active functions — optimizes latency.
    LeastLoaded,
    /// Most active functions — consolidates to maximize utilization (and
    /// lets the provider idle whole servers).
    MostLoaded,
}

/// Bounded retry-with-backoff for transient invocation failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempt budget per function (first try included). 1 disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub initial_backoff: Dur,
    /// Growth factor for each subsequent backoff.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Dur::from_millis(50),
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep after failed attempt number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Dur {
        let factor = self
            .backoff_multiplier
            .powi(attempt.saturating_sub(1) as i32);
        Dur::from_secs_f64(self.initial_backoff.as_secs_f64() * factor)
    }
}

/// The central serverless backend: a registry of GPU servers plus a
/// selection policy.
pub struct Backend {
    servers: Vec<Arc<GpuServer>>,
    policy: ServerPolicy,
    retry: RetryPolicy,
    rr: AtomicUsize,
}

impl Backend {
    /// Build a backend over already-provisioned servers.
    pub fn new(servers: Vec<Arc<GpuServer>>, policy: ServerPolicy) -> Backend {
        assert!(
            !servers.is_empty(),
            "a backend needs at least one GPU server"
        );
        Backend {
            servers,
            policy,
            retry: RetryPolicy::default(),
            rr: AtomicUsize::new(0),
        }
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Backend {
        self.retry = retry;
        self
    }

    /// A GPU server announcing readiness (§IV: "it annouces it is ready
    /// ... and becomes a choice when a function requests a GPU").
    pub fn register(&mut self, server: Arc<GpuServer>) {
        self.servers.push(server);
    }

    /// The registered servers.
    pub fn servers(&self) -> &[Arc<GpuServer>] {
        &self.servers
    }

    /// Choose a server for the next function under the configured policy.
    pub fn choose(&self) -> &Arc<GpuServer> {
        &self.servers[self.choose_idx(None)]
    }

    /// Choose a server index, steering away from `avoid` (the server a
    /// previous attempt just failed on) when there is an alternative.
    fn choose_idx(&self, avoid: Option<usize>) -> usize {
        let eligible: Vec<usize> = (0..self.servers.len())
            .filter(|&i| Some(i) != avoid || self.servers.len() == 1)
            .collect();
        match self.policy {
            ServerPolicy::RoundRobin => {
                let i = self.rr.fetch_add(1, Ordering::Relaxed) % eligible.len();
                eligible[i]
            }
            ServerPolicy::LeastLoaded => eligible
                .into_iter()
                .min_by_key(|&i| self.servers[i].active_functions())
                .expect("non-empty"),
            ServerPolicy::MostLoaded => eligible
                .into_iter()
                .max_by_key(|&i| self.servers[i].active_functions())
                .expect("non-empty"),
        }
    }

    /// Invoke a workload through the backend: choose a server, run the full
    /// DGSF path against it, and on a transient failure retry (with
    /// backoff, preferring a different server) up to the attempt budget.
    ///
    /// Always returns: check [`FunctionResult::succeeded`] for the outcome.
    /// `launched_at`/`finished_at` span the whole invocation including
    /// retries and backoff, so `e2e()` reflects what the client observed.
    pub fn invoke(
        &self,
        p: &ProcCtx,
        store: &ObjectStore,
        w: &dyn Workload,
        opts: OptConfig,
    ) -> FunctionResult {
        let launched_at = p.now();
        let tel = p.telemetry();
        tel.counter_add("backend.invocations", 1);
        let mut avoid = None;
        let mut attempt = 1;
        let last: InvokeFailure = loop {
            tel.counter_add("backend.attempts", 1);
            let idx = self.choose_idx(avoid);
            match invoke_dgsf_attempt(p, &self.servers[idx], store, w, opts, attempt) {
                Ok(mut r) => {
                    r.launched_at = launched_at;
                    r.attempts = attempt;
                    return r;
                }
                Err(f) => {
                    if f.error.is_transient() && attempt < self.retry.max_attempts {
                        if tel.is_enabled() {
                            tel.counter_add("backend.retries", 1);
                            tel.instant(
                                p.name(),
                                "retry",
                                p.now(),
                                &[
                                    ("workload", w.name().to_string()),
                                    ("failed_attempt", attempt.to_string()),
                                    ("error", f.error.to_string()),
                                ],
                            );
                        }
                        avoid = Some(idx);
                        p.sleep(self.retry.backoff(attempt));
                        attempt += 1;
                    } else {
                        break f;
                    }
                }
            }
        };
        tel.counter_add("backend.failures", 1);
        FunctionResult {
            name: w.name().to_string(),
            mode: "dgsf".into(),
            launched_at,
            finished_at: p.now(),
            phases: last.phases,
            api_stats: dgsf_cuda::ApiStats::default(),
            invocation: last.invocation,
            attempts: attempt,
            failure: Some(last.error.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_cuda::{CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
    use dgsf_gpu::GB;
    use dgsf_remoting::NetProfile;
    use dgsf_server::GpuServerConfig;
    use dgsf_sim::{Dur, Sim};
    use parking_lot::Mutex;

    use crate::phases::PhaseRecorder;

    struct Spin;
    impl Workload for Spin {
        fn name(&self) -> &str {
            "spin"
        }
        fn registry(&self) -> Arc<ModuleRegistry> {
            Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
        }
        fn required_gpu_mem(&self) -> u64 {
            GB
        }
        fn download_bytes(&self) -> u64 {
            0
        }
        fn run(
            &self,
            p: &ProcCtx,
            api: &mut dyn dgsf_cuda::CudaApi,
            rec: &mut PhaseRecorder,
        ) -> CudaResult<()> {
            rec.enter(p, crate::phases::phase::PROCESSING);
            api.launch_kernel(
                p,
                "k",
                LaunchConfig::linear(1, 32),
                KernelArgs::timed(1.0, 0),
            )?;
            api.device_synchronize(p)?;
            rec.close(p);
            Ok(())
        }
        fn cpu_secs(&self) -> f64 {
            30.0
        }
    }

    fn two_server_backend(p: &ProcCtx, h: &dgsf_sim::SimHandle, policy: ServerPolicy) -> Backend {
        let cfg = GpuServerConfig::paper_default().gpus(1);
        let s1 = GpuServer::provision(p, h, cfg.clone());
        let s2 = GpuServer::provision(p, h, cfg);
        Backend::new(vec![s1, s2], policy)
    }

    #[test]
    fn round_robin_alternates() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.spawn("root", move |p| {
            let b = two_server_backend(p, &h, ServerPolicy::RoundRobin);
            let a = Arc::as_ptr(b.choose());
            let c = Arc::as_ptr(b.choose());
            let d = Arc::as_ptr(b.choose());
            assert_ne!(a, c);
            assert_eq!(a, d);
        });
        sim.run();
    }

    #[test]
    fn retry_backoff_grows_geometrically() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff(1), Dur::from_millis(50));
        assert_eq!(r.backoff(2), Dur::from_millis(100));
        assert_eq!(r.backoff(3), Dur::from_millis(200));
    }

    #[test]
    fn least_loaded_spreads_most_loaded_packs() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let spread = Arc::new(Mutex::new((0usize, 0usize)));
        let s2 = spread.clone();
        sim.spawn("root", move |p| {
            let b = Arc::new(two_server_backend(p, &h, ServerPolicy::LeastLoaded));
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            // launch 4 concurrent functions through the backend
            for i in 0..4 {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                h.spawn(&format!("fn{i}"), move |p| {
                    let _ = b.invoke(p, &store, &Spin, OptConfig::full());
                });
            }
            p.sleep(Dur::from_secs(30));
            *s2.lock() = (
                b.servers()[0].records().len(),
                b.servers()[1].records().len(),
            );
        });
        sim.run();
        let (a, c) = *spread.lock();
        assert_eq!(a + c, 4);
        assert_eq!(a, 2, "least-loaded balances 2/2, got {a}/{c}");
    }

    #[test]
    fn most_loaded_consolidates_onto_one_server() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let spread = Arc::new(Mutex::new((0usize, 0usize)));
        let s2 = spread.clone();
        sim.spawn("root", move |p| {
            let b = Arc::new(two_server_backend(p, &h, ServerPolicy::MostLoaded));
            let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
            for i in 0..3 {
                let b = Arc::clone(&b);
                let store = Arc::clone(&store);
                h.spawn(&format!("fn{i}"), move |p| {
                    // stagger so load is observable at choice time
                    p.sleep(Dur::from_millis(200 * i as u64));
                    let _ = b.invoke(p, &store, &Spin, OptConfig::full());
                });
            }
            p.sleep(Dur::from_secs(30));
            *s2.lock() = (
                b.servers()[0].records().len(),
                b.servers()[1].records().len(),
            );
        });
        sim.run();
        let (a, c) = *spread.lock();
        assert_eq!(a + c, 3);
        assert!(
            a == 3 || c == 3,
            "most-loaded packs everything onto one server: {a}/{c}"
        );
    }
}
