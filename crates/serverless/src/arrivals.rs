//! Arrival processes for mixed-workload experiments (§VIII-D).
//!
//! The paper launches 10 instances of each of the 6 workloads in a "random
//! (but consistent) order", with gaps drawn from exponential distributions
//! (mean 2 s = heavy load, mean 3 s = light load) or as bursts of all six
//! every 2 s.

use dgsf_sim::{rng, Dur, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How function launches are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Fixed gap between consecutive launches.
    Fixed(Dur),
    /// Exponentially distributed gaps with the given mean.
    Exponential {
        /// Mean inter-arrival gap.
        mean: Dur,
    },
    /// Launch `group_size` functions at once, then wait `gap`.
    Burst {
        /// Functions per burst.
        group_size: usize,
        /// Gap between bursts.
        gap: Dur,
    },
}

/// A schedule: which workload index launches when.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// `(launch_time, workload_index)` pairs, sorted by time.
    pub entries: Vec<(SimTime, usize)>,
}

impl Schedule {
    /// Build a schedule of `copies` × `num_workloads` launches in a seeded
    /// random (but consistent) order, spaced per `pattern`.
    pub fn mixed(
        seed: u64,
        num_workloads: usize,
        copies: usize,
        pattern: ArrivalPattern,
    ) -> Schedule {
        let mut order: Vec<usize> = (0..num_workloads)
            .flat_map(|w| std::iter::repeat_n(w, copies))
            .collect();
        let mut r = StdRng::seed_from_u64(seed);
        match pattern {
            ArrivalPattern::Burst { .. } => {
                // Bursts launch one of each workload together; shuffle the
                // within-burst order only.
                order.clear();
                for _ in 0..copies {
                    let mut burst: Vec<usize> = (0..num_workloads).collect();
                    rng::shuffle(&mut r, &mut burst);
                    order.extend(burst);
                }
            }
            _ => rng::shuffle(&mut r, &mut order),
        }
        let mut entries = Vec::with_capacity(order.len());
        let mut t = SimTime::ZERO;
        for (i, w) in order.into_iter().enumerate() {
            match pattern {
                ArrivalPattern::Fixed(gap) => {
                    entries.push((t, w));
                    t += gap;
                }
                ArrivalPattern::Exponential { mean } => {
                    entries.push((t, w));
                    t += rng::exp_gap(&mut r, mean);
                }
                ArrivalPattern::Burst { group_size, gap } => {
                    entries.push((t, w));
                    if (i + 1) % group_size == 0 {
                        t += gap;
                    }
                }
            }
        }
        Schedule { entries }
    }

    /// Merge several independent arrival streams into one schedule — the
    /// multi-tenant mixes of the fleet experiments, where each tenant's
    /// workload arrives as its own Poisson process at its own rate.
    ///
    /// Each stream is `(workload_index, launches, pattern)` and draws from
    /// its own RNG derived from `seed` and its position, so adding or
    /// re-ordering one stream never perturbs another's arrival times.
    /// Entries are merged in time order (ties break by workload index,
    /// then stream order), deterministically per seed.
    pub fn merged(seed: u64, streams: &[(usize, usize, ArrivalPattern)]) -> Schedule {
        let mut entries = Vec::new();
        for (k, &(widx, launches, pattern)) in streams.iter().enumerate() {
            let stream_seed = seed.wrapping_add((k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut r = StdRng::seed_from_u64(stream_seed);
            let mut t = SimTime::ZERO;
            for i in 0..launches {
                match pattern {
                    ArrivalPattern::Fixed(gap) => {
                        entries.push((t, widx));
                        t += gap;
                    }
                    ArrivalPattern::Exponential { mean } => {
                        entries.push((t, widx));
                        t += rng::exp_gap(&mut r, mean);
                    }
                    ArrivalPattern::Burst { group_size, gap } => {
                        entries.push((t, widx));
                        if (i + 1) % group_size == 0 {
                            t += gap;
                        }
                    }
                }
            }
        }
        entries.sort_by_key(|&(t, w)| (t, w));
        Schedule { entries }
    }

    /// Number of launches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Time of the last launch.
    pub fn last_launch(&self) -> SimTime {
        self.entries.last().map(|e| e.0).unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_schedule_has_copies_of_each() {
        let s = Schedule::mixed(42, 6, 10, ArrivalPattern::Fixed(Dur::from_secs(3)));
        assert_eq!(s.len(), 60);
        for w in 0..6 {
            assert_eq!(s.entries.iter().filter(|e| e.1 == w).count(), 10);
        }
        // fixed spacing
        assert_eq!(s.entries[1].0.since(s.entries[0].0), Dur::from_secs(3));
    }

    #[test]
    fn schedule_is_seed_deterministic() {
        let a = Schedule::mixed(
            7,
            6,
            10,
            ArrivalPattern::Exponential {
                mean: Dur::from_secs(2),
            },
        );
        let b = Schedule::mixed(
            7,
            6,
            10,
            ArrivalPattern::Exponential {
                mean: Dur::from_secs(2),
            },
        );
        let c = Schedule::mixed(
            8,
            6,
            10,
            ArrivalPattern::Exponential {
                mean: Dur::from_secs(2),
            },
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let s = Schedule::mixed(
            3,
            6,
            200,
            ArrivalPattern::Exponential {
                mean: Dur::from_secs(2),
            },
        );
        let total = s.last_launch().as_secs_f64();
        let mean = total / (s.len() - 1) as f64;
        assert!((mean - 2.0).abs() < 0.3, "observed mean gap {mean}");
    }

    #[test]
    fn merged_streams_are_independent_and_sorted() {
        let hot = (
            0usize,
            20usize,
            ArrivalPattern::Exponential {
                mean: Dur::from_millis(250),
            },
        );
        let cold = (
            1usize,
            5usize,
            ArrivalPattern::Exponential {
                mean: Dur::from_secs(1),
            },
        );
        let both = Schedule::merged(9, &[hot, cold]);
        assert_eq!(both.len(), 25);
        assert!(both.entries.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        // A stream's arrival times do not depend on the other streams.
        let alone = Schedule::merged(9, &[hot]);
        let hot_times: Vec<SimTime> = both
            .entries
            .iter()
            .filter(|e| e.1 == 0)
            .map(|e| e.0)
            .collect();
        let alone_times: Vec<SimTime> = alone.entries.iter().map(|e| e.0).collect();
        assert_eq!(hot_times, alone_times);
        // Deterministic per seed.
        assert_eq!(both, Schedule::merged(9, &[hot, cold]));
        assert_ne!(both, Schedule::merged(10, &[hot, cold]));
    }

    #[test]
    fn bursts_launch_groups_together() {
        let s = Schedule::mixed(
            5,
            6,
            10,
            ArrivalPattern::Burst {
                group_size: 6,
                gap: Dur::from_secs(2),
            },
        );
        assert_eq!(s.len(), 60);
        // first six entries share a timestamp and cover all six workloads
        let t0 = s.entries[0].0;
        let first: Vec<usize> = s.entries.iter().take(6).map(|e| e.1).collect();
        assert!(s.entries.iter().take(6).all(|e| e.0 == t0));
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        // next burst is 2 s later
        assert_eq!(s.entries[6].0.since(t0), Dur::from_secs(2));
    }
}
