//! Invocation paths: the same workload trace executed natively, over DGSF,
//! or on CPUs — the three columns of Table II.
//!
//! The DGSF path is fallible: over a faulted link any remoted call can time
//! out or come back with a transport error, and GPU acquisition itself can
//! time out in the monitor's queue. [`Invoker::invoke`] surfaces those as
//! [`InvokeFailure`] so [`crate::Backend::invoke`] can retry the whole
//! function (possibly on another GPU server); the native and CPU baselines
//! run on dedicated fault-free hardware and stay infallible.
//!
//! [`Invoker`] is the single DGSF entry point.

use std::sync::Arc;

use dgsf_cuda::{CostTable, CudaApi, CudaError, CudaResult, NativeCuda};
use dgsf_gpu::{Gpu, GpuId};
use dgsf_remoting::{OptConfig, RemoteCuda};
use dgsf_server::GpuServer;
use dgsf_sim::{Dur, ProcCtx, SimHandle, SimTime, TraceCtx};

use crate::dag::{edge_key, DagWorkload, HandoffMode, StageRun};
use crate::phases::{phase, PhaseRecorder};
use crate::store::ObjectStore;
use crate::workload::Workload;

/// How the backend should react to a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Transport-class blip: worth retrying, preferably elsewhere.
    Transient,
    /// The platform refused or shed the work under load. Retrying would
    /// only add load to an already saturated system, so this class is
    /// *never* retried.
    Overloaded,
    /// Anything else (programming errors, device OOM, …): retrying the
    /// same function would fail the same way.
    Permanent,
}

/// Outcome of one function execution.
#[derive(Debug, Clone)]
pub struct FunctionResult {
    /// Workload name.
    pub name: String,
    /// Tenant that deployed the workload (see [`crate::Workload::tenant`]).
    pub tenant: String,
    /// Execution mode label ("native" / "dgsf" / "cpu").
    pub mode: String,
    /// When the (warm) function began executing.
    pub launched_at: SimTime,
    /// When it finished.
    pub finished_at: SimTime,
    /// Per-phase breakdown.
    pub phases: PhaseRecorder,
    /// Guest-side API statistics (empty for CPU runs).
    pub api_stats: dgsf_cuda::ApiStats,
    /// GPU-server invocation id, when one was involved (the last attempt's,
    /// for retried functions).
    pub invocation: Option<u64>,
    /// How many platform attempts the function took (1 on the fault-free
    /// path; 0 when admission control shed it before any attempt).
    pub attempts: u32,
    /// Why the function ultimately failed, if it did — `None` on success.
    pub failure: Option<String>,
    /// True when the invocation was refused by admission control or shed
    /// under overload (the [`FailureClass::Overloaded`] path) rather than
    /// failing while executing.
    pub shed: bool,
    /// Platform-unique causal trace id for this request, when the run was
    /// traced end-to-end (DGSF path). `None` for native/CPU baselines.
    pub trace: Option<u64>,
    /// API server the (last) attempt executed on, when the monitor got as
    /// far as assigning one. GPU-resident DAG stages pin their successor
    /// to this server, because it owns the context holding their output.
    pub server: Option<u32>,
}

impl FunctionResult {
    /// End-to-end time of the function (from warm start to completion,
    /// spanning every retry attempt).
    pub fn e2e(&self) -> Dur {
        self.finished_at.since(self.launched_at)
    }

    /// True when the function completed (possibly after retries).
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }
}

/// One failed DGSF attempt, with enough context to retry or report.
#[derive(Debug, Clone)]
pub struct InvokeFailure {
    /// What went wrong.
    pub error: CudaError,
    /// How the retry layer should treat it.
    pub class: FailureClass,
    /// The GPU-server invocation involved, if acquisition got that far.
    pub invocation: Option<u64>,
    /// Phases recorded up to the failure point (boxed to keep the
    /// `Err`-variant small — `clippy::result_large_err`).
    pub phases: Box<PhaseRecorder>,
    /// When the attempt started.
    pub launched_at: SimTime,
    /// When it failed.
    pub failed_at: SimTime,
}

impl std::fmt::Display for InvokeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invocation attempt failed: {}", self.error)
    }
}

/// Everything that varies about one DGSF invocation attempt, in one place.
/// Build with [`InvokeOptions::new`] and layer on the builders; the plain
/// constructor is a fault-free single attempt with no queue bound, no
/// caller-owned trace and no placement pin.
#[derive(Debug, Clone)]
pub struct InvokeOptions {
    /// Remoting specialization ladder for the guest-side API (Figure 4).
    pub opts: OptConfig,
    /// 1-based attempt label in the server's invocation records.
    pub attempt: u32,
    /// Bound on queue wait at the GPU server. When this (rather than the
    /// server's own `queue_timeout`) binds and expires, the failure is
    /// classed [`FailureClass::Overloaded`] — shed, never retried.
    pub max_queue_age: Option<Dur>,
    /// Caller-owned causal trace context. `None` means the invoker roots a
    /// fresh trace and records the top-level request span itself; `Some`
    /// means the caller (the backend's retry loop) owns the request span.
    pub trace: Option<TraceCtx>,
    /// Pin the attempt to one API server: the monitor will assign no
    /// other, waiting (within the queue bound) for it to free up. This is
    /// how a GPU-resident DAG stage lands on the context holding its
    /// predecessor's output buffer.
    pub pin_server: Option<u32>,
}

impl InvokeOptions {
    /// A fault-free single attempt under `opts` — the common case.
    pub fn new(opts: OptConfig) -> InvokeOptions {
        InvokeOptions {
            opts,
            attempt: 1,
            max_queue_age: None,
            trace: None,
            pin_server: None,
        }
    }

    /// Builder-style: label this as attempt `n` (1-based).
    pub fn with_attempt(mut self, n: u32) -> Self {
        self.attempt = n.max(1);
        self
    }

    /// Builder-style: bound the queue wait (expiry ⇒ shed as overload).
    pub fn with_max_queue_age(mut self, d: Option<Dur>) -> Self {
        self.max_queue_age = d;
        self
    }

    /// Builder-style: thread a caller-owned trace context.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Builder-style: pin the attempt to one API server.
    pub fn with_pin_server(mut self, server: u32) -> Self {
        self.pin_server = Some(server);
        self
    }
}

/// The single DGSF invocation entry point: download, request a virtual GPU
/// (FCFS queueing included), then remote every CUDA call to the assigned
/// API server. One [`Invoker::invoke`] call is one attempt — retry policy
/// lives in [`crate::Backend::invoke`], DAG stage sequencing in
/// [`Invoker::invoke_dag`].
pub struct Invoker<'a> {
    server: &'a GpuServer,
    store: &'a ObjectStore,
}

impl<'a> Invoker<'a> {
    /// An invoker against one GPU server and object store.
    pub fn new(server: &'a GpuServer, store: &'a ObjectStore) -> Invoker<'a> {
        Invoker { server, store }
    }

    /// Run `w` over DGSF under `options`. With no caller-owned trace
    /// ([`InvokeOptions::trace`] = `None`) this also records the top-level
    /// request span, making it a complete single-shot invocation.
    pub fn invoke(
        &self,
        p: &ProcCtx,
        w: &dyn Workload,
        options: InvokeOptions,
    ) -> Result<FunctionResult, InvokeFailure> {
        let attempt = options.attempt.max(1);
        match options.trace.clone() {
            Some(trace) => self.attempt(p, w, &options, trace),
            None => {
                let trace =
                    TraceCtx::new(p.telemetry().next_trace_id(), w.tenant()).with_attempt(attempt);
                let out = self.attempt(p, w, &options, trace.clone());
                match &out {
                    Ok(r) => record_request_span(
                        p,
                        &trace,
                        w.name(),
                        r.launched_at,
                        r.finished_at,
                        "completed",
                        attempt,
                    ),
                    Err(f) => {
                        let outcome = if f.class == FailureClass::Overloaded {
                            "shed"
                        } else {
                            "failed"
                        };
                        record_request_span(
                            p,
                            &trace,
                            w.name(),
                            f.launched_at,
                            f.failed_at,
                            outcome,
                            attempt,
                        );
                    }
                }
                out
            }
        }
    }

    /// Run a function DAG stage by stage, each stage a separate platform
    /// invocation under `options` (its `trace`, `attempt` and `pin_server`
    /// are managed per stage; the rest applies to every stage).
    ///
    /// In [`HandoffMode::GpuResident`] each stage publishes its output
    /// into the serving context's resident store and the successor is
    /// **pinned** to that API server — the only server whose context holds
    /// the buffer — where it adopts it without any data crossing the link.
    /// In [`HandoffMode::HostBounce`] stages are placed freely and the
    /// intermediate bytes bounce through the invoker.
    ///
    /// Failures retry the *whole* DAG (fresh handoff keys per attempt) up
    /// to `max_attempts` times for transient errors; overload shedding and
    /// permanent errors are terminal, as in [`crate::Backend`]'s policy.
    /// On any abort the attempt's published-but-unadopted buffers are
    /// reclaimed fleet-wide, so a failed DAG never leaks GPU memory.
    pub fn invoke_dag(
        &self,
        p: &ProcCtx,
        dag: &DagWorkload,
        options: InvokeOptions,
        max_attempts: u32,
    ) -> DagResult {
        assert!(!dag.is_empty(), "invoke_dag on an empty DAG");
        let n = dag.len();
        let resident = dag.mode == HandoffMode::GpuResident;
        let launched_at = p.now();
        let trace = match &options.trace {
            Some(t) => t.clone(),
            None => TraceCtx::new(p.telemetry().next_trace_id(), &dag.tenant),
        };
        let max_attempts = max_attempts.max(1);

        let mut terminal: Option<(String, bool)> = None; // (failure, shed)
        let mut stages: Vec<FunctionResult> = Vec::new();
        let mut attempts_taken = 0;
        'dag: for attempt in 1..=max_attempts {
            attempts_taken = attempt;
            stages = Vec::with_capacity(n);
            let mut pin: Option<u32> = None;
            for idx in 0..n {
                let in_key = (resident && idx > 0).then(|| edge_key(trace.id, attempt, idx - 1));
                let out_key = (resident && idx + 1 < n).then(|| edge_key(trace.id, attempt, idx));
                let stage = StageRun::new(dag, idx, in_key, out_key);
                let mut o = options
                    .clone()
                    .with_attempt(attempt)
                    .with_trace(trace.clone().with_attempt(attempt));
                o.pin_server = if resident { pin } else { None };
                match self.invoke(p, &stage, o) {
                    Ok(r) => {
                        pin = r.server;
                        stages.push(r);
                    }
                    Err(f) => {
                        // This attempt's parked intermediates will never be
                        // adopted now — free them wherever they sit.
                        if resident {
                            for e in 0..n.saturating_sub(1) {
                                self.server.reclaim_resident(edge_key(trace.id, attempt, e));
                            }
                        }
                        match f.class {
                            FailureClass::Transient if attempt < max_attempts => continue 'dag,
                            FailureClass::Overloaded => {
                                terminal = Some((f.error.to_string(), true));
                                break 'dag;
                            }
                            _ => {
                                terminal = Some((f.error.to_string(), false));
                                break 'dag;
                            }
                        }
                    }
                }
            }
            terminal = None;
            break 'dag;
        }

        let (failure, shed) = match terminal {
            Some((e, shed)) => (Some(e), shed),
            None => (None, false),
        };
        let outcome = if failure.is_none() {
            "completed"
        } else if shed {
            "shed"
        } else {
            "failed"
        };
        record_request_span(
            p,
            &trace,
            &dag.name,
            launched_at,
            p.now(),
            outcome,
            attempts_taken,
        );
        DagResult {
            name: dag.name.clone(),
            tenant: dag.tenant.clone(),
            mode: dag.mode.as_str().to_string(),
            stages,
            launched_at,
            finished_at: p.now(),
            attempts: attempts_taken,
            failure,
            shed,
            trace: trace.id,
        }
    }

    /// One attempt: download, acquire (bounded, possibly pinned), drive
    /// the workload over the remoted API, settle the invocation record.
    fn attempt(
        &self,
        p: &ProcCtx,
        w: &dyn Workload,
        options: &InvokeOptions,
        trace: TraceCtx,
    ) -> Result<FunctionResult, InvokeFailure> {
        let server = self.server;
        let attempt = options.attempt.max(1);
        let launched_at = p.now();
        let mut rec = PhaseRecorder::new();
        rec.set_trace(Some(trace.clone()));

        rec.enter(p, phase::DOWNLOAD);
        self.store.download(p, w.download_bytes());

        rec.enter(p, phase::QUEUE);
        let cfg_timeout = server.config().queue_timeout;
        let (timeout, age_binds) = match (cfg_timeout, options.max_queue_age) {
            (None, None) => (None, false),
            (Some(t), None) => (Some(t), false),
            (None, Some(a)) => (Some(a), true),
            (Some(t), Some(a)) => (Some(t.min(a)), a <= t),
        };
        let acquired = server.try_request_gpu_with_timeout(
            p,
            w.name(),
            w.required_gpu_mem(),
            w.registry(),
            attempt,
            timeout,
            Some(trace.clone()),
            options.pin_server,
        );
        let (client, invocation) = match acquired {
            Ok(x) => x,
            Err(e) => {
                rec.close(p);
                let tel = p.telemetry();
                if tel.is_enabled() {
                    let mut args = trace.span_args().to_vec();
                    args.push(("outcome", "acquire_error".to_string()));
                    tel.span_args(
                        p.name(),
                        &format!("invoke:{}:a{attempt}", w.name()),
                        "invocation",
                        launched_at,
                        p.now(),
                        &args,
                    );
                }
                let error = CudaError::Transport(e.to_string());
                let timed_out = matches!(e, dgsf_server::AcquireError::Timeout { .. });
                let class = if timed_out && age_binds {
                    FailureClass::Overloaded
                } else if error.is_transient() {
                    FailureClass::Transient
                } else {
                    FailureClass::Permanent
                };
                return Err(InvokeFailure {
                    error,
                    class,
                    invocation: None,
                    phases: Box::new(rec),
                    launched_at,
                    failed_at: p.now(),
                });
            }
        };
        let mut api = RemoteCuda::new(client, options.opts);
        let outcome = drive(p, &mut api, w, &mut rec);
        rec.close(p);
        let tel = p.telemetry();
        if tel.is_enabled() {
            tel.span_args(
                p.name(),
                &format!("invoke:{}:a{attempt}", w.name()),
                "invocation",
                launched_at,
                p.now(),
                &trace.span_args(),
            );
        }
        match outcome {
            Ok(()) => Ok(FunctionResult {
                name: w.name().to_string(),
                tenant: w.tenant().to_string(),
                mode: "dgsf".into(),
                launched_at,
                finished_at: p.now(),
                phases: rec,
                api_stats: api.stats(),
                invocation: Some(invocation),
                attempts: attempt,
                failure: None,
                shed: false,
                trace: Some(trace.id),
                server: server.invocation_server(invocation),
            }),
            Err(error) => {
                server.mark_invocation_failed(p.now(), invocation);
                let class = if error.is_transient() {
                    FailureClass::Transient
                } else {
                    FailureClass::Permanent
                };
                Err(InvokeFailure {
                    error,
                    class,
                    invocation: Some(invocation),
                    phases: Box::new(rec),
                    launched_at,
                    failed_at: p.now(),
                })
            }
        }
    }
}

/// Outcome of one DAG execution: the per-stage results of the attempt that
/// ran furthest, plus DAG-level accounting.
#[derive(Debug, Clone)]
pub struct DagResult {
    /// DAG name.
    pub name: String,
    /// Tenant that deployed the DAG.
    pub tenant: String,
    /// Handoff mode label ("host_bounce" / "gpu_resident").
    pub mode: String,
    /// Per-stage results of the last (furthest) attempt, in stage order.
    /// Shorter than the stage count when the DAG failed mid-pipeline.
    pub stages: Vec<FunctionResult>,
    /// When the DAG began (first stage's download start).
    pub launched_at: SimTime,
    /// When it finished (last stage completion or terminal failure).
    pub finished_at: SimTime,
    /// Whole-DAG attempts taken (1 on the fault-free path).
    pub attempts: u32,
    /// Why the DAG ultimately failed, if it did — `None` on success.
    pub failure: Option<String>,
    /// True when the terminal failure was overload shedding.
    pub shed: bool,
    /// Causal trace id shared by every stage invocation of this DAG.
    pub trace: u64,
}

impl DagResult {
    /// End-to-end time of the DAG, spanning every stage and retry.
    pub fn e2e(&self) -> Dur {
        self.finished_at.since(self.launched_at)
    }

    /// True when every stage completed (possibly after whole-DAG retries).
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }
}

/// Record the top-level `req:{workload}` span that roots a causal trace:
/// one per request, spanning every attempt, carrying the trace id, tenant,
/// terminal outcome and attempt count as span arguments.
pub(crate) fn record_request_span(
    p: &ProcCtx,
    trace: &TraceCtx,
    workload: &str,
    start: SimTime,
    end: SimTime,
    outcome: &str,
    attempts: u32,
) {
    let tel = p.telemetry();
    if tel.is_enabled() {
        tel.span_args(
            p.name(),
            &format!("req:{workload}"),
            "request",
            start,
            end,
            &[
                ("inv", trace.id.to_string()),
                ("tenant", trace.tenant.to_string()),
                ("outcome", outcome.to_string()),
                ("attempts", attempts.to_string()),
            ],
        );
    }
}

/// The INIT → run → teardown sequence against an acquired remote GPU.
fn drive(
    p: &ProcCtx,
    api: &mut RemoteCuda,
    w: &dyn Workload,
    rec: &mut PhaseRecorder,
) -> CudaResult<()> {
    rec.enter(p, phase::INIT);
    api.runtime_init(p)?;
    api.register_module(p, w.registry())?;
    rec.close(p);
    w.run(p, api, rec)?;
    api.finish(p)
}

/// Run `w` natively: a dedicated machine with a local GPU, paying CUDA
/// initialization on the critical path.
pub fn invoke_native(
    p: &ProcCtx,
    h: &SimHandle,
    store: &ObjectStore,
    w: &dyn Workload,
    costs: Arc<CostTable>,
) -> FunctionResult {
    let launched_at = p.now();
    let mut rec = PhaseRecorder::new();

    rec.enter(p, phase::DOWNLOAD);
    store.download(p, w.download_bytes());

    // A fresh local GPU: the native baseline runs on its own machine.
    let gpu = Gpu::v100(h, GpuId(0));
    let mut api = NativeCuda::new(h, gpu, costs);

    rec.enter(p, phase::INIT);
    api.runtime_init(p)
        .expect("workload runs on a dedicated local GPU");
    api.register_module(p, w.registry())
        .expect("workload runs on a dedicated local GPU");
    rec.close(p);

    w.run(p, &mut api, &mut rec)
        .expect("workload runs on a dedicated local GPU");
    rec.close(p);

    let tel = p.telemetry();
    if tel.is_enabled() {
        tel.span(
            p.name(),
            &format!("invoke:{}:native", w.name()),
            "invocation",
            launched_at,
            p.now(),
        );
    }
    FunctionResult {
        name: w.name().to_string(),
        tenant: w.tenant().to_string(),
        mode: "native".into(),
        launched_at,
        finished_at: p.now(),
        phases: rec,
        api_stats: api.stats(),
        invocation: None,
        attempts: 1,
        failure: None,
        shed: false,
        trace: None,
        server: None,
    }
}

/// Run `w` on CPUs (6 threads, the AWS Lambda per-function core cap) using
/// the workload's calibrated CPU cost model.
pub fn invoke_cpu(p: &ProcCtx, store: &ObjectStore, w: &dyn Workload) -> FunctionResult {
    let launched_at = p.now();
    let mut rec = PhaseRecorder::new();
    rec.enter(p, phase::DOWNLOAD);
    store.download(p, w.download_bytes());
    rec.enter(p, phase::PROCESSING);
    p.sleep(Dur::from_secs_f64(w.cpu_secs()));
    rec.close(p);
    FunctionResult {
        name: w.name().to_string(),
        tenant: w.tenant().to_string(),
        mode: "cpu".into(),
        launched_at,
        finished_at: p.now(),
        phases: rec,
        api_stats: dgsf_cuda::ApiStats::default(),
        invocation: None,
        attempts: 1,
        failure: None,
        shed: false,
        trace: None,
        server: None,
    }
}
