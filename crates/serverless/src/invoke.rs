//! Invocation paths: the same workload trace executed natively, over DGSF,
//! or on CPUs — the three columns of Table II.
//!
//! The DGSF path is fallible: over a faulted link any remoted call can time
//! out or come back with a transport error, and GPU acquisition itself can
//! time out in the monitor's queue. [`invoke_dgsf_attempt`] surfaces those
//! as [`InvokeFailure`] so [`crate::Backend::invoke`] can retry the whole
//! function (possibly on another GPU server); the native and CPU baselines
//! run on dedicated fault-free hardware and stay infallible.

use std::sync::Arc;

use dgsf_cuda::{CostTable, CudaApi, CudaError, CudaResult, NativeCuda};
use dgsf_gpu::{Gpu, GpuId};
use dgsf_remoting::{OptConfig, RemoteCuda};
use dgsf_server::GpuServer;
use dgsf_sim::{Dur, ProcCtx, SimHandle, SimTime, TraceCtx};

use crate::phases::{phase, PhaseRecorder};
use crate::store::ObjectStore;
use crate::workload::Workload;

/// How the backend should react to a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Transport-class blip: worth retrying, preferably elsewhere.
    Transient,
    /// The platform refused or shed the work under load. Retrying would
    /// only add load to an already saturated system, so this class is
    /// *never* retried.
    Overloaded,
    /// Anything else (programming errors, device OOM, …): retrying the
    /// same function would fail the same way.
    Permanent,
}

/// Outcome of one function execution.
#[derive(Debug, Clone)]
pub struct FunctionResult {
    /// Workload name.
    pub name: String,
    /// Tenant that deployed the workload (see [`crate::Workload::tenant`]).
    pub tenant: String,
    /// Execution mode label ("native" / "dgsf" / "cpu").
    pub mode: String,
    /// When the (warm) function began executing.
    pub launched_at: SimTime,
    /// When it finished.
    pub finished_at: SimTime,
    /// Per-phase breakdown.
    pub phases: PhaseRecorder,
    /// Guest-side API statistics (empty for CPU runs).
    pub api_stats: dgsf_cuda::ApiStats,
    /// GPU-server invocation id, when one was involved (the last attempt's,
    /// for retried functions).
    pub invocation: Option<u64>,
    /// How many platform attempts the function took (1 on the fault-free
    /// path; 0 when admission control shed it before any attempt).
    pub attempts: u32,
    /// Why the function ultimately failed, if it did — `None` on success.
    pub failure: Option<String>,
    /// True when the invocation was refused by admission control or shed
    /// under overload (the [`FailureClass::Overloaded`] path) rather than
    /// failing while executing.
    pub shed: bool,
    /// Platform-unique causal trace id for this request, when the run was
    /// traced end-to-end (DGSF path). `None` for native/CPU baselines.
    pub trace: Option<u64>,
}

impl FunctionResult {
    /// End-to-end time of the function (from warm start to completion,
    /// spanning every retry attempt).
    pub fn e2e(&self) -> Dur {
        self.finished_at.since(self.launched_at)
    }

    /// True when the function completed (possibly after retries).
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }
}

/// One failed DGSF attempt, with enough context to retry or report.
#[derive(Debug, Clone)]
pub struct InvokeFailure {
    /// What went wrong.
    pub error: CudaError,
    /// How the retry layer should treat it.
    pub class: FailureClass,
    /// The GPU-server invocation involved, if acquisition got that far.
    pub invocation: Option<u64>,
    /// Phases recorded up to the failure point (boxed to keep the
    /// `Err`-variant small — `clippy::result_large_err`).
    pub phases: Box<PhaseRecorder>,
    /// When the attempt started.
    pub launched_at: SimTime,
    /// When it failed.
    pub failed_at: SimTime,
}

impl std::fmt::Display for InvokeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invocation attempt failed: {}", self.error)
    }
}

/// Run `w` over DGSF: download, request a virtual GPU (FCFS queueing
/// included), then remote every CUDA call to the assigned API server.
/// Single attempt — retry policy lives in [`crate::Backend::invoke`].
pub fn invoke_dgsf(
    p: &ProcCtx,
    server: &GpuServer,
    store: &ObjectStore,
    w: &dyn Workload,
    opts: OptConfig,
) -> Result<FunctionResult, InvokeFailure> {
    let trace = TraceCtx::new(p.telemetry().next_trace_id(), w.tenant()).with_attempt(1);
    let out = invoke_dgsf_bounded(p, server, store, w, opts, 1, None, trace.clone());
    match &out {
        Ok(r) => record_request_span(
            p,
            &trace,
            w.name(),
            r.launched_at,
            r.finished_at,
            "completed",
            1,
        ),
        Err(f) => {
            let outcome = if f.class == FailureClass::Overloaded {
                "shed"
            } else {
                "failed"
            };
            record_request_span(p, &trace, w.name(), f.launched_at, f.failed_at, outcome, 1);
        }
    }
    out
}

/// Record the top-level `req:{workload}` span that roots a causal trace:
/// one per request, spanning every attempt, carrying the trace id, tenant,
/// terminal outcome and attempt count as span arguments.
pub(crate) fn record_request_span(
    p: &ProcCtx,
    trace: &TraceCtx,
    workload: &str,
    start: SimTime,
    end: SimTime,
    outcome: &str,
    attempts: u32,
) {
    let tel = p.telemetry();
    if tel.is_enabled() {
        tel.span_args(
            p.name(),
            &format!("req:{workload}"),
            "request",
            start,
            end,
            &[
                ("inv", trace.id.to_string()),
                ("tenant", trace.tenant.to_string()),
                ("outcome", outcome.to_string()),
                ("attempts", attempts.to_string()),
            ],
        );
    }
}

/// The INIT → run → teardown sequence against an acquired remote GPU.
fn drive(
    p: &ProcCtx,
    api: &mut RemoteCuda,
    w: &dyn Workload,
    rec: &mut PhaseRecorder,
) -> CudaResult<()> {
    rec.enter(p, phase::INIT);
    api.runtime_init(p)?;
    api.register_module(p, w.registry())?;
    rec.close(p);
    w.run(p, api, rec)?;
    api.finish(p)
}

/// One DGSF attempt, labelled `attempt` (1-based) in the server's
/// invocation records. On failure the invocation (if one was acquired) is
/// marked failed on the server so capacity accounting stays truthful.
pub fn invoke_dgsf_attempt(
    p: &ProcCtx,
    server: &GpuServer,
    store: &ObjectStore,
    w: &dyn Workload,
    opts: OptConfig,
    attempt: u32,
) -> Result<FunctionResult, InvokeFailure> {
    let trace = TraceCtx::new(p.telemetry().next_trace_id(), w.tenant()).with_attempt(attempt);
    invoke_dgsf_bounded(p, server, store, w, opts, attempt, None, trace)
}

/// Like [`invoke_dgsf_attempt`], with an additional bound on how long the
/// attempt may wait in the GPU server's queue. When `max_queue_age` is the
/// binding constraint and expires, the failure is classed
/// [`FailureClass::Overloaded`] — the platform is saturated and the work is
/// shed rather than retried. The server's own `queue_timeout` (operator
/// patience, not overload) stays [`FailureClass::Transient`].
#[allow(clippy::too_many_arguments)]
pub fn invoke_dgsf_bounded(
    p: &ProcCtx,
    server: &GpuServer,
    store: &ObjectStore,
    w: &dyn Workload,
    opts: OptConfig,
    attempt: u32,
    max_queue_age: Option<Dur>,
    trace: TraceCtx,
) -> Result<FunctionResult, InvokeFailure> {
    let launched_at = p.now();
    let mut rec = PhaseRecorder::new();
    rec.set_trace(Some(trace.clone()));

    rec.enter(p, phase::DOWNLOAD);
    store.download(p, w.download_bytes());

    rec.enter(p, phase::QUEUE);
    let cfg_timeout = server.config().queue_timeout;
    let (timeout, age_binds) = match (cfg_timeout, max_queue_age) {
        (None, None) => (None, false),
        (Some(t), None) => (Some(t), false),
        (None, Some(a)) => (Some(a), true),
        (Some(t), Some(a)) => (Some(t.min(a)), a <= t),
    };
    let acquired = server.try_request_gpu_with_timeout(
        p,
        w.name(),
        w.required_gpu_mem(),
        w.registry(),
        attempt,
        timeout,
        Some(trace.clone()),
    );
    let (client, invocation) = match acquired {
        Ok(x) => x,
        Err(e) => {
            rec.close(p);
            let tel = p.telemetry();
            if tel.is_enabled() {
                let mut args = trace.span_args().to_vec();
                args.push(("outcome", "acquire_error".to_string()));
                tel.span_args(
                    p.name(),
                    &format!("invoke:{}:a{attempt}", w.name()),
                    "invocation",
                    launched_at,
                    p.now(),
                    &args,
                );
            }
            let error = CudaError::Transport(e.to_string());
            let timed_out = matches!(e, dgsf_server::AcquireError::Timeout { .. });
            let class = if timed_out && age_binds {
                FailureClass::Overloaded
            } else if error.is_transient() {
                FailureClass::Transient
            } else {
                FailureClass::Permanent
            };
            return Err(InvokeFailure {
                error,
                class,
                invocation: None,
                phases: Box::new(rec),
                launched_at,
                failed_at: p.now(),
            });
        }
    };
    let mut api = RemoteCuda::new(client, opts);
    let outcome = drive(p, &mut api, w, &mut rec);
    rec.close(p);
    let tel = p.telemetry();
    if tel.is_enabled() {
        tel.span_args(
            p.name(),
            &format!("invoke:{}:a{attempt}", w.name()),
            "invocation",
            launched_at,
            p.now(),
            &trace.span_args(),
        );
    }
    match outcome {
        Ok(()) => Ok(FunctionResult {
            name: w.name().to_string(),
            tenant: w.tenant().to_string(),
            mode: "dgsf".into(),
            launched_at,
            finished_at: p.now(),
            phases: rec,
            api_stats: api.stats(),
            invocation: Some(invocation),
            attempts: attempt,
            failure: None,
            shed: false,
            trace: Some(trace.id),
        }),
        Err(error) => {
            server.mark_invocation_failed(p.now(), invocation);
            let class = if error.is_transient() {
                FailureClass::Transient
            } else {
                FailureClass::Permanent
            };
            Err(InvokeFailure {
                error,
                class,
                invocation: Some(invocation),
                phases: Box::new(rec),
                launched_at,
                failed_at: p.now(),
            })
        }
    }
}

/// Run `w` natively: a dedicated machine with a local GPU, paying CUDA
/// initialization on the critical path.
pub fn invoke_native(
    p: &ProcCtx,
    h: &SimHandle,
    store: &ObjectStore,
    w: &dyn Workload,
    costs: Arc<CostTable>,
) -> FunctionResult {
    let launched_at = p.now();
    let mut rec = PhaseRecorder::new();

    rec.enter(p, phase::DOWNLOAD);
    store.download(p, w.download_bytes());

    // A fresh local GPU: the native baseline runs on its own machine.
    let gpu = Gpu::v100(h, GpuId(0));
    let mut api = NativeCuda::new(h, gpu, costs);

    rec.enter(p, phase::INIT);
    api.runtime_init(p)
        .expect("workload runs on a dedicated local GPU");
    api.register_module(p, w.registry())
        .expect("workload runs on a dedicated local GPU");
    rec.close(p);

    w.run(p, &mut api, &mut rec)
        .expect("workload runs on a dedicated local GPU");
    rec.close(p);

    let tel = p.telemetry();
    if tel.is_enabled() {
        tel.span(
            p.name(),
            &format!("invoke:{}:native", w.name()),
            "invocation",
            launched_at,
            p.now(),
        );
    }
    FunctionResult {
        name: w.name().to_string(),
        tenant: w.tenant().to_string(),
        mode: "native".into(),
        launched_at,
        finished_at: p.now(),
        phases: rec,
        api_stats: api.stats(),
        invocation: None,
        attempts: 1,
        failure: None,
        shed: false,
        trace: None,
    }
}

/// Run `w` on CPUs (6 threads, the AWS Lambda per-function core cap) using
/// the workload's calibrated CPU cost model.
pub fn invoke_cpu(p: &ProcCtx, store: &ObjectStore, w: &dyn Workload) -> FunctionResult {
    let launched_at = p.now();
    let mut rec = PhaseRecorder::new();
    rec.enter(p, phase::DOWNLOAD);
    store.download(p, w.download_bytes());
    rec.enter(p, phase::PROCESSING);
    p.sleep(Dur::from_secs_f64(w.cpu_secs()));
    rec.close(p);
    FunctionResult {
        name: w.name().to_string(),
        tenant: w.tenant().to_string(),
        mode: "cpu".into(),
        launched_at,
        finished_at: p.now(),
        phases: rec,
        api_stats: dgsf_cuda::ApiStats::default(),
        invocation: None,
        attempts: 1,
        failure: None,
        shed: false,
        trace: None,
    }
}
