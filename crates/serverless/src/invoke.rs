//! Invocation paths: the same workload trace executed natively, over DGSF,
//! or on CPUs — the three columns of Table II.

use std::sync::Arc;

use dgsf_cuda::{CostTable, CudaApi, NativeCuda};
use dgsf_gpu::{Gpu, GpuId};
use dgsf_remoting::{OptConfig, RemoteCuda};
use dgsf_server::GpuServer;
use dgsf_sim::{Dur, ProcCtx, SimHandle, SimTime};

use crate::phases::{phase, PhaseRecorder};
use crate::store::ObjectStore;
use crate::workload::Workload;

/// Outcome of one function execution.
#[derive(Debug, Clone)]
pub struct FunctionResult {
    /// Workload name.
    pub name: String,
    /// Execution mode label ("native" / "dgsf" / "cpu").
    pub mode: String,
    /// When the (warm) function began executing.
    pub launched_at: SimTime,
    /// When it finished.
    pub finished_at: SimTime,
    /// Per-phase breakdown.
    pub phases: PhaseRecorder,
    /// Guest-side API statistics (empty for CPU runs).
    pub api_stats: dgsf_cuda::ApiStats,
    /// GPU-server invocation id, when one was involved.
    pub invocation: Option<u64>,
}

impl FunctionResult {
    /// End-to-end time of the function (from warm start to completion).
    pub fn e2e(&self) -> Dur {
        self.finished_at.since(self.launched_at)
    }
}

/// Run `w` over DGSF: download, request a virtual GPU (FCFS queueing
/// included), then remote every CUDA call to the assigned API server.
pub fn invoke_dgsf(
    p: &ProcCtx,
    server: &GpuServer,
    store: &ObjectStore,
    w: &dyn Workload,
    opts: OptConfig,
) -> FunctionResult {
    let launched_at = p.now();
    let mut rec = PhaseRecorder::new();

    rec.enter(p, phase::DOWNLOAD);
    store.download(p, w.download_bytes());

    rec.enter(p, phase::QUEUE);
    let (client, invocation) = server.request_gpu(p, w.name(), w.required_gpu_mem(), w.registry());
    let mut api = RemoteCuda::new(client, opts);

    rec.enter(p, phase::INIT);
    api.runtime_init(p).expect("init");
    api.register_module(p, w.registry()).expect("module");
    rec.close(p);

    w.run(p, &mut api, &mut rec);
    api.finish(p).expect("clean teardown");
    rec.close(p);

    FunctionResult {
        name: w.name().to_string(),
        mode: "dgsf".into(),
        launched_at,
        finished_at: p.now(),
        phases: rec,
        api_stats: api.stats(),
        invocation: Some(invocation),
    }
}

/// Run `w` natively: a dedicated machine with a local GPU, paying CUDA
/// initialization on the critical path.
pub fn invoke_native(
    p: &ProcCtx,
    h: &SimHandle,
    store: &ObjectStore,
    w: &dyn Workload,
    costs: Arc<CostTable>,
) -> FunctionResult {
    let launched_at = p.now();
    let mut rec = PhaseRecorder::new();

    rec.enter(p, phase::DOWNLOAD);
    store.download(p, w.download_bytes());

    // A fresh local GPU: the native baseline runs on its own machine.
    let gpu = Gpu::v100(h, GpuId(0));
    let mut api = NativeCuda::new(h, gpu, costs);

    rec.enter(p, phase::INIT);
    api.runtime_init(p).expect("init");
    api.register_module(p, w.registry()).expect("module");
    rec.close(p);

    w.run(p, &mut api, &mut rec);
    rec.close(p);

    FunctionResult {
        name: w.name().to_string(),
        mode: "native".into(),
        launched_at,
        finished_at: p.now(),
        phases: rec,
        api_stats: api.stats(),
        invocation: None,
    }
}

/// Run `w` on CPUs (6 threads, the AWS Lambda per-function core cap) using
/// the workload's calibrated CPU cost model.
pub fn invoke_cpu(p: &ProcCtx, store: &ObjectStore, w: &dyn Workload) -> FunctionResult {
    let launched_at = p.now();
    let mut rec = PhaseRecorder::new();
    rec.enter(p, phase::DOWNLOAD);
    store.download(p, w.download_bytes());
    rec.enter(p, phase::PROCESSING);
    p.sleep(Dur::from_secs_f64(w.cpu_secs()));
    rec.close(p);
    FunctionResult {
        name: w.name().to_string(),
        mode: "cpu".into(),
        launched_at,
        finished_at: p.now(),
        phases: rec,
        api_stats: dgsf_cuda::ApiStats::default(),
        invocation: None,
    }
}
