//! Function DAGs with GPU-resident inter-stage handoff.
//!
//! A [`DagWorkload`] is a linear pipeline of GPU stages (the canonical
//! serverless vision pipeline: preprocess → infer → postprocess) whose
//! inter-stage data can travel two ways:
//!
//! * **Host bounce** ([`HandoffMode::HostBounce`]) — the baseline every
//!   serverless platform implements today: each stage downloads its output
//!   to the invoker (`memcpy_d2h` across the remoting link) and the next
//!   stage re-uploads it (`memcpy_h2d`), paying the intermediate bytes
//!   twice over the NIC.
//! * **GPU resident** ([`HandoffMode::GpuResident`]) — the DGSF extension:
//!   a stage *publishes* its output buffer into the serving context's
//!   resident store (`publish_buffer`, a 17-byte control RPC) and exits;
//!   the successor stage, pinned by [`crate::Invoker::invoke_dag`] to the
//!   API server owning that context, *adopts* it (`adopt_buffer`) and the
//!   intermediate bytes never leave the GPU.
//!
//! Stage bodies are trace-modeled (logical payloads, timed kernels), so
//! both arms issue identical compute and differ only in data movement —
//! exactly the comparison the `pipeline` experiment measures.

use std::sync::Arc;

use dgsf_cuda::{
    CudaApi, CudaResult, HostBuf, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry,
};
use dgsf_gpu::VA_GRANULARITY;
use dgsf_sim::ProcCtx;

use crate::phases::{phase, PhaseRecorder};
use crate::workload::Workload;

/// How intermediate buffers travel between DAG stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffMode {
    /// Bounce through the invoker's host memory: `memcpy_d2h` out of the
    /// producing stage, `memcpy_h2d` into the consuming one.
    HostBounce,
    /// Park on the GPU between stages via the context resident store:
    /// `publish_buffer` / `adopt_buffer` control RPCs, zero data movement.
    GpuResident,
}

impl HandoffMode {
    /// Stable label used in reports and span names.
    pub const fn as_str(self) -> &'static str {
        match self {
            HandoffMode::HostBounce => "host_bounce",
            HandoffMode::GpuResident => "gpu_resident",
        }
    }
}

/// One stage of a [`DagWorkload`].
#[derive(Debug, Clone)]
pub struct DagStage {
    /// Stage name (e.g. "preprocess").
    pub name: String,
    /// GPU-seconds of device work the stage retires.
    pub gpu_secs: f64,
    /// Bytes the stage produces for its successor (or, for the last
    /// stage, returns to the invoker).
    pub output_bytes: u64,
}

/// A linear pipeline of GPU stages executed as separate serverless
/// functions, with configurable inter-stage handoff.
#[derive(Debug, Clone)]
pub struct DagWorkload {
    /// DAG name (stages are labelled `{name}/{stage}`).
    pub name: String,
    /// Tenant that deployed the DAG.
    pub tenant: String,
    /// Inter-stage handoff mode.
    pub mode: HandoffMode,
    /// Bytes the first stage uploads from the host (the raw input).
    pub input_bytes: u64,
    /// Object-store bytes the first stage downloads (models + input).
    pub download: u64,
    /// Stages, in execution order. Must be non-empty.
    pub stages: Vec<DagStage>,
}

impl DagWorkload {
    /// The canonical three-stage inference pipeline of the paper's
    /// serverless-vision motivation: preprocess → infer → postprocess.
    /// `inter_bytes` is the size of both intermediate tensors;
    /// `final_bytes` is the (small) result the last stage returns.
    pub fn pipeline3(
        name: &str,
        mode: HandoffMode,
        input_bytes: u64,
        inter_bytes: u64,
        final_bytes: u64,
        gpu_secs: [f64; 3],
    ) -> DagWorkload {
        DagWorkload {
            name: name.to_string(),
            tenant: "default".into(),
            mode,
            input_bytes,
            download: input_bytes,
            stages: vec![
                DagStage {
                    name: "preprocess".into(),
                    gpu_secs: gpu_secs[0],
                    output_bytes: inter_bytes,
                },
                DagStage {
                    name: "infer".into(),
                    gpu_secs: gpu_secs[1],
                    output_bytes: inter_bytes,
                },
                DagStage {
                    name: "postprocess".into(),
                    gpu_secs: gpu_secs[2],
                    output_bytes: final_bytes,
                },
            ],
        }
    }

    /// Builder-style: set the tenant label.
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_string();
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the DAG has no stages (never valid to invoke).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Bytes stage `idx` consumes: the raw input for the first stage, the
    /// predecessor's output for every later one.
    pub fn stage_input_bytes(&self, idx: usize) -> u64 {
        if idx == 0 {
            self.input_bytes
        } else {
            self.stages[idx - 1].output_bytes
        }
    }

    /// The kernel registry every stage ships.
    pub(crate) fn registry() -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("dag_stage")))
    }
}

/// One stage viewed as a standalone [`Workload`]: what
/// [`crate::Invoker::invoke_dag`] actually submits to the platform.
pub(crate) struct StageRun<'a> {
    dag: &'a DagWorkload,
    idx: usize,
    /// Resident-store key this stage adopts its input from (`None` for the
    /// first stage and in host-bounce mode).
    in_key: Option<u64>,
    /// Resident-store key this stage publishes its output under (`None`
    /// for the last stage and in host-bounce mode).
    out_key: Option<u64>,
    label: String,
    registry: Arc<ModuleRegistry>,
}

impl<'a> StageRun<'a> {
    pub(crate) fn new(
        dag: &'a DagWorkload,
        idx: usize,
        in_key: Option<u64>,
        out_key: Option<u64>,
    ) -> StageRun<'a> {
        StageRun {
            dag,
            idx,
            in_key,
            out_key,
            label: format!("{}/{}", dag.name, dag.stages[idx].name),
            registry: DagWorkload::registry(),
        }
    }
}

impl Workload for StageRun<'_> {
    fn name(&self) -> &str {
        &self.label
    }

    fn tenant(&self) -> &str {
        &self.dag.tenant
    }

    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::clone(&self.registry)
    }

    fn required_gpu_mem(&self) -> u64 {
        let round = |b: u64| b.max(1).div_ceil(VA_GRANULARITY) * VA_GRANULARITY;
        round(self.dag.stage_input_bytes(self.idx)) + round(self.dag.stages[self.idx].output_bytes)
    }

    fn download_bytes(&self) -> u64 {
        // Only the first stage touches the object store; intermediate data
        // travels over the handoff path under measurement.
        if self.idx == 0 {
            self.dag.download
        } else {
            0
        }
    }

    fn run(&self, p: &ProcCtx, api: &mut dyn CudaApi, rec: &mut PhaseRecorder) -> CudaResult<()> {
        let stage = &self.dag.stages[self.idx];
        let in_bytes = self.dag.stage_input_bytes(self.idx);

        // ---- acquire input ----
        rec.enter(p, phase::TRANSFER);
        let input = match self.in_key {
            // GPU-resident: adopt the predecessor's parked output — a
            // control RPC, no data crosses the link.
            Some(k) => api.adopt_buffer(p, k)?,
            // First stage or host bounce: upload from the host.
            None => {
                let b = api.malloc(p, in_bytes.max(1))?;
                if in_bytes > 0 {
                    api.memcpy_h2d(p, b, HostBuf::Logical(in_bytes))?;
                }
                b
            }
        };
        let output = api.malloc(p, stage.output_bytes.max(1))?;

        // ---- compute ----
        rec.enter(p, phase::PROCESSING);
        api.launch_kernel(
            p,
            "dag_stage",
            LaunchConfig::linear(1 << 20, 256),
            KernelArgs::timed(stage.gpu_secs, in_bytes),
        )?;
        api.device_synchronize(p)?;

        // ---- emit output ----
        rec.enter(p, phase::TRANSFER);
        api.free(p, input)?;
        match self.out_key {
            // GPU-resident: park the output for the successor.
            Some(k) => api.publish_buffer(p, k, output)?,
            // Last stage or host bounce: read it back to the host.
            None => {
                if stage.output_bytes > 0 {
                    api.memcpy_d2h(p, output, stage.output_bytes, false)?;
                }
                api.free(p, output)?;
            }
        }
        rec.close(p);
        Ok(())
    }

    fn cpu_secs(&self) -> f64 {
        // CPU baseline: the paper's ~20× GPU→CPU slowdown heuristic.
        self.dag.stages[self.idx].gpu_secs * 20.0
    }
}

/// Derive the resident-store key for the edge out of stage `edge` on DAG
/// attempt `attempt` of trace `trace_id`. Keys are single-use server-side,
/// so each whole-DAG retry must mint fresh ones — a completed-but-
/// unreported stage may have published under the previous attempt's key.
pub(crate) fn edge_key(trace_id: u64, attempt: u32, edge: usize) -> u64 {
    trace_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((attempt as u64) << 32) | edge as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline3_shape() {
        let d = DagWorkload::pipeline3(
            "vision",
            HandoffMode::GpuResident,
            8 * 1024 * 1024,
            64 * 1024 * 1024,
            4096,
            [0.01, 0.1, 0.01],
        );
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.stage_input_bytes(0), 8 * 1024 * 1024);
        assert_eq!(d.stage_input_bytes(1), 64 * 1024 * 1024);
        assert_eq!(d.stage_input_bytes(2), 64 * 1024 * 1024);
        assert_eq!(d.stages[2].output_bytes, 4096);
    }

    #[test]
    fn stage_views_declare_consistent_resources() {
        let d = DagWorkload::pipeline3(
            "vision",
            HandoffMode::HostBounce,
            1024,
            2048,
            512,
            [0.1, 0.2, 0.3],
        );
        let s0 = StageRun::new(&d, 0, None, None);
        let s1 = StageRun::new(&d, 1, None, None);
        assert_eq!(s0.name(), "vision/preprocess");
        assert_eq!(s1.name(), "vision/infer");
        assert_eq!(s0.download_bytes(), 1024);
        assert_eq!(s1.download_bytes(), 0, "only stage 0 hits the store");
        assert!(s0.required_gpu_mem() >= 2 * VA_GRANULARITY);
        assert!((s1.cpu_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn edge_keys_differ_by_attempt_and_edge() {
        let k = edge_key(42, 1, 0);
        assert_ne!(k, edge_key(42, 1, 1), "per-edge");
        assert_ne!(k, edge_key(42, 2, 0), "per-attempt");
        assert_ne!(k, edge_key(43, 1, 0), "per-trace");
        assert_eq!(k, edge_key(42, 1, 0), "deterministic");
    }
}
