//! # dgsf-serverless — the serverless platform substrate
//!
//! The paper deploys DGSF under OpenFaaS and AWS Lambda; this crate is the
//! equivalent substrate: a [`Workload`] abstraction (function bodies written
//! against the interposable CUDA API), per-phase accounting
//! ([`PhaseRecorder`]), an S3-like [`ObjectStore`], the three invocation
//! paths of Table II ([`invoke_native`], [`invoke_dgsf`], [`invoke_cpu`]),
//! and the arrival processes of the mixed-workload experiments
//! ([`Schedule`]).
//!
//! Cold-start management is out of scope exactly as in the paper (§IV):
//! every invocation assumes a warm execution context.

#![warn(missing_docs)]

mod arrivals;
mod backend;
pub mod cluster;
mod invoke;
mod phases;
mod store;
mod tenant;
mod workload;

pub use arrivals::{ArrivalPattern, Schedule};
pub use backend::{AdmissionConfig, Backend, RetryPolicy, ServerPolicy};
pub use cluster::{ClusterBalancer, StickyConfig};
pub use dgsf_server::{FleetPolicy, ShedPolicy};
pub use invoke::{
    invoke_cpu, invoke_dgsf, invoke_dgsf_attempt, invoke_dgsf_bounded, invoke_native, FailureClass,
    FunctionResult, InvokeFailure,
};
pub use phases::{phase, PhaseRecorder};
pub use store::ObjectStore;
pub use tenant::{FairRefusal, FairShedConfig, FairShedder, Tenanted};
pub use workload::Workload;
