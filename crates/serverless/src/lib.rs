//! # dgsf-serverless — the serverless platform substrate
//!
//! The paper deploys DGSF under OpenFaaS and AWS Lambda; this crate is the
//! equivalent substrate: a [`Workload`] abstraction (function bodies written
//! against the interposable CUDA API), per-phase accounting
//! ([`PhaseRecorder`]), an S3-like [`ObjectStore`], the three invocation
//! paths of Table II ([`invoke_native`], [`Invoker`] for DGSF,
//! [`invoke_cpu`]), function DAGs with GPU-resident inter-stage handoff
//! ([`DagWorkload`]), and the arrival processes of the mixed-workload
//! experiments ([`Schedule`]).
//!
//! Cold-start management is out of scope exactly as in the paper (§IV):
//! every invocation assumes a warm execution context.

#![warn(missing_docs)]

mod arrivals;
mod backend;
pub mod cluster;
mod dag;
mod invoke;
mod phases;
mod store;
mod tenant;
mod workload;

pub use arrivals::{ArrivalPattern, Schedule};
pub use backend::{AdmissionConfig, Backend, RetryPolicy};
pub use cluster::{ClusterBalancer, StickyConfig};
pub use dag::{DagStage, DagWorkload, HandoffMode};
pub use dgsf_server::{FleetPolicy, ShedPolicy};
pub use invoke::{
    invoke_cpu, invoke_native, DagResult, FailureClass, FunctionResult, InvokeFailure,
    InvokeOptions, Invoker,
};
pub use phases::{phase, Phase, PhaseRecorder};
pub use store::ObjectStore;
pub use tenant::{FairRefusal, FairShedConfig, FairShedder, Tenanted};
pub use workload::Workload;
