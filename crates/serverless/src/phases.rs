//! Phase accounting for function executions.
//!
//! Figures 3 and 4 of the paper break a function's run into phases (CUDA
//! initialization, download, model loading, processing/inference). Workloads
//! and invokers record phases into a [`PhaseRecorder`]; the experiment
//! harness reads them back by name.

use dgsf_sim::{Dur, ProcCtx, SimTime, TraceCtx};

/// A canonical execution phase. [`PhaseRecorder::enter`] takes this enum —
/// not a bare string — so a typo'd phase name is a compile error instead of
/// a silently split bucket. [`Phase::as_str`] returns the exact historical
/// wire/telemetry strings, so goldens and span names are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Downloading model + inputs from the object store.
    Download,
    /// CUDA runtime (and module) initialization.
    Init,
    /// Queueing at the GPU server waiting for an API server.
    Queue,
    /// Loading the model onto the GPU (weights + descriptors + handles).
    ModelLoad,
    /// Inference / main computation.
    Processing,
    /// Host↔GPU data movement over the remoting link (the pipelined data
    /// plane's bucket: uploads, downloads and inter-stage host bounces).
    Transfer,
}

impl Phase {
    /// The phase's canonical name — byte-identical to the historical `&str`
    /// constants, so existing goldens and telemetry spans are unmoved.
    pub const fn as_str(self) -> &'static str {
        match self {
            Phase::Download => "download",
            Phase::Init => "init",
            Phase::Queue => "queue",
            Phase::ModelLoad => "model_load",
            Phase::Processing => "processing",
            Phase::Transfer => "transfer",
        }
    }
}

impl AsRef<str> for Phase {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Canonical phase constants. These used to be bare `&str`s; they are now
/// [`Phase`] values, so `rec.enter(p, phase::PROCESSING)` keeps compiling
/// while gaining the enum's typo protection.
pub mod phase {
    use super::Phase;

    /// Downloading model + inputs from the object store.
    pub const DOWNLOAD: Phase = Phase::Download;
    /// CUDA runtime (and module) initialization.
    pub const INIT: Phase = Phase::Init;
    /// Queueing at the GPU server waiting for an API server.
    pub const QUEUE: Phase = Phase::Queue;
    /// Loading the model onto the GPU (weights + descriptors + handles).
    pub const MODEL_LOAD: Phase = Phase::ModelLoad;
    /// Inference / main computation.
    pub const PROCESSING: Phase = Phase::Processing;
    /// Host↔GPU data movement over the remoting link.
    pub const TRANSFER: Phase = Phase::Transfer;
}

/// Accumulates named phase durations for one function execution.
#[derive(Debug, Default, Clone)]
pub struct PhaseRecorder {
    phases: Vec<(String, Dur)>,
    open: Option<(Phase, SimTime)>,
    trace: Option<TraceCtx>,
}

impl PhaseRecorder {
    /// Fresh recorder.
    pub fn new() -> PhaseRecorder {
        PhaseRecorder::default()
    }

    /// Attach a causal trace context: phase spans closed from now on carry
    /// the invocation id and attempt, so trace assembly can tie them to
    /// their parent invocation.
    pub fn set_trace(&mut self, trace: Option<TraceCtx>) {
        self.trace = trace;
    }

    /// Begin a phase (closing any open one).
    pub fn enter(&mut self, p: &ProcCtx, phase: Phase) {
        self.close(p);
        self.open = Some((phase, p.now()));
    }

    /// Close the currently open phase, if any. With telemetry enabled the
    /// closed interval is also recorded as a span on the calling process's
    /// track, so traces show the same phase breakdown the harness reads
    /// back — on every invocation path (DGSF, native, CPU) uniformly.
    pub fn close(&mut self, p: &ProcCtx) {
        if let Some((phase, start)) = self.open.take() {
            let d = p.now().since(start);
            let name = phase.as_str();
            let tel = p.telemetry();
            if tel.is_enabled() {
                match &self.trace {
                    Some(t) => {
                        tel.span_args(p.name(), name, "phase", start, p.now(), &t.span_args())
                    }
                    None => tel.span(p.name(), name, "phase", start, p.now()),
                }
            }
            self.add(name, d);
        }
    }

    /// Add a duration to a named phase directly. Accepts a [`Phase`] or any
    /// ad-hoc string name (harness-internal buckets).
    pub fn add(&mut self, name: impl AsRef<str>, d: Dur) {
        let name = name.as_ref();
        if let Some(e) = self.phases.iter_mut().find(|(n, _)| n == name) {
            e.1 += d;
        } else {
            self.phases.push((name.to_string(), d));
        }
    }

    /// Duration of a named phase (zero if absent).
    pub fn get(&self, name: impl AsRef<str>) -> Dur {
        let name = name.as_ref();
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or(Dur::ZERO)
    }

    /// All phases in recording order.
    pub fn all(&self) -> &[(String, Dur)] {
        &self.phases
    }

    /// Sum of all recorded phases.
    pub fn total(&self) -> Dur {
        self.phases.iter().fold(Dur::ZERO, |acc, (_, d)| acc + *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Sim;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn phases_accumulate_by_name() {
        let mut sim = Sim::new(1);
        let out = Arc::new(Mutex::new(PhaseRecorder::new()));
        let o = out.clone();
        sim.spawn("f", move |p| {
            let mut rec = PhaseRecorder::new();
            rec.enter(p, phase::DOWNLOAD);
            p.sleep(Dur::from_secs(2));
            rec.enter(p, phase::PROCESSING);
            p.sleep(Dur::from_secs(3));
            rec.close(p);
            rec.add(phase::PROCESSING, Dur::from_secs(1));
            *o.lock() = rec;
        });
        sim.run();
        let rec = out.lock().clone();
        assert_eq!(rec.get(phase::DOWNLOAD), Dur::from_secs(2));
        assert_eq!(rec.get(phase::PROCESSING), Dur::from_secs(4));
        assert_eq!(rec.get("nonexistent"), Dur::ZERO);
        assert_eq!(rec.total(), Dur::from_secs(6));
    }

    #[test]
    fn phase_names_are_the_historical_strings() {
        // Goldens and telemetry spans key off these exact bytes.
        assert_eq!(Phase::Download.as_str(), "download");
        assert_eq!(Phase::Init.as_str(), "init");
        assert_eq!(Phase::Queue.as_str(), "queue");
        assert_eq!(Phase::ModelLoad.as_str(), "model_load");
        assert_eq!(Phase::Processing.as_str(), "processing");
        assert_eq!(Phase::Transfer.as_str(), "transfer");
    }
}
