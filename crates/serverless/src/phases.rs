//! Phase accounting for function executions.
//!
//! Figures 3 and 4 of the paper break a function's run into phases (CUDA
//! initialization, download, model loading, processing/inference). Workloads
//! and invokers record phases into a [`PhaseRecorder`]; the experiment
//! harness reads them back by name.

use dgsf_sim::{Dur, ProcCtx, SimTime, TraceCtx};

/// Canonical phase names used across workloads and harnesses.
pub mod phase {
    /// Downloading model + inputs from the object store.
    pub const DOWNLOAD: &str = "download";
    /// CUDA runtime (and module) initialization.
    pub const INIT: &str = "init";
    /// Queueing at the GPU server waiting for an API server.
    pub const QUEUE: &str = "queue";
    /// Loading the model onto the GPU (weights + descriptors + handles).
    pub const MODEL_LOAD: &str = "model_load";
    /// Inference / main computation.
    pub const PROCESSING: &str = "processing";
}

/// Accumulates named phase durations for one function execution.
#[derive(Debug, Default, Clone)]
pub struct PhaseRecorder {
    phases: Vec<(String, Dur)>,
    open: Option<(String, SimTime)>,
    trace: Option<TraceCtx>,
}

impl PhaseRecorder {
    /// Fresh recorder.
    pub fn new() -> PhaseRecorder {
        PhaseRecorder::default()
    }

    /// Attach a causal trace context: phase spans closed from now on carry
    /// the invocation id and attempt, so trace assembly can tie them to
    /// their parent invocation.
    pub fn set_trace(&mut self, trace: Option<TraceCtx>) {
        self.trace = trace;
    }

    /// Begin a phase (closing any open one).
    pub fn enter(&mut self, p: &ProcCtx, name: &str) {
        self.close(p);
        self.open = Some((name.to_string(), p.now()));
    }

    /// Close the currently open phase, if any. With telemetry enabled the
    /// closed interval is also recorded as a span on the calling process's
    /// track, so traces show the same phase breakdown the harness reads
    /// back — on every invocation path (DGSF, native, CPU) uniformly.
    pub fn close(&mut self, p: &ProcCtx) {
        if let Some((name, start)) = self.open.take() {
            let d = p.now().since(start);
            let tel = p.telemetry();
            if tel.is_enabled() {
                match &self.trace {
                    Some(t) => {
                        tel.span_args(p.name(), &name, "phase", start, p.now(), &t.span_args())
                    }
                    None => tel.span(p.name(), &name, "phase", start, p.now()),
                }
            }
            self.add(&name, d);
        }
    }

    /// Add a duration to a named phase directly.
    pub fn add(&mut self, name: &str, d: Dur) {
        if let Some(e) = self.phases.iter_mut().find(|(n, _)| n == name) {
            e.1 += d;
        } else {
            self.phases.push((name.to_string(), d));
        }
    }

    /// Duration of a named phase (zero if absent).
    pub fn get(&self, name: &str) -> Dur {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or(Dur::ZERO)
    }

    /// All phases in recording order.
    pub fn all(&self) -> &[(String, Dur)] {
        &self.phases
    }

    /// Sum of all recorded phases.
    pub fn total(&self) -> Dur {
        self.phases.iter().fold(Dur::ZERO, |acc, (_, d)| acc + *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Sim;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn phases_accumulate_by_name() {
        let mut sim = Sim::new(1);
        let out = Arc::new(Mutex::new(PhaseRecorder::new()));
        let o = out.clone();
        sim.spawn("f", move |p| {
            let mut rec = PhaseRecorder::new();
            rec.enter(p, phase::DOWNLOAD);
            p.sleep(Dur::from_secs(2));
            rec.enter(p, phase::PROCESSING);
            p.sleep(Dur::from_secs(3));
            rec.close(p);
            rec.add(phase::PROCESSING, Dur::from_secs(1));
            *o.lock() = rec;
        });
        sim.run();
        let rec = out.lock().clone();
        assert_eq!(rec.get(phase::DOWNLOAD), Dur::from_secs(2));
        assert_eq!(rec.get(phase::PROCESSING), Dur::from_secs(4));
        assert_eq!(rec.get("nonexistent"), Dur::ZERO);
        assert_eq!(rec.total(), Dur::from_secs(6));
    }
}
