//! The workload abstraction: a serverless function body written against the
//! interposable CUDA API.

use std::sync::Arc;

use dgsf_cuda::{CudaApi, CudaResult, ModuleRegistry};
use dgsf_sim::ProcCtx;

use crate::phases::PhaseRecorder;

/// A GPU-accelerated serverless function.
///
/// Implementations issue the same CUDA/cuDNN/cuBLAS call sequence whether
/// the `api` is [`dgsf_cuda::NativeCuda`] or the DGSF guest library — that
/// transparency is challenge **C1** of the paper.
pub trait Workload: Send + Sync {
    /// Function name (as deployed).
    fn name(&self) -> &str;

    /// Tenant (customer account) that deployed the function. Admission
    /// control's weighted fair shedding budgets by this label; wrap a
    /// workload in [`crate::Tenanted`] to set it. Defaults to a single
    /// shared tenant.
    fn tenant(&self) -> &str {
        "default"
    }

    /// Kernels this function ships (registered at deploy time).
    fn registry(&self) -> Arc<ModuleRegistry>;

    /// Declared GPU memory requirement — what the developer specifies at
    /// deployment, and what the monitor uses for placement.
    fn required_gpu_mem(&self) -> u64;

    /// Bytes of models + inputs downloaded from the object store per run.
    fn download_bytes(&self) -> u64;

    /// Execute the function body against `api`, recording phases.
    ///
    /// Errors propagate instead of panicking: over a faulted link any call
    /// can come back [`dgsf_cuda::CudaError::Transport`], and the platform
    /// (not the workload) decides whether to retry the whole function.
    fn run(&self, p: &ProcCtx, api: &mut dyn CudaApi, rec: &mut PhaseRecorder) -> CudaResult<()>;

    /// Calibrated CPU execution time (6 threads), for the CPU baseline row.
    fn cpu_secs(&self) -> f64;
}
