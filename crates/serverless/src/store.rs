//! S3-like object store.
//!
//! "All of the data required by each function, such as models and inputs
//! are downloaded from AWS S3" (§VI). The store scales out — concurrent
//! downloads do not contend with each other — but each stream is capped at
//! the deployment's effective S3 bandwidth, which is the knob that
//! distinguishes the OpenFaaS deployment from AWS Lambda in Table II.

use dgsf_sim::{Dur, ProcCtx};

/// Per-stream S3 model: bandwidth cap plus a first-byte latency.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    /// Bytes per second one download stream achieves.
    pub stream_bw: f64,
    /// Request latency before the first byte.
    pub first_byte: Dur,
}

impl ObjectStore {
    /// A store with the given per-stream bandwidth and a 50 ms first-byte
    /// latency.
    pub fn new(stream_bw: f64) -> ObjectStore {
        ObjectStore {
            stream_bw,
            first_byte: Dur::from_millis(50),
        }
    }

    /// Download `bytes`, blocking the caller in virtual time.
    pub fn download(&self, p: &ProcCtx, bytes: u64) {
        if bytes == 0 {
            return;
        }
        p.sleep(self.first_byte);
        p.sleep(Dur::from_secs_f64(bytes as f64 / self.stream_bw));
    }

    /// Time a download of `bytes` would take (for calibration tables).
    pub fn download_time(&self, bytes: u64) -> Dur {
        if bytes == 0 {
            return Dur::ZERO;
        }
        self.first_byte + Dur::from_secs_f64(bytes as f64 / self.stream_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Sim;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn download_time_is_latency_plus_bandwidth() {
        let mut sim = Sim::new(1);
        let store = ObjectStore::new(1e6); // 1 MB/s
        let t = Arc::new(Mutex::new(0.0));
        let t2 = t.clone();
        sim.spawn("dl", move |p| {
            store.download(p, 2_000_000);
            *t2.lock() = p.now().as_secs_f64();
        });
        sim.run();
        let got = *t.lock();
        assert!((got - 2.05).abs() < 1e-6, "50 ms + 2 s: {got}");
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut sim = Sim::new(1);
        let store = ObjectStore::new(1e6);
        sim.spawn("dl", move |p| {
            store.download(p, 0);
            assert_eq!(p.now().as_nanos(), 0);
        });
        sim.run();
        assert_eq!(ObjectStore::new(1e6).download_time(0), Dur::ZERO);
    }

    #[test]
    fn concurrent_downloads_do_not_contend() {
        let mut sim = Sim::new(1);
        let store = Arc::new(ObjectStore::new(1e6));
        let done = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let store = store.clone();
            let done = done.clone();
            sim.spawn(&format!("dl{i}"), move |p| {
                store.download(p, 1_000_000);
                done.lock().push(p.now().as_secs_f64());
            });
        }
        sim.run();
        for t in done.lock().iter() {
            assert!((t - 1.05).abs() < 1e-6, "S3 scales out: {t}");
        }
    }
}
