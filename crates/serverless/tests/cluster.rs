//! Cluster-layer invariants: the balancer never routes to a lease-expired
//! server (property-tested over arbitrary gauge snapshots), weighted
//! fair shedding guarantees a tenant its share no matter how hard another
//! tenant floods the platform, and sticky tenant placement never lets a
//! tenant's warm set outgrow the max-share bound while cutting its
//! cold-placement spread versus round-robin.

use std::collections::BTreeSet;
use std::sync::Arc;

use dgsf_cuda::{CudaResult, KernelArgs, KernelDef, LaunchConfig, ModuleRegistry};
use dgsf_gpu::GB;
use dgsf_remoting::{NetProfile, OptConfig};
use dgsf_server::{FleetPolicy, GpuServer, GpuServerConfig, ServerGauges};
use dgsf_serverless::cluster::select;
use dgsf_serverless::{
    AdmissionConfig, Backend, ClusterBalancer, FairShedConfig, ObjectStore, PhaseRecorder,
    StickyConfig, Tenanted, Workload,
};
use dgsf_sim::{Dur, ProcCtx, Sim};
use parking_lot::Mutex;
use proptest::prelude::*;

fn gauges_strategy() -> impl Strategy<Value = ServerGauges> {
    (
        0usize..5,
        0usize..5,
        0usize..12,
        0usize..12,
        0u64..32,
        0usize..3,
    )
        .prop_map(
            |(live, failed, active, queued, mem_gb, migrations)| ServerGauges {
                pool_size: live + failed,
                failed_api_servers: failed,
                active_functions: active,
                queued_functions: queued,
                used_mem_bytes: mem_gb * GB,
                total_mem_bytes: 16 * GB,
                migrations_in_flight: migrations,
            },
        )
}

fn policy_strategy() -> impl Strategy<Value = FleetPolicy> {
    (0usize..4).prop_map(|i| match i {
        0 => FleetPolicy::RoundRobin,
        1 => FleetPolicy::LeastLoaded,
        2 => FleetPolicy::MostLoaded,
        _ => FleetPolicy::LoadAware,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The routing invariant of the cluster balancer: whatever the fleet
    /// looks like, a server whose whole API-server pool is lease-expired
    /// is never selected — and a live server is found whenever one exists.
    #[test]
    fn balancer_never_selects_a_lease_expired_server(
        snaps in proptest::collection::vec(gauges_strategy(), 1..10),
        policy in policy_strategy(),
        rr in 0usize..64,
        avoid_raw in proptest::option::of(0usize..10),
    ) {
        let avoid = avoid_raw.map(|a| a % snaps.len());
        let picked = select(policy, &snaps, rr, avoid);
        let any_live = snaps.iter().any(|g| g.lease_live());
        match picked {
            Some(i) => {
                prop_assert!(i < snaps.len());
                prop_assert!(
                    snaps[i].lease_live(),
                    "policy {policy:?} picked lease-expired server {i}"
                );
            }
            None => prop_assert!(
                !any_live,
                "returned None although a live server exists"
            ),
        }
        // And the choice is a pure function of its inputs.
        prop_assert_eq!(picked, select(policy, &snaps, rr, avoid));
    }

    /// `avoid` steers away from the named server whenever any other live
    /// server exists.
    #[test]
    fn avoid_is_honored_when_an_alternative_exists(
        snaps in proptest::collection::vec(gauges_strategy(), 2..10),
        policy in policy_strategy(),
        rr in 0usize..64,
        avoid_raw in 0usize..10,
    ) {
        let avoid = avoid_raw % snaps.len();
        let others_live = snaps
            .iter()
            .enumerate()
            .any(|(i, g)| i != avoid && g.lease_live());
        if let Some(i) = select(policy, &snaps, rr, Some(avoid)) {
            if others_live {
                prop_assert_ne!(i, avoid, "picked the avoided server {avoid}");
            }
        }
    }

    /// The stickiness bound: with max-share = 50%, a tenant's warm set
    /// never outgrows half the fleet, whatever the gauges look like —
    /// and once the set is full, every route lands inside it.
    #[test]
    fn sticky_max_share_bounds_a_tenants_footprint(
        snaps in proptest::collection::vec(gauges_strategy(), 2..10),
        routes in 1usize..64,
    ) {
        let bal = ClusterBalancer::new(FleetPolicy::RoundRobin)
            .with_sticky(StickyConfig::new().with_max_share(500));
        let cap = ((snaps.len() as u64 * 500) / 1000).max(1) as usize;
        for _ in 0..routes {
            let warm_before = bal.warm_servers_of("heavy");
            let picked = bal.route_snapshots_for("heavy", &snaps, None);
            match picked {
                Some(i) => {
                    prop_assert!(snaps[i].lease_live());
                    if warm_before.len() >= cap
                        && warm_before.iter().any(|&w| snaps[w].lease_live())
                    {
                        prop_assert!(
                            warm_before.contains(&i),
                            "a capped tenant must stay on its warm set"
                        );
                    }
                }
                None => prop_assert!(!snaps.iter().any(|g| g.lease_live())),
            }
            prop_assert!(
                bal.warm_servers_of("heavy").len() <= cap,
                "warm set {} exceeds the max-share cap {cap}",
                bal.warm_servers_of("heavy").len()
            );
        }
    }
}

/// A short spin function with a configurable name.
struct Spin(&'static str);

impl Workload for Spin {
    fn name(&self) -> &str {
        self.0
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        GB
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &ProcCtx,
        api: &mut dyn dgsf_cuda::CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf_serverless::phase::PROCESSING);
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(0.5, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        30.0
    }
}

/// The fair-shedding guarantee: a flooding hot tenant can never push a
/// tenant that stays within its weighted share into being shed. The cold
/// tenant's shed count stays zero however many functions the hot tenant
/// throws at the platform.
#[test]
fn hot_tenant_cannot_shed_a_tenant_within_its_share() {
    let mut sim = Sim::new(7);
    let h = sim.handle();
    let shed_by_tenant = Arc::new(Mutex::new((0usize, 0usize))); // (hot, cold)
    let counts = Arc::clone(&shed_by_tenant);
    sim.spawn("root", move |p| {
        let cfg = GpuServerConfig::paper_default().gpus(2);
        let srv = GpuServer::provision(p, &h, cfg);
        // 4 slots, equal weights ⇒ 2 guaranteed slots per tenant. No
        // bucket refill: borrowing is a one-shot burst, so the guarantee
        // is exercised in its tightest form.
        let b = Arc::new(
            Backend::new(vec![srv], FleetPolicy::RoundRobin).with_admission(
                AdmissionConfig::new(4).with_weighted_fair(
                    FairShedConfig::new()
                        .with_weight("hot", 1)
                        .with_weight("cold", 1)
                        .with_burst(1)
                        .with_refill(0),
                ),
            ),
        );
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        // Hot floods 40 functions in the first 200 ms.
        for i in 0..40 {
            let b = Arc::clone(&b);
            let store = Arc::clone(&store);
            let counts = Arc::clone(&counts);
            h.spawn(&format!("hot{i}"), move |p| {
                p.sleep(Dur::from_millis(5 * i as u64));
                let r = b.invoke(
                    p,
                    &store,
                    &Tenanted::new("hot", Spin("hot-fn")),
                    OptConfig::full(),
                );
                if r.shed {
                    counts.lock().0 += 1;
                }
            });
        }
        // Cold launches sequentially: at most 1 in flight — always within
        // its guaranteed share of 2.
        let b2 = Arc::clone(&b);
        let store2 = Arc::clone(&store);
        let counts2 = Arc::clone(&counts);
        h.spawn("cold", move |p| {
            for _ in 0..8 {
                let r = b2.invoke(
                    p,
                    &store2,
                    &Tenanted::new("cold", Spin("cold-fn")),
                    OptConfig::full(),
                );
                if r.shed {
                    counts2.lock().1 += 1;
                }
                p.sleep(Dur::from_millis(100));
            }
        });
    });
    sim.run();
    let (hot_shed, cold_shed) = *shed_by_tenant.lock();
    assert!(
        hot_shed > 0,
        "the flood must exceed hot's share and be shed ({hot_shed})"
    );
    assert_eq!(
        cold_shed, 0,
        "a tenant within its weighted share is never shed"
    );
}

/// Sanity check of the FIFO baseline on the identical scenario: the flood
/// does spill onto the cold tenant, which is exactly what weighted fair
/// shedding prevents.
#[test]
fn fifo_baseline_lets_the_flood_starve_the_cold_tenant() {
    let mut sim = Sim::new(7);
    let h = sim.handle();
    let cold_shed = Arc::new(Mutex::new(0usize));
    let cold_counter = Arc::clone(&cold_shed);
    sim.spawn("root", move |p| {
        let cfg = GpuServerConfig::paper_default().gpus(2);
        let srv = GpuServer::provision(p, &h, cfg);
        let b = Arc::new(
            Backend::new(vec![srv], FleetPolicy::RoundRobin)
                .with_admission(AdmissionConfig::new(4)),
        );
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        for i in 0..40 {
            let b = Arc::clone(&b);
            let store = Arc::clone(&store);
            h.spawn(&format!("hot{i}"), move |p| {
                p.sleep(Dur::from_millis(5 * i as u64));
                let _ = b.invoke(
                    p,
                    &store,
                    &Tenanted::new("hot", Spin("hot-fn")),
                    OptConfig::full(),
                );
            });
        }
        let b2 = Arc::clone(&b);
        let store2 = Arc::clone(&store);
        let counter = Arc::clone(&cold_counter);
        h.spawn("cold", move |p| {
            // Arrive just after the flood has filled every slot.
            p.sleep(Dur::from_millis(50));
            for _ in 0..8 {
                let r = b2.invoke(
                    p,
                    &store2,
                    &Tenanted::new("cold", Spin("cold-fn")),
                    OptConfig::full(),
                );
                if r.shed {
                    *counter.lock() += 1;
                }
                p.sleep(Dur::from_millis(100));
            }
        });
    });
    sim.run();
    assert!(
        *cold_shed.lock() > 0,
        "without fairness the flood sheds the cold tenant too"
    );
}

/// Sticky placement as a cold-start optimization: round-robin walks a
/// light tenant across the entire fleet (every server pays a cold start),
/// while the sticky balancer settles it on its max-share slice and keeps
/// routing there.
#[test]
fn sticky_placement_cuts_the_light_tenants_cold_placements_versus_round_robin() {
    let idle = || ServerGauges {
        pool_size: 2,
        failed_api_servers: 0,
        active_functions: 0,
        queued_functions: 0,
        used_mem_bytes: 0,
        total_mem_bytes: 16 * GB,
        migrations_in_flight: 0,
    };
    let snaps: Vec<ServerGauges> = (0..4).map(|_| idle()).collect();

    // Plain round-robin: 16 routes touch all 4 servers — 4 cold starts.
    let rr = ClusterBalancer::new(FleetPolicy::RoundRobin);
    let mut rr_touched = BTreeSet::new();
    for _ in 0..16 {
        rr_touched.insert(rr.route_snapshots(&snaps, None).expect("live fleet"));
    }
    assert_eq!(
        rr_touched.len(),
        4,
        "round-robin spreads over the whole fleet"
    );

    // Sticky with max-share 50%: the same 16 routes pay at most 2 cold
    // placements, then stay on the warm pair.
    let sticky = ClusterBalancer::new(FleetPolicy::RoundRobin)
        .with_sticky(StickyConfig::new().with_max_share(500));
    let mut sticky_touched = BTreeSet::new();
    for _ in 0..16 {
        sticky_touched.insert(
            sticky
                .route_snapshots_for("light", &snaps, None)
                .expect("live fleet"),
        );
    }
    assert!(
        sticky.warm_servers_of("light").len() <= 2,
        "warm set respects the half-fleet bound"
    );
    assert_eq!(
        sticky.cold_placements_of("light") as usize,
        sticky_touched.len(),
        "every cold placement is a first touch of a server"
    );
    assert!(
        (sticky.cold_placements_of("light") as usize) < rr_touched.len(),
        "sticky must pay fewer cold placements ({}) than round-robin ({})",
        sticky.cold_placements_of("light"),
        rr_touched.len()
    );
}
