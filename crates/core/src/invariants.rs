//! Platform-level bindings for the [`dgsf_sim::invariants`] oracle.
//!
//! The sim crate's checker works over neutral fact types; this module
//! converts what an actual run produces — [`InvocationRecord`]s,
//! [`FunctionResult`]s, [`MigrationRecord`]s and a live [`GpuServer`] —
//! into those facts and runs the exactly-once / migration-state-machine /
//! memory-balance rules over them. The chaos-soak harness calls
//! [`check_backend_run`] after every seed.

use dgsf_server::{GpuServer, InvocationRecord, MigrationRecord};
use dgsf_serverless::FunctionResult;
use dgsf_sim::invariants::{
    check, InvariantReport, InvocationFacts, MigrationFacts, RequestFacts, RequestOutcome,
};

use crate::testbed::BackendRunOutput;

/// Convert server-side invocation records into oracle facts.
pub fn invocation_facts(records: &[InvocationRecord]) -> Vec<InvocationFacts> {
    records
        .iter()
        .map(|r| InvocationFacts {
            invocation: r.invocation,
            requested_at: r.requested_at,
            assigned_at: r.assigned_at,
            done_at: r.done_at,
            failed_at: r.failed_at,
            trace: r.trace,
        })
        .collect()
}

/// Convert caller-visible function results into oracle facts. Results
/// without a trace id (native/CPU baselines) carry no cross-layer promise
/// and are skipped.
pub fn request_facts(results: &[FunctionResult]) -> Vec<RequestFacts> {
    results
        .iter()
        .filter_map(|r| {
            let outcome = if r.shed {
                RequestOutcome::Shed
            } else if r.succeeded() {
                RequestOutcome::Completed
            } else {
                RequestOutcome::Failed
            };
            r.trace.map(|trace| RequestFacts { trace, outcome })
        })
        .collect()
}

/// Convert a migration log into oracle facts.
pub fn migration_facts(migrations: &[MigrationRecord]) -> Vec<MigrationFacts> {
    migrations
        .iter()
        .map(|m| MigrationFacts {
            server: m.server,
            from: m.from.0,
            to: m.to.0,
            begun_at: m.begun_at,
            completed_at: m.at,
        })
        .collect()
}

/// Run the full exactly-once oracle over one backend run: every admitted
/// invocation reached exactly one terminal state, no caller-visible
/// success is double-run and no caller-visible failure hides completed
/// work, and every fleet member's migration log is a valid state-machine
/// history.
pub fn check_backend_run(out: &BackendRunOutput) -> InvariantReport {
    let invs: Vec<InvocationFacts> = out
        .records
        .iter()
        .flat_map(|r| invocation_facts(r))
        .collect();
    let reqs = request_facts(&out.results);
    let mut report = check(&invs, &reqs, &[]);
    // Migration histories are per-server-fleet-member: server ids repeat
    // across members, so each member's log is checked on its own.
    for migs in &out.migrations {
        report.merge(check(&[], &[], &migration_facts(migs)));
    }
    report
}

/// Run the handoff exactly-once oracle over a fleet's resident-store
/// audit log: every published buffer was published under a fresh key and
/// reached exactly one terminal state (adopted by a successor stage or
/// reclaimed on abort/teardown), and nothing is still parked. Call at
/// quiescence — a buffer legitimately in flight between two stages counts
/// as "still parked" until its DAG finishes.
pub fn check_resident_handoff(server: &GpuServer) -> InvariantReport {
    use dgsf_cuda::ResidentEvent;
    use std::collections::HashMap;
    let mut report = InvariantReport::default();
    // key -> (published, adopted, reclaimed) counts
    let mut by_key: HashMap<u64, (u32, u32, u32)> = HashMap::new();
    for ev in server.resident_events() {
        match ev {
            ResidentEvent::Published { key, .. } => by_key.entry(key).or_default().0 += 1,
            ResidentEvent::Adopted { key, .. } => by_key.entry(key).or_default().1 += 1,
            ResidentEvent::Reclaimed { key, .. } => by_key.entry(key).or_default().2 += 1,
        }
    }
    let mut keys: Vec<u64> = by_key.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let (published, adopted, reclaimed) = by_key[&key];
        if published != 1 || adopted + reclaimed != 1 {
            report.violations.push(dgsf_sim::invariants::Violation {
                rule: "resident-handoff-exactly-once",
                detail: format!(
                    "key {key:#x}: published {published}, adopted {adopted}, \
                     reclaimed {reclaimed} (want exactly 1 publish and 1 terminal)"
                ),
            });
        }
    }
    let parked = server.resident_in_store();
    if parked != 0 {
        report.violations.push(dgsf_sim::invariants::Violation {
            rule: "resident-store-drains",
            detail: format!("{parked} buffer(s) still parked at quiescence"),
        });
    }
    report
}

/// Check that GPU memory accounting balances on a quiescent server: what
/// each GPU holds equals the idle footprint implied by the live registry
/// (home workers plus migrated-in contexts).
///
/// `strict` demands exact equality and is only sound for fault-free runs:
/// a server killed or a function aborted mid-flight leaks its session
/// memory by design (the guest never reaches `EndFunction`, and the model
/// has no async reclamation), so chaos runs pass `strict = false`, which
/// still catches under-accounting (`used < expected` — memory lost track
/// of) while tolerating leaked session state.
pub fn check_memory_balance(server: &GpuServer, strict: bool) -> InvariantReport {
    let mut report = InvariantReport::default();
    for gpu in &server.gpus {
        let used = gpu.used_mem();
        let expected = server.expected_idle_mem(gpu.id);
        let broken = if strict {
            used != expected
        } else {
            used < expected
        };
        if broken {
            report.violations.push(dgsf_sim::invariants::Violation {
                rule: "memory-balances",
                detail: format!(
                    "GPU {} holds {used} bytes but the registry implies {expected} \
                     (strict = {strict})",
                    gpu.id.0
                ),
            });
        }
    }
    report
}
