//! The experiment testbed: one-call orchestration of the paper's
//! measurement setups.
//!
//! Every table and figure in §VIII boils down to: provision a GPU server
//! with some configuration, launch a schedule of workloads against it (or
//! run single workloads natively / on CPU), and collect end-to-end times,
//! queue delays, phase breakdowns and utilization timelines. [`Testbed`]
//! packages exactly that, deterministically per seed.

use std::sync::Arc;

use dgsf_cuda::CostTable;
use dgsf_remoting::OptConfig;
use dgsf_server::{GpuServer, GpuServerConfig, InvocationRecord, MigrationRecord};
use dgsf_serverless::{
    invoke_cpu, invoke_native, AdmissionConfig, Backend, FleetPolicy, FunctionResult,
    InvokeOptions, Invoker, ObjectStore, RetryPolicy, Schedule, StickyConfig, Workload,
};
use dgsf_sim::{Dur, ObsConfig, ObsPlane, ObsReport, Sim, SimTime, Telemetry, Timeline};
use parking_lot::Mutex;

/// Configuration of one experiment run.
///
/// A thin single-server view of [`crate::PlatformConfig`] — the
/// consolidated builder is the documented entry point; this type remains
/// for the testbed's single-server runners.
#[derive(Clone)]
pub struct TestbedConfig {
    /// RNG seed (arrivals, jitter).
    pub seed: u64,
    /// GPU server shape and policies.
    pub server: GpuServerConfig,
    /// Guest-library optimization level.
    pub opts: OptConfig,
}

impl TestbedConfig {
    /// The paper's default: 4 GPUs, no sharing, full optimizations.
    pub fn paper_default() -> TestbedConfig {
        TestbedConfig {
            seed: 42,
            server: GpuServerConfig::paper_default(),
            opts: OptConfig::full(),
        }
    }
}

/// Everything a schedule run produced.
pub struct RunOutput {
    /// Per-function results, in completion order.
    pub results: Vec<FunctionResult>,
    /// GPU-server-side invocation records (queue delays etc.).
    pub records: Vec<InvocationRecord>,
    /// Completed migrations.
    pub migrations: Vec<MigrationRecord>,
    /// Compute busy timelines, one per GPU.
    pub gpu_timelines: Vec<Timeline>,
    /// When the first function launched.
    pub first_launch: SimTime,
    /// When the last function finished — the provider's end-to-end time.
    pub all_done: SimTime,
}

impl RunOutput {
    /// Provider end-to-end time: launch of the first function to completion
    /// of the last (Tables III/IV's "End to end").
    pub fn provider_e2e(&self) -> Dur {
        self.all_done.since(self.first_launch)
    }

    /// Sum of every function's end-to-end time (Tables III/IV's
    /// "Function E2E Sum").
    pub fn function_e2e_sum(&self) -> Dur {
        self.results.iter().fold(Dur::ZERO, |acc, r| acc + r.e2e())
    }

    /// Mean GPU utilization (busy-time fraction) over `[a, b)`.
    pub fn mean_utilization(&self, a: SimTime, b: SimTime) -> f64 {
        if b <= a || self.gpu_timelines.is_empty() {
            return 0.0;
        }
        let span = b.since(a).as_secs_f64();
        let total: f64 = self
            .gpu_timelines
            .iter()
            .map(|tl| tl.busy_between(a, b).as_secs_f64() / span)
            .sum();
        total / self.gpu_timelines.len() as f64
    }

    /// Results for one workload name.
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a FunctionResult> {
        self.results.iter().filter(move |r| r.name == name)
    }

    /// Queue delays (seconds) for one workload name, via server records.
    pub fn queue_delays(&self, name: &str) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.name == name)
            .filter_map(|r| r.queue_delay())
            .map(|d| d.as_secs_f64())
            .collect()
    }
}

/// Configuration of a backend-level run: a fleet of GPU servers behind the
/// serverless backend's selection, retry and admission policies.
///
/// A thin view of [`crate::PlatformConfig`] — build one with the
/// consolidated builder and convert via [`crate::PlatformConfig::backend`]
/// (or `.into()`).
#[derive(Clone)]
pub struct BackendRunConfig {
    /// RNG seed (arrivals, jitter).
    pub seed: u64,
    /// Shape of each GPU server in the fleet.
    pub server: GpuServerConfig,
    /// Fleet size.
    pub num_servers: usize,
    /// Server-selection policy.
    pub policy: FleetPolicy,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Optional admission control (overload shedding).
    pub admission: Option<AdmissionConfig>,
    /// Optional bounded sticky tenant→server placement.
    pub sticky: Option<StickyConfig>,
    /// Guest-library optimization level.
    pub opts: OptConfig,
    /// Optional online observability plane (windows, burn-rate alerts,
    /// health timeline). When set, every monitor and the backend feed one
    /// shared [`ObsPlane`] and the run's [`BackendRunOutput::obs`] report
    /// is populated.
    pub obs: Option<ObsConfig>,
}

impl BackendRunConfig {
    /// One paper-default GPU server behind a round-robin backend, default
    /// retries, no admission control.
    pub fn paper_default() -> BackendRunConfig {
        BackendRunConfig {
            seed: 42,
            server: GpuServerConfig::paper_default(),
            num_servers: 1,
            policy: FleetPolicy::RoundRobin,
            retry: RetryPolicy::default(),
            admission: None,
            sticky: None,
            opts: OptConfig::full(),
            obs: None,
        }
    }
}

/// Everything a backend-level schedule run produced.
pub struct BackendRunOutput {
    /// Per-function results in completion order — including shed ones
    /// ([`FunctionResult::shed`]), which is the point of running through
    /// the backend.
    pub results: Vec<FunctionResult>,
    /// Server-side invocation records, one `Vec` per fleet member.
    pub records: Vec<Vec<InvocationRecord>>,
    /// Committed migrations, one `Vec` per fleet member.
    pub migrations: Vec<Vec<MigrationRecord>>,
    /// Final API-server pool size per fleet member (autoscaled fleets may
    /// differ from the provisioned count).
    pub pool_sizes: Vec<usize>,
    /// When the first function launched.
    pub first_launch: SimTime,
    /// When the last function finished (completed or shed).
    pub all_done: SimTime,
    /// Observability report (windows, alerts, health) when the run was
    /// configured with [`BackendRunConfig::obs`]; `None` otherwise.
    pub obs: Option<ObsReport>,
}

impl BackendRunOutput {
    /// Functions that completed successfully.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.succeeded()).count()
    }

    /// Functions shed by admission control / overload.
    pub fn shed(&self) -> usize {
        self.results.iter().filter(|r| r.shed).count()
    }

    /// Functions that failed for any non-shed reason.
    pub fn failed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| !r.succeeded() && !r.shed)
            .count()
    }
}

/// Deterministic experiment orchestration.
pub struct Testbed;

impl Testbed {
    /// Run a mixed-workload `schedule` against a freshly provisioned GPU
    /// server. Each schedule entry spawns one warm function at its launch
    /// time; the run ends when every function completed.
    pub fn run_schedule(
        cfg: &TestbedConfig,
        suite: &[Arc<dyn Workload>],
        schedule: &Schedule,
    ) -> RunOutput {
        Self::run_schedule_inner(cfg, suite, schedule, false).0
    }

    /// [`run_schedule`](Self::run_schedule) with telemetry recording on:
    /// also returns the run's telemetry registry, ready to export or to
    /// assert against. Same seed ⇒ byte-identical exports.
    pub fn run_schedule_traced(
        cfg: &TestbedConfig,
        suite: &[Arc<dyn Workload>],
        schedule: &Schedule,
    ) -> (RunOutput, Arc<Telemetry>) {
        Self::run_schedule_inner(cfg, suite, schedule, true)
    }

    fn run_schedule_inner(
        cfg: &TestbedConfig,
        suite: &[Arc<dyn Workload>],
        schedule: &Schedule,
        trace: bool,
    ) -> (RunOutput, Arc<Telemetry>) {
        let mut sim = Sim::new(cfg.seed);
        let telemetry = sim.telemetry();
        if trace {
            telemetry.enable();
        }
        let h = sim.handle();
        type ServerSnapshot = (Vec<InvocationRecord>, Vec<MigrationRecord>, Vec<Timeline>);
        let results = Arc::new(Mutex::new(Vec::new()));
        let out: Arc<Mutex<Option<ServerSnapshot>>> = Arc::new(Mutex::new(None));
        let store = Arc::new(ObjectStore::new(cfg.server.net.s3_bw));
        let server_cfg = cfg.server.clone();
        let opts = cfg.opts;
        let suite: Vec<Arc<dyn Workload>> = suite.to_vec();
        let schedule = schedule.clone();
        let n_functions = schedule.len();
        let results2 = Arc::clone(&results);
        let out2 = Arc::clone(&out);
        let h2 = h.clone();
        sim.spawn("platform-root", move |p| {
            let server = GpuServer::provision(p, &h2, server_cfg);
            let done_count = Arc::new(Mutex::new(0usize));
            for (at, widx) in schedule.entries.iter().copied() {
                let w = Arc::clone(&suite[widx]);
                let server = Arc::clone(&server);
                let store = Arc::clone(&store);
                let results = Arc::clone(&results2);
                let done_count = Arc::clone(&done_count);
                h2.spawn_at(&format!("fn-{}-{widx}", at.as_nanos()), at, move |p| {
                    let r = Invoker::new(&server, &store)
                        .invoke(p, w.as_ref(), InvokeOptions::new(opts))
                        .expect("schedule runs fault-free");
                    results.lock().push(r);
                    *done_count.lock() += 1;
                });
            }
            // Collector: snapshot server state once everything finished.
            let server2 = Arc::clone(&server);
            let out3 = Arc::clone(&out2);
            h2.spawn("collector", move |p| {
                loop {
                    p.sleep(Dur::from_millis(500));
                    if *done_count.lock() >= n_functions {
                        break;
                    }
                }
                let timelines: Vec<Timeline> =
                    server2.gpus.iter().map(|g| g.compute_timeline()).collect();
                *out3.lock() = Some((server2.records(), server2.migrations(), timelines));
            });
        });
        sim.run();
        let mut results = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_else(|a| a.lock().clone());
        results.sort_by_key(|r| r.finished_at);
        let (records, migrations, gpu_timelines) =
            out.lock().take().expect("collector observed completion");
        let first_launch = results
            .iter()
            .map(|r| r.launched_at)
            .min()
            .unwrap_or(SimTime::ZERO);
        let all_done = results
            .iter()
            .map(|r| r.finished_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        (
            RunOutput {
                results,
                records,
                migrations,
                gpu_timelines,
                first_launch,
                all_done,
            },
            telemetry,
        )
    }

    /// Run a schedule on a platform described by one consolidated
    /// [`crate::PlatformConfig`]: the fleet is provisioned, the cluster
    /// balancer routes under `cfg.policy`, and admission control sheds
    /// per `cfg.admission`. This is the preferred entry point;
    /// [`run_backend_schedule`](Self::run_backend_schedule) is its
    /// lower-level equivalent.
    pub fn run_platform_schedule(
        cfg: &crate::PlatformConfig,
        suite: &[Arc<dyn Workload>],
        schedule: &Schedule,
    ) -> BackendRunOutput {
        if let Err(e) = cfg.validate() {
            panic!("invalid PlatformConfig: {e}");
        }
        Self::run_backend_schedule(&cfg.backend(), suite, schedule)
    }

    /// [`run_platform_schedule`](Self::run_platform_schedule) with
    /// telemetry recording on. Same seed ⇒ byte-identical exports.
    pub fn run_platform_schedule_traced(
        cfg: &crate::PlatformConfig,
        suite: &[Arc<dyn Workload>],
        schedule: &Schedule,
    ) -> (BackendRunOutput, Arc<Telemetry>) {
        if let Err(e) = cfg.validate() {
            panic!("invalid PlatformConfig: {e}");
        }
        Self::run_backend_schedule_traced(&cfg.backend(), suite, schedule)
    }

    /// Run a schedule through the serverless backend: a fleet of
    /// `num_servers` GPU servers behind selection, retry and (optionally)
    /// admission control. Unlike [`run_schedule`](Self::run_schedule),
    /// every launch always yields a [`FunctionResult`] — overload turns
    /// into shed results, not panics — so saturation experiments terminate.
    pub fn run_backend_schedule(
        cfg: &BackendRunConfig,
        suite: &[Arc<dyn Workload>],
        schedule: &Schedule,
    ) -> BackendRunOutput {
        Self::run_backend_schedule_inner(cfg, suite, schedule, false).0
    }

    /// [`run_backend_schedule`](Self::run_backend_schedule) with telemetry
    /// recording on. Same seed ⇒ byte-identical exports.
    pub fn run_backend_schedule_traced(
        cfg: &BackendRunConfig,
        suite: &[Arc<dyn Workload>],
        schedule: &Schedule,
    ) -> (BackendRunOutput, Arc<Telemetry>) {
        Self::run_backend_schedule_inner(cfg, suite, schedule, true)
    }

    fn run_backend_schedule_inner(
        cfg: &BackendRunConfig,
        suite: &[Arc<dyn Workload>],
        schedule: &Schedule,
        trace: bool,
    ) -> (BackendRunOutput, Arc<Telemetry>) {
        assert!(cfg.num_servers >= 1, "a fleet needs at least one server");
        let mut sim = Sim::new(cfg.seed);
        let telemetry = sim.telemetry();
        if trace {
            telemetry.enable();
        }
        let h = sim.handle();
        type FleetSnapshot = (
            Vec<Vec<InvocationRecord>>,
            Vec<Vec<MigrationRecord>>,
            Vec<usize>,
        );
        let results = Arc::new(Mutex::new(Vec::new()));
        let out: Arc<Mutex<Option<FleetSnapshot>>> = Arc::new(Mutex::new(None));
        let store = Arc::new(ObjectStore::new(cfg.server.net.s3_bw));
        let cfg2 = cfg.clone();
        let suite: Vec<Arc<dyn Workload>> = suite.to_vec();
        let schedule = schedule.clone();
        let n_functions = schedule.len();
        let results2 = Arc::clone(&results);
        let out2 = Arc::clone(&out);
        let plane = cfg.obs.clone().map(|o| Arc::new(ObsPlane::new(o)));
        let plane2 = plane.clone();
        let h2 = h.clone();
        sim.spawn("platform-root", move |p| {
            let fleet: Vec<Arc<GpuServer>> = (0..cfg2.num_servers)
                .map(|i| {
                    let obs = plane2.clone().map(|pl| (pl, format!("srv{i}")));
                    GpuServer::provision_observed(p, &h2, cfg2.server.clone(), obs)
                })
                .collect();
            let mut backend = Backend::new(fleet.clone(), cfg2.policy).with_retry(cfg2.retry);
            if let Some(adm) = cfg2.admission.clone() {
                backend = backend.with_admission(adm);
            }
            if let Some(sticky) = cfg2.sticky.clone() {
                backend = backend.with_sticky(sticky);
            }
            if let Some(pl) = plane2.clone() {
                backend = backend.with_obs(pl);
            }
            let backend = Arc::new(backend);
            let done_count = Arc::new(Mutex::new(0usize));
            for (at, widx) in schedule.entries.iter().copied() {
                let w = Arc::clone(&suite[widx]);
                let backend = Arc::clone(&backend);
                let store = Arc::clone(&store);
                let results = Arc::clone(&results2);
                let done_count = Arc::clone(&done_count);
                let opts = cfg2.opts;
                h2.spawn_at(&format!("fn-{}-{widx}", at.as_nanos()), at, move |p| {
                    let r = backend.invoke(p, &store, w.as_ref(), opts);
                    results.lock().push(r);
                    *done_count.lock() += 1;
                });
            }
            let out3 = Arc::clone(&out2);
            h2.spawn("collector", move |p| {
                loop {
                    p.sleep(Dur::from_millis(500));
                    if *done_count.lock() >= n_functions {
                        break;
                    }
                }
                let records: Vec<Vec<InvocationRecord>> =
                    fleet.iter().map(|s| s.records()).collect();
                let migrations: Vec<Vec<MigrationRecord>> =
                    fleet.iter().map(|s| s.migrations()).collect();
                let pools: Vec<usize> = fleet.iter().map(|s| s.pool_size()).collect();
                *out3.lock() = Some((records, migrations, pools));
            });
        });
        sim.run();
        let mut results = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_else(|a| a.lock().clone());
        results.sort_by_key(|r| r.finished_at);
        let (records, migrations, pool_sizes) =
            out.lock().take().expect("collector observed completion");
        let first_launch = results
            .iter()
            .map(|r| r.launched_at)
            .min()
            .unwrap_or(SimTime::ZERO);
        let all_done = results
            .iter()
            .map(|r| r.finished_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let obs = plane.map(|pl| pl.report());
        (
            BackendRunOutput {
                results,
                records,
                migrations,
                pool_sizes,
                first_launch,
                all_done,
                obs,
            },
            telemetry,
        )
    }

    /// Run one workload alone over DGSF (warm server, no contention).
    pub fn run_dgsf_once(cfg: &TestbedConfig, w: Arc<dyn Workload>) -> FunctionResult {
        let suite = vec![w];
        let schedule = Schedule {
            entries: vec![(SimTime::ZERO, 0)],
        };
        let out = Self::run_schedule(cfg, &suite, &schedule);
        out.results.into_iter().next().expect("one function ran")
    }

    /// [`run_dgsf_once`](Self::run_dgsf_once) with telemetry recording on.
    pub fn run_dgsf_once_traced(
        cfg: &TestbedConfig,
        w: Arc<dyn Workload>,
    ) -> (FunctionResult, Arc<Telemetry>) {
        let suite = vec![w];
        let schedule = Schedule {
            entries: vec![(SimTime::ZERO, 0)],
        };
        let (out, tel) = Self::run_schedule_traced(cfg, &suite, &schedule);
        (
            out.results.into_iter().next().expect("one function ran"),
            tel,
        )
    }

    /// Run one workload natively (dedicated machine with a local GPU).
    pub fn run_native_once(seed: u64, costs: &CostTable, w: Arc<dyn Workload>) -> FunctionResult {
        Self::run_native_once_inner(seed, costs, w, false).0
    }

    /// [`run_native_once`](Self::run_native_once) with telemetry recording
    /// on.
    pub fn run_native_once_traced(
        seed: u64,
        costs: &CostTable,
        w: Arc<dyn Workload>,
    ) -> (FunctionResult, Arc<Telemetry>) {
        Self::run_native_once_inner(seed, costs, w, true)
    }

    fn run_native_once_inner(
        seed: u64,
        costs: &CostTable,
        w: Arc<dyn Workload>,
        trace: bool,
    ) -> (FunctionResult, Arc<Telemetry>) {
        let mut sim = Sim::new(seed);
        let telemetry = sim.telemetry();
        if trace {
            telemetry.enable();
        }
        let h = sim.handle();
        let store = Arc::new(ObjectStore::new(
            dgsf_remoting::NetProfile::datacenter().s3_bw,
        ));
        let costs = Arc::new(costs.clone());
        let out = Arc::new(Mutex::new(None));
        let o = Arc::clone(&out);
        let h2 = h.clone();
        sim.spawn("native-root", move |p| {
            let r = invoke_native(p, &h2, &store, w.as_ref(), costs);
            *o.lock() = Some(r);
        });
        sim.run();
        let r = out.lock().take().expect("ran");
        (r, telemetry)
    }

    /// Run one workload on the CPU baseline (6 threads, cost-modeled).
    pub fn run_cpu_once(seed: u64, w: Arc<dyn Workload>) -> FunctionResult {
        let mut sim = Sim::new(seed);
        let store = Arc::new(ObjectStore::new(
            dgsf_remoting::NetProfile::datacenter().s3_bw,
        ));
        let out = Arc::new(Mutex::new(None));
        let o = Arc::clone(&out);
        sim.spawn("cpu-root", move |p| {
            let r = invoke_cpu(p, &store, w.as_ref());
            *o.lock() = Some(r);
        });
        sim.run();
        let r = out.lock().take().expect("ran");
        r
    }
}
