//! # dgsf — Disaggregated GPUs for Serverless Functions (reproduction)
//!
//! A full Rust reproduction of *DGSF: Disaggregated GPUs for Serverless
//! Functions* (Fingler et al., IPDPS 2022), built on a deterministic
//! discrete-event simulation of the paper's testbed (V100 GPUs, CUDA
//! runtime, 10 Gb/s network).
//!
//! This facade crate re-exports the whole stack and provides the
//! [`Testbed`] used by examples and the experiment harness:
//!
//! * [`sim`] — discrete-event kernel (virtual time, processes, channels,
//!   processor-sharing resources);
//! * [`gpu`] — simulated GPUs (sparse-backed memory, driver-level VMM,
//!   compute/DMA engines, NVML-style utilization);
//! * [`cuda`] — virtual CUDA runtime (`CudaApi`, contexts, sessions with
//!   VA-preserving live migration, cuDNN/cuBLAS, calibrated costs);
//! * [`remoting`] — the wire protocol, network model, guest library with
//!   serverless-specialized optimizations, and server-side dispatcher;
//! * [`server`] — the disaggregated GPU server (manager, monitor,
//!   API servers, placement policies, migration);
//! * [`serverless`] — the platform substrate (workloads, phases, object
//!   store, invocation paths, arrival processes);
//! * [`workloads`] — the six paper workloads, the synthetic migration
//!   microbenchmark, and a functional K-means.
//!
//! ## Quickstart
//!
//! Configuration goes through one entry point, [`PlatformConfig`]: a
//! builder covering the server shape, the fleet, and the backend's
//! routing, retry and admission policies.
//!
//! ```
//! use dgsf::{PlatformConfig, Testbed};
//! use std::sync::Arc;
//!
//! let cfg = PlatformConfig::paper_default();
//! let w = Arc::new(dgsf::workloads::kmeans());
//! let dgsf_run = Testbed::run_dgsf_once(&cfg.testbed(), w.clone());
//! let native_run = Testbed::run_native_once(1, &cfg.server.costs, w);
//! // DGSF hides the 3.2 s CUDA initialization → often faster than native.
//! assert!(dgsf_run.e2e() < native_run.e2e());
//! ```

#![warn(missing_docs)]

pub mod invariants;
mod platform;
mod testbed;

pub use invariants::{check_backend_run, check_memory_balance, check_resident_handoff};
pub use platform::{ConfigError, PlatformConfig};
pub use testbed::{BackendRunConfig, BackendRunOutput, RunOutput, Testbed, TestbedConfig};

/// Discrete-event simulation substrate.
pub use dgsf_sim as sim;

/// Simulated GPU device model.
pub use dgsf_gpu as gpu;

/// Virtual CUDA runtime.
pub use dgsf_cuda as cuda;

/// API remoting (wire protocol, guest library, dispatcher).
pub use dgsf_remoting as remoting;

/// The disaggregated GPU server.
pub use dgsf_server as server;

/// Serverless platform substrate.
pub use dgsf_serverless as serverless;

/// Evaluation workloads.
pub use dgsf_workloads as workloads;

/// Convenient top-level re-exports of the most used types.
pub mod prelude {
    pub use crate::{
        BackendRunConfig, BackendRunOutput, ConfigError, PlatformConfig, RunOutput, Testbed,
        TestbedConfig,
    };
    pub use dgsf_cuda::{CostTable, CudaApi, HostBuf, KernelArgs, LaunchConfig, ModuleRegistry};
    pub use dgsf_remoting::{NetProfile, OptConfig};
    pub use dgsf_server::{
        AutoscaleConfig, FleetPolicy, GpuServerConfig, MqfqConfig, PlacementPolicy,
        PredictiveConfig, QueuePolicy, ShedPolicy,
    };
    pub use dgsf_serverless::{
        AdmissionConfig, ArrivalPattern, ClusterBalancer, FailureClass, FairShedConfig,
        InvokeOptions, Invoker, Phase, PhaseRecorder, RetryPolicy, Schedule, StickyConfig,
        Tenanted, Workload,
    };
    pub use dgsf_sim::{Dur, ObsConfig, ObsPlane, ObsReport, Sim, SimTime};
}
