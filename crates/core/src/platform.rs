//! [`PlatformConfig`]: the single entry point for configuring a DGSF
//! platform run.
//!
//! Experiment configuration used to be scattered over five types —
//! [`TestbedConfig`], [`BackendRunConfig`], [`GpuServerConfig`],
//! [`AdmissionConfig`] and [`RetryPolicy`] — each with its own defaults.
//! `PlatformConfig` consolidates them behind one builder: start from
//! [`PlatformConfig::paper_default`], chain `with_*` calls, and hand the
//! result to [`Testbed::run_platform_schedule`](crate::Testbed::run_platform_schedule)
//! (or convert into the legacy types, which remain as thin views so
//! existing code compiles unchanged).
//!
//! ```
//! use dgsf::{PlatformConfig, Testbed};
//! use dgsf::serverless::{FairShedConfig, FleetPolicy};
//!
//! let cfg = PlatformConfig::paper_default()
//!     .with_seed(7)
//!     .with_num_servers(4)
//!     .with_fleet_policy(FleetPolicy::LoadAware)
//!     .with_max_inflight(64)
//!     .with_weighted_fair(FairShedConfig::new().with_weight("hot", 1));
//! assert_eq!(cfg.backend().num_servers, 4);
//! ```

use dgsf_remoting::OptConfig;
use dgsf_server::{FleetPolicy, GpuServerConfig, ShedPolicy};
use dgsf_serverless::{AdmissionConfig, FairShedConfig, RetryPolicy};

use crate::testbed::{BackendRunConfig, TestbedConfig};

/// One consolidated configuration for a whole platform run: the RNG seed,
/// the shape of every GPU server, the fleet in front of them, and the
/// backend's routing, retry and admission policies.
#[derive(Clone)]
pub struct PlatformConfig {
    /// RNG seed (arrivals, jitter).
    pub seed: u64,
    /// Shape of each GPU server in the fleet.
    pub server: GpuServerConfig,
    /// Fleet size (number of GPU servers behind the backend).
    pub num_servers: usize,
    /// Cluster-balancer routing policy.
    pub policy: FleetPolicy,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Optional admission control (overload shedding).
    pub admission: Option<AdmissionConfig>,
    /// Guest-library optimization level.
    pub opts: OptConfig,
}

impl PlatformConfig {
    /// The paper's default platform: one paper-default GPU server behind a
    /// round-robin backend, default retries, no admission control.
    pub fn paper_default() -> PlatformConfig {
        PlatformConfig {
            seed: 42,
            server: GpuServerConfig::paper_default(),
            num_servers: 1,
            policy: FleetPolicy::RoundRobin,
            retry: RetryPolicy::default(),
            admission: None,
            opts: OptConfig::full(),
        }
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the per-server shape.
    pub fn with_server(mut self, server: GpuServerConfig) -> Self {
        self.server = server;
        self
    }

    /// Builder-style: set the fleet size.
    pub fn with_num_servers(mut self, n: usize) -> Self {
        assert!(n >= 1, "a fleet needs at least one server");
        self.num_servers = n;
        self
    }

    /// Builder-style: set the cluster-balancer routing policy.
    pub fn with_fleet_policy(mut self, policy: FleetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style: install a complete admission configuration.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Builder-style: admission control with a platform-wide in-flight
    /// cap (creating a default [`AdmissionConfig`] if none is set yet).
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        let adm = match self.admission.take() {
            Some(mut a) => {
                a.max_inflight = n.max(1);
                a
            }
            None => AdmissionConfig::new(n),
        };
        self.admission = Some(adm);
        self
    }

    /// Builder-style: bound per-attempt queue wait (requires admission
    /// control; creates one with the given cap applied to an existing
    /// config, or panics if none is configured yet).
    pub fn with_max_queue_age(mut self, d: dgsf_sim::Dur) -> Self {
        let adm = self
            .admission
            .take()
            .expect("set with_max_inflight before with_max_queue_age");
        self.admission = Some(adm.with_max_queue_age(d));
        self
    }

    /// Builder-style: per-tenant weighted fair shedding (requires
    /// admission control to be configured first).
    pub fn with_weighted_fair(mut self, fairness: FairShedConfig) -> Self {
        let adm = self
            .admission
            .take()
            .expect("set with_max_inflight before with_weighted_fair");
        self.admission = Some(adm.with_weighted_fair(fairness));
        self
    }

    /// Builder-style: set the guest-library optimization level.
    pub fn with_opts(mut self, opts: OptConfig) -> Self {
        self.opts = opts;
        self
    }

    /// The shed policy this platform implements.
    pub fn shed_policy(&self) -> ShedPolicy {
        self.admission
            .as_ref()
            .map(|a| a.shed_policy())
            .unwrap_or(ShedPolicy::Fifo)
    }

    /// View as a single-server [`TestbedConfig`] (fleet settings dropped).
    pub fn testbed(&self) -> TestbedConfig {
        TestbedConfig {
            seed: self.seed,
            server: self.server.clone(),
            opts: self.opts,
        }
    }

    /// View as a [`BackendRunConfig`] for the backend-level runner.
    pub fn backend(&self) -> BackendRunConfig {
        BackendRunConfig {
            seed: self.seed,
            server: self.server.clone(),
            num_servers: self.num_servers,
            policy: self.policy,
            retry: self.retry,
            admission: self.admission.clone(),
            opts: self.opts,
        }
    }
}

impl From<PlatformConfig> for TestbedConfig {
    fn from(p: PlatformConfig) -> TestbedConfig {
        p.testbed()
    }
}

impl From<PlatformConfig> for BackendRunConfig {
    fn from(p: PlatformConfig) -> BackendRunConfig {
        p.backend()
    }
}

impl From<TestbedConfig> for PlatformConfig {
    fn from(t: TestbedConfig) -> PlatformConfig {
        PlatformConfig::paper_default()
            .with_seed(t.seed)
            .with_server(t.server)
            .with_opts(t.opts)
    }
}

impl From<BackendRunConfig> for PlatformConfig {
    fn from(b: BackendRunConfig) -> PlatformConfig {
        PlatformConfig {
            seed: b.seed,
            server: b.server,
            num_servers: b.num_servers,
            policy: b.policy,
            retry: b.retry,
            admission: b.admission,
            opts: b.opts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Dur;

    #[test]
    fn builder_round_trips_through_backend_config() {
        let cfg = PlatformConfig::paper_default()
            .with_seed(9)
            .with_num_servers(4)
            .with_fleet_policy(FleetPolicy::LoadAware)
            .with_max_inflight(32)
            .with_max_queue_age(Dur::from_secs(2))
            .with_weighted_fair(FairShedConfig::new());
        let b = cfg.backend();
        assert_eq!(b.seed, 9);
        assert_eq!(b.num_servers, 4);
        assert_eq!(b.policy, FleetPolicy::LoadAware);
        let adm = b.admission.expect("admission configured");
        assert_eq!(adm.max_inflight, 32);
        assert_eq!(adm.shed_policy(), ShedPolicy::WeightedFair);
        let back: PlatformConfig = cfg.backend().into();
        assert_eq!(back.num_servers, 4);
    }

    #[test]
    fn testbed_view_keeps_seed_and_server_shape() {
        let cfg = PlatformConfig::paper_default().with_seed(3);
        let t = cfg.testbed();
        assert_eq!(t.seed, 3);
        assert_eq!(t.server.num_gpus, cfg.server.num_gpus);
    }

    #[test]
    fn shed_policy_reflects_fairness() {
        let fifo = PlatformConfig::paper_default().with_max_inflight(8);
        assert_eq!(fifo.shed_policy(), ShedPolicy::Fifo);
        let fair = fifo.with_weighted_fair(FairShedConfig::new());
        assert_eq!(fair.shed_policy(), ShedPolicy::WeightedFair);
    }
}
