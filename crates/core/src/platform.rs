//! [`PlatformConfig`]: the single entry point for configuring a DGSF
//! platform run.
//!
//! Experiment configuration used to be scattered over five types —
//! [`TestbedConfig`], [`BackendRunConfig`], [`GpuServerConfig`],
//! [`AdmissionConfig`] and [`RetryPolicy`] — each with its own defaults.
//! `PlatformConfig` consolidates them behind one builder: start from
//! [`PlatformConfig::paper_default`], chain `with_*` calls, and hand the
//! result to [`Testbed::run_platform_schedule`](crate::Testbed::run_platform_schedule)
//! (or convert into the legacy types, which remain as thin views so
//! existing code compiles unchanged).
//!
//! ```
//! use dgsf::{PlatformConfig, Testbed};
//! use dgsf::serverless::{FairShedConfig, FleetPolicy};
//!
//! let cfg = PlatformConfig::paper_default()
//!     .with_seed(7)
//!     .with_num_servers(4)
//!     .with_fleet_policy(FleetPolicy::LoadAware)
//!     .with_max_inflight(64)
//!     .with_weighted_fair(FairShedConfig::new().with_weight("hot", 1));
//! assert_eq!(cfg.backend().num_servers, 4);
//! ```

use dgsf_remoting::OptConfig;
use dgsf_server::{FleetPolicy, GpuServerConfig, MqfqConfig, QueuePolicy, ShedPolicy};
use dgsf_serverless::{AdmissionConfig, FairShedConfig, RetryPolicy, StickyConfig};
use dgsf_sim::ObsConfig;

use crate::testbed::{BackendRunConfig, TestbedConfig};

/// A rejected [`PlatformConfig`]: the build was internally inconsistent
/// in a way that would silently distort a run (e.g. a zero fairness
/// weight, which would starve that tenant forever).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A fair-shedding or MQFQ weight map names a tenant with weight 0.
    ZeroWeight {
        /// Which policy the weight belongs to (`"fair_shed"` / `"mqfq"`).
        policy: &'static str,
        /// The offending tenant.
        tenant: String,
    },
    /// The default weight of a weight map is 0, so every unnamed tenant
    /// would weigh nothing.
    ZeroDefaultWeight {
        /// Which policy the default belongs to (`"fair_shed"` / `"mqfq"`).
        policy: &'static str,
    },
    /// The MQFQ provisional service charge is 0, which would collapse the
    /// in-flight rotation.
    ZeroAssumedService,
    /// The sticky max-share bound is outside 1..=1000 per mille.
    BadStickyShare(u64),
    /// Pipelined host→GPU transfers are enabled with a zero chunk size, so
    /// the DMA engines would have nothing to slice copies into.
    ZeroDmaChunk,
    /// Pipelined host→GPU transfers are enabled with zero DMA engines, so
    /// no transfer could ever start.
    ZeroDmaEngines,
    /// The observability-plane configuration is internally inconsistent
    /// (zero window, inverted burn-window pair, zero budget, ...).
    BadObsConfig(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWeight { policy, tenant } => write!(
                f,
                "{policy} weight for tenant {tenant:?} is 0: a zero-weight tenant \
                 would be starved forever; give every tenant a weight >= 1"
            ),
            ConfigError::ZeroDefaultWeight { policy } => write!(
                f,
                "{policy} default weight is 0: tenants without an explicit weight \
                 would be starved forever; use a default weight >= 1"
            ),
            ConfigError::ZeroAssumedService => write!(
                f,
                "MQFQ assumed_service_ns is 0: the provisional in-flight charge \
                 must be at least 1 ns"
            ),
            ConfigError::BadStickyShare(p) => write!(
                f,
                "sticky max_share_permille is {p}: must be within 1..=1000 \
                 (per mille of the fleet one tenant may hold)"
            ),
            ConfigError::ZeroDmaChunk => write!(
                f,
                "h2d_pipelined is set with h2d_chunk_bytes 0: pipelined \
                 transfers need a non-zero chunk size to slice copies into"
            ),
            ConfigError::ZeroDmaEngines => write!(
                f,
                "h2d_pipelined is set with h2d_dma_engines 0: pipelined \
                 transfers need at least one DMA engine to run on"
            ),
            ConfigError::BadObsConfig(reason) => write!(f, "obs config rejected: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// One consolidated configuration for a whole platform run: the RNG seed,
/// the shape of every GPU server, the fleet in front of them, and the
/// backend's routing, retry and admission policies.
#[derive(Clone)]
pub struct PlatformConfig {
    /// RNG seed (arrivals, jitter).
    pub seed: u64,
    /// Shape of each GPU server in the fleet.
    pub server: GpuServerConfig,
    /// Fleet size (number of GPU servers behind the backend).
    pub num_servers: usize,
    /// Cluster-balancer routing policy.
    pub policy: FleetPolicy,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Optional admission control (overload shedding).
    pub admission: Option<AdmissionConfig>,
    /// Optional bounded sticky tenant→server placement (MQFQ-Sticky's
    /// locality half).
    pub sticky: Option<StickyConfig>,
    /// Guest-library optimization level.
    pub opts: OptConfig,
    /// Optional online observability plane: streaming windowed
    /// aggregation, burn-rate alerting, health scoring, and the signals a
    /// predictive autoscaler consumes.
    pub obs: Option<ObsConfig>,
}

impl PlatformConfig {
    /// The paper's default platform: one paper-default GPU server behind a
    /// round-robin backend, default retries, no admission control.
    pub fn paper_default() -> PlatformConfig {
        PlatformConfig {
            seed: 42,
            server: GpuServerConfig::paper_default(),
            num_servers: 1,
            policy: FleetPolicy::RoundRobin,
            retry: RetryPolicy::default(),
            admission: None,
            sticky: None,
            opts: OptConfig::full(),
            obs: None,
        }
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the per-server shape.
    pub fn with_server(mut self, server: GpuServerConfig) -> Self {
        self.server = server;
        self
    }

    /// Builder-style: set the fleet size.
    pub fn with_num_servers(mut self, n: usize) -> Self {
        assert!(n >= 1, "a fleet needs at least one server");
        self.num_servers = n;
        self
    }

    /// Builder-style: set the cluster-balancer routing policy.
    pub fn with_fleet_policy(mut self, policy: FleetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style: install a complete admission configuration.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Builder-style: admission control with a platform-wide in-flight
    /// cap (creating a default [`AdmissionConfig`] if none is set yet).
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        let adm = match self.admission.take() {
            Some(mut a) => {
                a.max_inflight = n.max(1);
                a
            }
            None => AdmissionConfig::new(n),
        };
        self.admission = Some(adm);
        self
    }

    /// Builder-style: bound per-attempt queue wait (requires admission
    /// control; creates one with the given cap applied to an existing
    /// config, or panics if none is configured yet).
    pub fn with_max_queue_age(mut self, d: dgsf_sim::Dur) -> Self {
        let adm = self
            .admission
            .take()
            .expect("set with_max_inflight before with_max_queue_age");
        self.admission = Some(adm.with_max_queue_age(d));
        self
    }

    /// Builder-style: per-tenant weighted fair shedding (requires
    /// admission control to be configured first).
    pub fn with_weighted_fair(mut self, fairness: FairShedConfig) -> Self {
        let adm = self
            .admission
            .take()
            .expect("set with_max_inflight before with_weighted_fair");
        self.admission = Some(adm.with_weighted_fair(fairness));
        self
    }

    /// Builder-style: switch every GPU server's queue to per-tenant MQFQ
    /// fair queueing under `weights`.
    pub fn with_mqfq(mut self, weights: MqfqConfig) -> Self {
        self.server = self.server.with_fair_queue(weights);
        self
    }

    /// Builder-style: enable bounded sticky tenant→server placement.
    pub fn with_sticky(mut self, sticky: StickyConfig) -> Self {
        self.sticky = Some(sticky);
        self
    }

    /// Builder-style: set the guest-library optimization level.
    pub fn with_opts(mut self, opts: OptConfig) -> Self {
        self.opts = opts;
        self
    }

    /// Builder-style: enable the online observability plane. The runner
    /// builds one [`dgsf_sim::ObsPlane`] per run, feeds it from the
    /// backend and every monitor, and attaches its [`dgsf_sim::ObsReport`]
    /// to the run output.
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Check the configuration for inconsistencies that would silently
    /// distort a run: zero (or zero-total) fairness weights, a zero MQFQ
    /// provisional charge, an out-of-range sticky share. The platform
    /// runners call this before provisioning anything.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(fair) = self.admission.as_ref().and_then(|a| a.fairness.as_ref()) {
            check_weights("fair_shed", &fair.weights, fair.default_weight)?;
        }
        if self.server.queue == QueuePolicy::Mqfq {
            let default = MqfqConfig::default();
            let mqfq = self.server.fair_queue.as_ref().unwrap_or(&default);
            check_weights("mqfq", &mqfq.weights, mqfq.default_weight)?;
            if mqfq.assumed_service_ns == 0 {
                return Err(ConfigError::ZeroAssumedService);
            }
        }
        if let Some(sticky) = &self.sticky {
            if !(1..=1000).contains(&sticky.max_share_permille) {
                return Err(ConfigError::BadStickyShare(sticky.max_share_permille));
            }
        }
        if self.server.costs.h2d_pipelined {
            if self.server.costs.h2d_chunk_bytes == 0 {
                return Err(ConfigError::ZeroDmaChunk);
            }
            if self.server.costs.h2d_dma_engines == 0 {
                return Err(ConfigError::ZeroDmaEngines);
            }
        }
        if let Some(obs) = &self.obs {
            obs.validate().map_err(ConfigError::BadObsConfig)?;
        }
        Ok(())
    }

    /// The shed policy this platform implements.
    pub fn shed_policy(&self) -> ShedPolicy {
        self.admission
            .as_ref()
            .map(|a| a.shed_policy())
            .unwrap_or(ShedPolicy::Fifo)
    }

    /// View as a single-server [`TestbedConfig`] (fleet settings dropped).
    pub fn testbed(&self) -> TestbedConfig {
        TestbedConfig {
            seed: self.seed,
            server: self.server.clone(),
            opts: self.opts,
        }
    }

    /// View as a [`BackendRunConfig`] for the backend-level runner.
    pub fn backend(&self) -> BackendRunConfig {
        BackendRunConfig {
            seed: self.seed,
            server: self.server.clone(),
            num_servers: self.num_servers,
            policy: self.policy,
            retry: self.retry,
            admission: self.admission.clone(),
            sticky: self.sticky.clone(),
            opts: self.opts,
            obs: self.obs.clone(),
        }
    }
}

/// Reject zero weights in a tenant→weight map: the builders clamp to 1,
/// but both config types expose public fields, and a literal 0 would
/// starve the tenant (fair shed) or stall its virtual clock (MQFQ).
fn check_weights(
    policy: &'static str,
    weights: &std::collections::BTreeMap<String, u64>,
    default_weight: u64,
) -> Result<(), ConfigError> {
    if let Some((tenant, _)) = weights.iter().find(|(_, &w)| w == 0) {
        return Err(ConfigError::ZeroWeight {
            policy,
            tenant: tenant.clone(),
        });
    }
    if default_weight == 0 {
        return Err(ConfigError::ZeroDefaultWeight { policy });
    }
    Ok(())
}

impl From<PlatformConfig> for TestbedConfig {
    fn from(p: PlatformConfig) -> TestbedConfig {
        p.testbed()
    }
}

impl From<PlatformConfig> for BackendRunConfig {
    fn from(p: PlatformConfig) -> BackendRunConfig {
        p.backend()
    }
}

impl From<TestbedConfig> for PlatformConfig {
    fn from(t: TestbedConfig) -> PlatformConfig {
        PlatformConfig::paper_default()
            .with_seed(t.seed)
            .with_server(t.server)
            .with_opts(t.opts)
    }
}

impl From<BackendRunConfig> for PlatformConfig {
    fn from(b: BackendRunConfig) -> PlatformConfig {
        PlatformConfig {
            seed: b.seed,
            server: b.server,
            num_servers: b.num_servers,
            policy: b.policy,
            retry: b.retry,
            admission: b.admission,
            sticky: b.sticky,
            opts: b.opts,
            obs: b.obs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_sim::Dur;

    #[test]
    fn builder_round_trips_through_backend_config() {
        let cfg = PlatformConfig::paper_default()
            .with_seed(9)
            .with_num_servers(4)
            .with_fleet_policy(FleetPolicy::LoadAware)
            .with_max_inflight(32)
            .with_max_queue_age(Dur::from_secs(2))
            .with_weighted_fair(FairShedConfig::new());
        let b = cfg.backend();
        assert_eq!(b.seed, 9);
        assert_eq!(b.num_servers, 4);
        assert_eq!(b.policy, FleetPolicy::LoadAware);
        let adm = b.admission.expect("admission configured");
        assert_eq!(adm.max_inflight, 32);
        assert_eq!(adm.shed_policy(), ShedPolicy::WeightedFair);
        let back: PlatformConfig = cfg.backend().into();
        assert_eq!(back.num_servers, 4);
    }

    #[test]
    fn testbed_view_keeps_seed_and_server_shape() {
        let cfg = PlatformConfig::paper_default().with_seed(3);
        let t = cfg.testbed();
        assert_eq!(t.seed, 3);
        assert_eq!(t.server.num_gpus, cfg.server.num_gpus);
    }

    #[test]
    fn shed_policy_reflects_fairness() {
        let fifo = PlatformConfig::paper_default().with_max_inflight(8);
        assert_eq!(fifo.shed_policy(), ShedPolicy::Fifo);
        let fair = fifo.with_weighted_fair(FairShedConfig::new());
        assert_eq!(fair.shed_policy(), ShedPolicy::WeightedFair);
    }

    #[test]
    fn validate_accepts_the_defaults_and_well_formed_fairness() {
        assert_eq!(PlatformConfig::paper_default().validate(), Ok(()));
        let cfg = PlatformConfig::paper_default()
            .with_max_inflight(8)
            .with_weighted_fair(FairShedConfig::new().with_weight("hot", 3))
            .with_mqfq(MqfqConfig::new().with_weight("hot", 3))
            .with_sticky(StickyConfig::new());
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_fair_shed_weights() {
        // The builders clamp to 1; a literal 0 needs the public fields.
        let mut fair = FairShedConfig::new();
        fair.weights.insert("ghost".into(), 0);
        let cfg = PlatformConfig::paper_default()
            .with_max_inflight(8)
            .with_weighted_fair(fair);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroWeight {
                policy: "fair_shed",
                tenant: "ghost".into(),
            })
        );
        let mut fair2 = FairShedConfig::new();
        fair2.default_weight = 0;
        let cfg2 = PlatformConfig::paper_default()
            .with_max_inflight(8)
            .with_weighted_fair(fair2);
        assert_eq!(
            cfg2.validate(),
            Err(ConfigError::ZeroDefaultWeight {
                policy: "fair_shed"
            })
        );
    }

    #[test]
    fn validate_rejects_zero_mqfq_weights_and_charge() {
        let mut mqfq = MqfqConfig::new();
        mqfq.weights.insert("ghost".into(), 0);
        let cfg = PlatformConfig::paper_default().with_mqfq(mqfq);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroWeight {
                policy: "mqfq",
                tenant: "ghost".into(),
            })
        );
        let mut mqfq2 = MqfqConfig::new();
        mqfq2.default_weight = 0;
        assert_eq!(
            PlatformConfig::paper_default().with_mqfq(mqfq2).validate(),
            Err(ConfigError::ZeroDefaultWeight { policy: "mqfq" })
        );
        let mqfq3 = MqfqConfig::new().with_assumed_service(0);
        assert_eq!(
            PlatformConfig::paper_default().with_mqfq(mqfq3).validate(),
            Err(ConfigError::ZeroAssumedService)
        );
        // The same weights are fine when MQFQ is not the queue policy:
        // validation judges what the run will actually use.
        let mut unused = PlatformConfig::paper_default();
        unused.server.fair_queue = Some(MqfqConfig::new().with_assumed_service(0));
        assert_eq!(unused.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_sticky_share() {
        let mut sticky = StickyConfig::new();
        sticky.max_share_permille = 0;
        let cfg = PlatformConfig::paper_default().with_sticky(sticky);
        assert_eq!(cfg.validate(), Err(ConfigError::BadStickyShare(0)));
        let mut sticky2 = StickyConfig::new();
        sticky2.max_share_permille = 1500;
        let cfg2 = PlatformConfig::paper_default().with_sticky(sticky2);
        assert_eq!(cfg2.validate(), Err(ConfigError::BadStickyShare(1500)));
        // Error messages are actionable.
        let msg = cfg2.validate().unwrap_err().to_string();
        assert!(msg.contains("1500") && msg.contains("1..=1000"), "{msg}");
    }

    #[test]
    fn validate_rejects_degenerate_pipelined_transfer_knobs() {
        // The builder keeps chunk/engines sane; a literal 0 needs the
        // public fields, and only matters once pipelining is switched on.
        let mut cfg = PlatformConfig::paper_default();
        cfg.server.costs.h2d_chunk_bytes = 0;
        cfg.server.costs.h2d_dma_engines = 0;
        assert_eq!(cfg.validate(), Ok(()), "knobs are inert while disabled");
        cfg.server.costs.h2d_pipelined = true;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroDmaChunk));
        cfg.server.costs.h2d_chunk_bytes = 1 << 20;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroDmaEngines));
        cfg.server.costs.h2d_dma_engines = 2;
        assert_eq!(cfg.validate(), Ok(()));
        // And the builder-configured form is valid as-is.
        let built = PlatformConfig::paper_default()
            .with_server(GpuServerConfig::paper_default().with_pipelined_h2d(4 << 20, 2));
        assert_eq!(built.validate(), Ok(()));
    }

    #[test]
    fn sticky_round_trips_through_backend_config() {
        let cfg = PlatformConfig::paper_default()
            .with_sticky(StickyConfig::new().with_max_share(250))
            .with_mqfq(MqfqConfig::new().with_weight("hot", 2));
        let b = cfg.backend();
        assert_eq!(b.sticky.as_ref().map(|s| s.max_share_permille), Some(250));
        let back: PlatformConfig = b.into();
        assert_eq!(back.sticky.map(|s| s.max_share_permille), Some(250));
        assert_eq!(back.server.queue, QueuePolicy::Mqfq);
        assert_eq!(back.server.fair_queue.map(|m| m.weight_of("hot")), Some(2));
    }
}
