//! CUDA contexts and their stream executors.
//!
//! A [`CudaContext`] is bound to one physical GPU and owns everything whose
//! *values* are context-specific in real CUDA: kernel function pointers,
//! stream/event handles, and cuDNN/cuBLAS library handles (with their device
//! memory footprints). DGSF's API servers keep one context per GPU and
//! translate client-visible handles to per-context twins on migration
//! (paper §V-D); [`crate::GpuSession`] implements that translation.
//!
//! Each context runs one **stream executor per stream** — simulated
//! processes that drain in-order queues of kernel launches, library ops and
//! memsets against the context's GPU. Launches are therefore asynchronous to
//! the caller (as in CUDA), work on different streams of the same context
//! overlaps (contending on the GPU's processor-sharing compute engine, as
//! under Hyper-Q), co-located contexts contend the same way, and
//! `cudaDeviceSynchronize` / `cudaStreamSynchronize` are real rendezvous.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgsf_gpu::{Gpu, PhysId, ReservationId, VaSpace};
use dgsf_sim::{ProcCtx, SimHandle, SimSender};
use parking_lot::Mutex;

use crate::costs::CostTable;
use crate::error::{CudaError, CudaResult};
use crate::module::ModuleRegistry;
use crate::types::{DevPtr, KernelArgs, LaunchConfig};
use crate::view::DeviceView;

static NEXT_CTX_ID: AtomicU64 = AtomicU64::new(1);

/// Commands accepted by a context's stream executor, in order.
pub(crate) enum StreamCmd {
    /// Launch a kernel.
    Exec {
        name: String,
        cfg: LaunchConfig,
        args: KernelArgs,
        va: Arc<Mutex<VaSpace>>,
        registry: Arc<ModuleRegistry>,
    },
    /// An aggregate cuDNN/cuBLAS operation costing `work` GPU-seconds.
    LibOp { work: f64 },
    /// Asynchronous device memset.
    Memset {
        va: Arc<Mutex<VaSpace>>,
        ptr: DevPtr,
        len: u64,
        value: u8,
    },
    /// Rendezvous: reply once all prior commands have retired.
    Sync { done: SimSender<()> },
}

/// A device buffer parked in a context's resident store between DAG
/// stages: the physical allocation survives while no session maps it.
#[derive(Debug, Clone, Copy)]
pub struct ResidentBuf {
    /// Physical allocation handle on the context's GPU.
    pub phys: PhysId,
    /// Bytes the publishing session originally requested.
    pub requested: u64,
    /// Bytes actually mapped (requested rounded up to VA granularity).
    pub mapped: u64,
}

/// Audit-log entry for the resident store — the raw material of the
/// leak/exactly-once oracle: every `Published` key must later appear as
/// exactly one `Adopted` or `Reclaimed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidentEvent {
    /// A session parked a buffer under `key` without freeing its physical
    /// allocation.
    Published {
        /// Handoff key.
        key: u64,
        /// Mapped bytes parked.
        bytes: u64,
    },
    /// A (possibly different) session mapped the parked buffer into its
    /// own VA space and took ownership.
    Adopted {
        /// Handoff key.
        key: u64,
        /// Mapped bytes adopted.
        bytes: u64,
    },
    /// The buffer was freed without ever being adopted — on explicit
    /// reclaim after a DAG abort, or at context teardown.
    Reclaimed {
        /// Handoff key.
        key: u64,
        /// Mapped bytes returned to the GPU.
        bytes: u64,
    },
}

/// A CUDA context bound to one physical GPU.
pub struct CudaContext {
    /// Globally unique context id.
    pub id: u64,
    gpu: Arc<Gpu>,
    costs: Arc<CostTable>,
    handle: SimHandle,
    ctx_reservation: Mutex<Option<ReservationId>>,
    next_handle: AtomicU64,
    fptrs: Mutex<HashMap<String, u64>>,
    fptr_names: Mutex<HashMap<u64, String>>,
    streams: Mutex<HashSet<u64>>,
    events: Mutex<HashSet<u64>>,
    /// Library handles; `None` reservation for pooled handles whose memory
    /// is pre-reserved in the owning API server's idle footprint.
    cudnn: Mutex<HashMap<u64, Option<ReservationId>>>,
    cublas: Mutex<HashMap<u64, Option<ReservationId>>>,
    /// One in-order executor per stream; key 0 is the default stream.
    /// Streams of the same context contend on the GPU's processor-sharing
    /// compute engine, so independent streams genuinely overlap.
    engines: Mutex<HashMap<u64, SimSender<StreamCmd>>>,
    /// GPU-resident handoff buffers parked between DAG stages, keyed by
    /// the handoff key chosen by the publisher. The context outlives the
    /// sessions that come and go on it, so a buffer published here stays
    /// on-device across function invocations.
    resident: Mutex<HashMap<u64, ResidentBuf>>,
    /// Append-only audit log of resident-store traffic.
    resident_log: Mutex<Vec<ResidentEvent>>,
}

/// The default stream's key in the engine table.
pub const DEFAULT_STREAM: u64 = 0;

impl CudaContext {
    /// Create a context on `gpu`, reserving its ~303 MB footprint.
    ///
    /// If `pay_init` is true the calling process sleeps for the CUDA
    /// runtime initialization latency (≈3.2 s) — the cost a native
    /// application pays on its critical path, and an API-server pool pays
    /// off the critical path at provisioning time.
    pub fn create(
        proc: &ProcCtx,
        h: &SimHandle,
        gpu: Arc<Gpu>,
        costs: Arc<CostTable>,
        pay_init: bool,
    ) -> CudaResult<Arc<CudaContext>> {
        if pay_init {
            proc.sleep(costs.cuda_init);
        }
        let reservation = gpu.reserve(costs.cuda_ctx_mem)?;
        let id = NEXT_CTX_ID.fetch_add(1, Ordering::Relaxed);
        let tx = spawn_stream_engine(h, &gpu, &costs, &format!("ctx{id}-default"));
        let mut engines = HashMap::new();
        engines.insert(DEFAULT_STREAM, tx);
        let ctx = Arc::new(CudaContext {
            id,
            gpu: Arc::clone(&gpu),
            costs: Arc::clone(&costs),
            handle: h.clone(),
            ctx_reservation: Mutex::new(Some(reservation)),
            // Handle values are context-specific: embed the context id so
            // two contexts never hand out the same value (the property the
            // paper's migration translation exists to handle).
            next_handle: AtomicU64::new((id << 32) | 1),
            fptrs: Mutex::new(HashMap::new()),
            fptr_names: Mutex::new(HashMap::new()),
            streams: Mutex::new(HashSet::new()),
            events: Mutex::new(HashSet::new()),
            cudnn: Mutex::new(HashMap::new()),
            cublas: Mutex::new(HashMap::new()),
            engines: Mutex::new(engines),
            resident: Mutex::new(HashMap::new()),
            resident_log: Mutex::new(Vec::new()),
        });
        Ok(ctx)
    }

    /// The physical GPU this context is bound to.
    pub fn gpu(&self) -> &Arc<Gpu> {
        &self.gpu
    }

    /// The calibrated cost table.
    pub fn costs(&self) -> &Arc<CostTable> {
        &self.costs
    }

    /// Enqueue a command on the context's default stream.
    pub(crate) fn submit(&self, proc: &ProcCtx, cmd: StreamCmd) {
        self.submit_on(proc, DEFAULT_STREAM, cmd);
    }

    /// Enqueue a command on a specific native stream. Unknown streams fall
    /// back to the default stream (callers validate handles beforehand).
    pub(crate) fn submit_on(&self, proc: &ProcCtx, stream: u64, cmd: StreamCmd) {
        let tx = {
            let engines = self.engines.lock();
            engines
                .get(&stream)
                .or_else(|| engines.get(&DEFAULT_STREAM))
                .cloned()
                .expect("default stream engine always exists")
        };
        tx.send(proc, cmd);
    }

    /// Block until every previously submitted command on *every* stream has
    /// retired (`cudaDeviceSynchronize`).
    pub fn sync(&self, proc: &ProcCtx) {
        let senders: Vec<SimSender<StreamCmd>> = self.engines.lock().values().cloned().collect();
        let mut waits = Vec::with_capacity(senders.len());
        for tx in senders {
            let (done_tx, done_rx) = self.handle.channel::<()>();
            tx.send(proc, StreamCmd::Sync { done: done_tx });
            waits.push(done_rx);
        }
        for rx in waits {
            let _ = rx.recv(proc);
        }
    }

    /// Block until one native stream's queue has drained
    /// (`cudaStreamSynchronize`).
    pub fn sync_stream(&self, proc: &ProcCtx, stream: u64) {
        let tx = self.engines.lock().get(&stream).cloned();
        if let Some(tx) = tx {
            let (done_tx, done_rx) = self.handle.channel::<()>();
            tx.send(proc, StreamCmd::Sync { done: done_tx });
            let _ = done_rx.recv(proc);
        }
    }

    fn alloc_handle(&self) -> u64 {
        self.next_handle.fetch_add(1, Ordering::Relaxed)
    }

    /// Function pointer of kernel `name` in *this* context (assigned
    /// lazily; distinct across contexts).
    pub fn fptr_for(&self, name: &str) -> u64 {
        let mut f = self.fptrs.lock();
        if let Some(&p) = f.get(name) {
            return p;
        }
        let p = self.alloc_handle();
        f.insert(name.to_string(), p);
        self.fptr_names.lock().insert(p, name.to_string());
        p
    }

    /// Kernel name for a function pointer from this context.
    pub fn kernel_name(&self, fptr: u64) -> Option<String> {
        self.fptr_names.lock().get(&fptr).cloned()
    }

    /// Create a stream in this context with its own in-order executor;
    /// returns the context-local handle.
    pub fn create_stream(&self) -> u64 {
        let s = self.alloc_handle();
        self.streams.lock().insert(s);
        let tx = spawn_stream_engine(
            &self.handle,
            &self.gpu,
            &self.costs,
            &format!("ctx{}-stream{s:x}", self.id),
        );
        self.engines.lock().insert(s, tx);
        s
    }

    /// Destroy a context-local stream handle (its executor exits at
    /// simulation shutdown; pending work was drained by the caller).
    pub fn destroy_stream(&self, s: u64) -> bool {
        self.engines.lock().remove(&s);
        self.streams.lock().remove(&s)
    }

    /// True if `s` is a live stream of this context.
    pub fn has_stream(&self, s: u64) -> bool {
        self.streams.lock().contains(&s)
    }

    /// Create an event in this context.
    pub fn create_event(&self) -> u64 {
        let e = self.alloc_handle();
        self.events.lock().insert(e);
        e
    }

    /// Destroy a context-local event handle.
    pub fn destroy_event(&self, e: u64) -> bool {
        self.events.lock().remove(&e)
    }

    /// Create a cuDNN handle in this context. Pays the ≈1.2 s creation
    /// latency when `pay_time` (pool pre-creation at provisioning and the
    /// unoptimized cold path pass `true`; migration twin creation passes
    /// `false` — memory but no creation latency).
    pub fn create_cudnn_handle(&self, proc: &ProcCtx, pay_time: bool) -> CudaResult<u64> {
        if pay_time {
            proc.sleep(self.costs.cudnn_create);
        }
        let r = self.gpu.reserve(self.costs.cudnn_mem)?;
        let h = self.alloc_handle();
        self.cudnn.lock().insert(h, Some(r));
        Ok(h)
    }

    /// Hand out a cuDNN handle from the API server's pre-created pool: no
    /// creation latency and no *additional* memory (the pool's footprint is
    /// part of the server's idle 755 MB reservation).
    pub fn serve_pooled_cudnn_handle(&self) -> u64 {
        let h = self.alloc_handle();
        self.cudnn.lock().insert(h, None);
        h
    }

    /// Destroy a cuDNN handle, releasing its device footprint (if it owns
    /// one).
    pub fn destroy_cudnn_handle(&self, h: u64) -> CudaResult<()> {
        let r = self
            .cudnn
            .lock()
            .remove(&h)
            .ok_or_else(|| CudaError::InvalidResourceHandle(format!("cudnn {h:#x}")))?;
        if let Some(r) = r {
            self.gpu.release(r);
        }
        Ok(())
    }

    /// Create a cuBLAS handle in this context (≈0.2 s, 70 MB).
    pub fn create_cublas_handle(&self, proc: &ProcCtx, pay_time: bool) -> CudaResult<u64> {
        if pay_time {
            proc.sleep(self.costs.cublas_create);
        }
        let r = self.gpu.reserve(self.costs.cublas_mem)?;
        let h = self.alloc_handle();
        self.cublas.lock().insert(h, Some(r));
        Ok(h)
    }

    /// Pooled cuBLAS analogue of [`CudaContext::serve_pooled_cudnn_handle`].
    pub fn serve_pooled_cublas_handle(&self) -> u64 {
        let h = self.alloc_handle();
        self.cublas.lock().insert(h, None);
        h
    }

    /// Destroy a cuBLAS handle, releasing its device footprint (if it owns
    /// one).
    pub fn destroy_cublas_handle(&self, h: u64) -> CudaResult<()> {
        let r = self
            .cublas
            .lock()
            .remove(&h)
            .ok_or_else(|| CudaError::InvalidResourceHandle(format!("cublas {h:#x}")))?;
        if let Some(r) = r {
            self.gpu.release(r);
        }
        Ok(())
    }

    /// Number of live cuDNN handles.
    pub fn cudnn_handle_count(&self) -> usize {
        self.cudnn.lock().len()
    }

    /// Number of live cuBLAS handles.
    pub fn cublas_handle_count(&self) -> usize {
        self.cublas.lock().len()
    }

    /// Park a buffer in the resident store under `key`. Fails if the key
    /// is already taken (handoff keys are single-use by construction).
    pub fn publish_resident(&self, key: u64, buf: ResidentBuf) -> CudaResult<()> {
        let mut map = self.resident.lock();
        if map.contains_key(&key) {
            return Err(CudaError::InvalidResourceHandle(format!(
                "resident key {key:#x} already published"
            )));
        }
        map.insert(key, buf);
        self.resident_log.lock().push(ResidentEvent::Published {
            key,
            bytes: buf.mapped,
        });
        Ok(())
    }

    /// Look at the buffer parked under `key` without taking it.
    pub fn resident_peek(&self, key: u64) -> CudaResult<ResidentBuf> {
        self.resident.lock().get(&key).copied().ok_or_else(|| {
            CudaError::InvalidResourceHandle(format!("resident key {key:#x} not published"))
        })
    }

    /// Take ownership of the buffer parked under `key`, logging the
    /// adoption. The caller is now responsible for the physical allocation.
    pub fn take_resident(&self, key: u64) -> CudaResult<ResidentBuf> {
        let buf = self.resident.lock().remove(&key).ok_or_else(|| {
            CudaError::InvalidResourceHandle(format!("resident key {key:#x} not published"))
        })?;
        self.resident_log.lock().push(ResidentEvent::Adopted {
            key,
            bytes: buf.mapped,
        });
        Ok(buf)
    }

    /// Free the buffer parked under `key` without adopting it (DAG abort
    /// path). Returns false if no such buffer is parked here.
    pub fn reclaim_resident(&self, key: u64) -> bool {
        let Some(buf) = self.resident.lock().remove(&key) else {
            return false;
        };
        self.gpu.mem_free(buf.phys);
        self.resident_log.lock().push(ResidentEvent::Reclaimed {
            key,
            bytes: buf.mapped,
        });
        true
    }

    /// Number of buffers currently parked in the resident store.
    pub fn resident_count(&self) -> usize {
        self.resident.lock().len()
    }

    /// Snapshot of the resident-store audit log, in publish/adopt order.
    pub fn resident_events(&self) -> Vec<ResidentEvent> {
        self.resident_log.lock().clone()
    }

    /// Tear the context down: release its footprint and all library handle
    /// reservations, and reclaim any resident buffers never adopted. (The
    /// stream executor exits at simulation shutdown.)
    pub fn release(&self) {
        // Sort for determinism: HashMap iteration order is seeded per
        // process, and reclaim order reaches the GPU free lists and log.
        let mut orphans: Vec<u64> = self.resident.lock().keys().copied().collect();
        orphans.sort_unstable();
        for key in orphans {
            self.reclaim_resident(key);
        }
        if let Some(r) = self.ctx_reservation.lock().take() {
            self.gpu.release(r);
        }
        for (_, r) in self.cudnn.lock().drain() {
            if let Some(r) = r {
                self.gpu.release(r);
            }
        }
        for (_, r) in self.cublas.lock().drain() {
            if let Some(r) = r {
                self.gpu.release(r);
            }
        }
    }
}

/// Spawn an in-order stream executor against `gpu`; returns its inbox.
fn spawn_stream_engine(
    h: &SimHandle,
    gpu: &Arc<Gpu>,
    costs: &Arc<CostTable>,
    label: &str,
) -> SimSender<StreamCmd> {
    let (tx, rx) = h.channel::<StreamCmd>();
    let exec_gpu = Arc::clone(gpu);
    let exec_costs = Arc::clone(costs);
    h.spawn(&format!("stream-exec-{label}"), move |pctx| {
        while let Some(cmd) = rx.recv(pctx) {
            match cmd {
                StreamCmd::Exec {
                    name,
                    cfg,
                    args,
                    va,
                    registry,
                } => {
                    let def = registry
                        .get(&name)
                        .unwrap_or_else(|| panic!("unvalidated kernel {name:?} reached executor"));
                    let work = def.cost.eval(&args);
                    exec_gpu.exec(pctx, work);
                    if let Some(f) = &def.func {
                        let vag = va.lock();
                        let mut view = DeviceView::new(&vag, &exec_gpu);
                        f(&mut view, &cfg, &args);
                    }
                }
                StreamCmd::LibOp { work } => {
                    exec_gpu.exec(pctx, work);
                }
                StreamCmd::Memset {
                    va,
                    ptr,
                    len,
                    value,
                } => {
                    exec_gpu.exec(pctx, len as f64 / exec_costs.memset_bw);
                    let vag = va.lock();
                    let mut view = DeviceView::new(&vag, &exec_gpu);
                    view.fill(ptr, len, value);
                }
                StreamCmd::Sync { done } => {
                    done.send(pctx, ());
                }
            }
        }
    });
    tx
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_gpu::{GpuId, MB};
    use dgsf_sim::{Dur, Sim};

    fn setup(sim: &Sim) -> (SimHandle, Arc<Gpu>, Arc<CostTable>) {
        let h = sim.handle();
        let gpu = Gpu::v100(&h, GpuId(0));
        (h, gpu, Arc::new(CostTable::default()))
    }

    #[test]
    fn create_pays_init_and_reserves_footprint() {
        let mut sim = Sim::new(1);
        let (h, gpu, costs) = setup(&sim);
        let g2 = gpu.clone();
        sim.spawn("app", move |proc| {
            let ctx = CudaContext::create(proc, &h, g2.clone(), costs, true).unwrap();
            assert!((proc.now().as_secs_f64() - 3.2).abs() < 1e-9);
            assert_eq!(g2.used_mem(), 303 * MB);
            ctx.release();
            assert_eq!(g2.used_mem(), 0);
        });
        sim.run();
    }

    #[test]
    fn fptrs_differ_across_contexts_but_are_stable_within_one() {
        let mut sim = Sim::new(1);
        let (h, gpu, costs) = setup(&sim);
        sim.spawn("app", move |proc| {
            let a = CudaContext::create(proc, &h, gpu.clone(), costs.clone(), false).unwrap();
            let b = CudaContext::create(proc, &h, gpu.clone(), costs, false).unwrap();
            let fa = a.fptr_for("saxpy");
            let fb = b.fptr_for("saxpy");
            assert_ne!(fa, fb, "function pointers are unique per context");
            assert_eq!(a.fptr_for("saxpy"), fa, "stable within a context");
            assert_eq!(a.kernel_name(fa).as_deref(), Some("saxpy"));
            assert_eq!(b.kernel_name(fa), None, "foreign fptr does not resolve");
        });
        sim.run();
    }

    #[test]
    fn cudnn_handle_costs_time_and_memory() {
        let mut sim = Sim::new(1);
        let (h, gpu, costs) = setup(&sim);
        let g2 = gpu.clone();
        sim.spawn("app", move |proc| {
            let ctx = CudaContext::create(proc, &h, g2.clone(), costs, false).unwrap();
            let before = proc.now();
            let hdl = ctx.create_cudnn_handle(proc, true).unwrap();
            assert!((proc.now().since(before).as_secs_f64() - 1.2).abs() < 1e-9);
            assert_eq!(g2.used_mem(), (303 + 382) * MB);
            ctx.destroy_cudnn_handle(hdl).unwrap();
            assert_eq!(g2.used_mem(), 303 * MB);
            assert!(ctx.destroy_cudnn_handle(hdl).is_err());
        });
        sim.run();
    }

    #[test]
    fn stream_executor_serializes_and_sync_waits() {
        let mut sim = Sim::new(1);
        let (h, gpu, costs) = setup(&sim);
        sim.spawn("app", move |proc| {
            let ctx = CudaContext::create(proc, &h, gpu, costs, false).unwrap();
            let registry =
                Arc::new(ModuleRegistry::new().with(crate::module::KernelDef::timed("k")));
            let va = Arc::new(Mutex::new(VaSpace::new()));
            let t0 = proc.now();
            for _ in 0..3 {
                ctx.submit(
                    proc,
                    StreamCmd::Exec {
                        name: "k".into(),
                        cfg: LaunchConfig::linear(1, 32),
                        args: KernelArgs::timed(0.5, 0),
                        va: va.clone(),
                        registry: registry.clone(),
                    },
                );
            }
            // submission is asynchronous
            assert_eq!(proc.now(), t0);
            ctx.sync(proc);
            let elapsed = proc.now().since(t0).as_secs_f64();
            assert!(
                (elapsed - 1.5).abs() < 1e-6,
                "3 × 0.5 s serialized: {elapsed}"
            );
        });
        sim.run();
    }

    #[test]
    fn sleeping_does_not_block_the_stream() {
        // Kernel runs while the host sleeps — classic async overlap.
        let mut sim = Sim::new(1);
        let (h, gpu, costs) = setup(&sim);
        sim.spawn("app", move |proc| {
            let ctx = CudaContext::create(proc, &h, gpu, costs, false).unwrap();
            let registry =
                Arc::new(ModuleRegistry::new().with(crate::module::KernelDef::timed("k")));
            let va = Arc::new(Mutex::new(VaSpace::new()));
            let t0 = proc.now();
            ctx.submit(
                proc,
                StreamCmd::Exec {
                    name: "k".into(),
                    cfg: LaunchConfig::linear(1, 32),
                    args: KernelArgs::timed(1.0, 0),
                    va,
                    registry,
                },
            );
            proc.sleep(Dur::from_secs(1)); // host work overlaps the kernel
            ctx.sync(proc);
            let elapsed = proc.now().since(t0).as_secs_f64();
            assert!(elapsed < 1.1, "kernel and host sleep overlap: {elapsed}");
        });
        sim.run();
    }
}
