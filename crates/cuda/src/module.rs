//! Kernel modules: named kernels with cost models and optional functional
//! bodies.
//!
//! A workload registers its kernels once (the fatbin the guest library sends
//! to the API server in step ② of Figure 2). Each kernel carries a *cost
//! model* (how many GPU-seconds a launch consumes) and, optionally, a
//! *functional body* that really reads/writes device memory — used by the
//! real K-means and by migration correctness tests.

use std::collections::HashMap;
use std::sync::Arc;

use crate::types::{KernelArgs, LaunchConfig};
use crate::view::DeviceView;

/// Cost model of one kernel launch, in GPU-seconds of exclusive use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelCost {
    /// Fixed cost per launch.
    Fixed(f64),
    /// `base + per_byte × args.bytes`.
    PerByte {
        /// Fixed component, seconds.
        base: f64,
        /// Seconds per byte touched.
        per_byte: f64,
    },
    /// Taken from `KernelArgs::work_hint` (trace-modeled workloads).
    FromArgs,
}

impl KernelCost {
    /// Evaluate the model for a concrete launch.
    pub fn eval(&self, args: &KernelArgs) -> f64 {
        match *self {
            KernelCost::Fixed(s) => s,
            KernelCost::PerByte { base, per_byte } => base + per_byte * args.bytes as f64,
            KernelCost::FromArgs => args.work_hint.unwrap_or(0.0),
        }
    }
}

/// A functional kernel body. Runs on the API server's stream executor with a
/// view of the application's device memory.
pub type KernelFn = Arc<dyn Fn(&mut DeviceView<'_>, &LaunchConfig, &KernelArgs) + Send + Sync>;

/// Definition of one kernel.
#[derive(Clone)]
pub struct KernelDef {
    /// Kernel symbol name.
    pub name: String,
    /// Cost model.
    pub cost: KernelCost,
    /// Optional functional body.
    pub func: Option<KernelFn>,
}

impl KernelDef {
    /// A timed-only kernel whose cost comes from the launch args.
    pub fn timed(name: &str) -> KernelDef {
        KernelDef {
            name: name.to_string(),
            cost: KernelCost::FromArgs,
            func: None,
        }
    }

    /// A functional kernel with an explicit cost model.
    pub fn functional(
        name: &str,
        cost: KernelCost,
        f: impl Fn(&mut DeviceView<'_>, &LaunchConfig, &KernelArgs) + Send + Sync + 'static,
    ) -> KernelDef {
        KernelDef {
            name: name.to_string(),
            cost,
            func: Some(Arc::new(f)),
        }
    }
}

impl std::fmt::Debug for KernelDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelDef")
            .field("name", &self.name)
            .field("cost", &self.cost)
            .field("functional", &self.func.is_some())
            .finish()
    }
}

/// The set of kernels an application ships (its "module" / fatbin).
#[derive(Default, Clone, Debug)]
pub struct ModuleRegistry {
    kernels: HashMap<String, KernelDef>,
}

impl ModuleRegistry {
    /// Empty registry.
    pub fn new() -> ModuleRegistry {
        ModuleRegistry::default()
    }

    /// Register a kernel; replaces any existing kernel of the same name.
    pub fn register(&mut self, def: KernelDef) {
        self.kernels.insert(def.name.clone(), def);
    }

    /// Builder-style registration.
    pub fn with(mut self, def: KernelDef) -> ModuleRegistry {
        self.register(def);
        self
    }

    /// Look up a kernel by name.
    pub fn get(&self, name: &str) -> Option<&KernelDef> {
        self.kernels.get(name)
    }

    /// Kernel names, unordered.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.kernels.keys().map(|s| s.as_str())
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_models_evaluate() {
        let args = KernelArgs {
            bytes: 1000,
            work_hint: Some(0.25),
            ..Default::default()
        };
        assert_eq!(KernelCost::Fixed(1.5).eval(&args), 1.5);
        assert!(
            (KernelCost::PerByte {
                base: 0.1,
                per_byte: 1e-3
            }
            .eval(&args)
                - 1.1)
                .abs()
                < 1e-12
        );
        assert_eq!(KernelCost::FromArgs.eval(&args), 0.25);
        assert_eq!(KernelCost::FromArgs.eval(&KernelArgs::default()), 0.0);
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = ModuleRegistry::new();
        r.register(KernelDef::timed("saxpy"));
        assert_eq!(r.len(), 1);
        assert!(r.get("saxpy").is_some());
        assert!(r.get("gemm").is_none());
        // replacement
        r.register(KernelDef {
            name: "saxpy".into(),
            cost: KernelCost::Fixed(1.0),
            func: None,
        });
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("saxpy").unwrap().cost, KernelCost::Fixed(1.0));
    }
}
