//! The interposition surface: every CUDA / cuDNN / cuBLAS entry point the
//! DGSF prototype captures, expressed as a trait.
//!
//! Workloads are written against `dyn CudaApi` and run unchanged in three
//! configurations, exactly as in the paper's evaluation:
//!
//! * **native** — [`crate::NativeCuda`]: direct execution on a local GPU,
//!   paying CUDA runtime initialization on the critical path;
//! * **DGSF** — the guest library in `dgsf-remoting`, which forwards
//!   remotable calls over the network and localizes/batches/pools the rest;
//! * **DGSF on AWS Lambda** — the same guest library under a
//!   lower-bandwidth, higher-latency deployment profile.

use std::collections::HashMap;
use std::sync::Arc;

use dgsf_gpu::DeviceProps;
use dgsf_sim::ProcCtx;

use crate::error::CudaResult;
use crate::module::ModuleRegistry;
use crate::types::{
    CublasHandle, CudnnDescriptor, CudnnHandle, DescriptorKind, DevPtr, EventHandle, HostBuf,
    KernelArgs, LaunchConfig, PtrAttributes, StreamHandle,
};

/// An aggregate cuDNN/cuBLAS operation (e.g. all the library calls of one
/// inference batch), carrying both its GPU cost and how many individual API
/// calls it stands for — the currency of the paper's batching/elision
/// optimizations (≤48 % of ONNX calls and ≤96 % of TF calls are elidable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LibOp {
    /// GPU-seconds of device work.
    pub work: f64,
    /// Bytes touched on device (informational).
    pub bytes: u64,
    /// Individual API calls this aggregate stands for.
    pub api_calls: u64,
    /// Of those, how many are asynchronous/localizable and can be batched
    /// or elided by the guest library.
    pub elidable_calls: u64,
}

impl LibOp {
    /// A pure-compute op standing for a single API call.
    pub fn compute(work: f64) -> LibOp {
        LibOp {
            work,
            bytes: 0,
            api_calls: 1,
            elidable_calls: 0,
        }
    }
}

/// Counters describing how an API implementation handled traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ApiStats {
    /// API calls the application issued (aggregates expanded).
    pub issued_calls: u64,
    /// Calls that crossed the network individually.
    pub remoted_calls: u64,
    /// Calls answered locally by the guest library without remoting.
    pub localized_calls: u64,
    /// Calls folded into a batch flush instead of individual round trips.
    pub batched_calls: u64,
    /// Create-calls served from a pre-created pool.
    pub pool_hits: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Bytes shipped host→device.
    pub bytes_to_device: u64,
    /// Bytes shipped device→host.
    pub bytes_to_host: u64,
    /// Per-entry-point issue counts.
    pub by_name: HashMap<&'static str, u64>,
}

impl ApiStats {
    /// Record `n` issued calls against entry point `name`.
    pub fn issue(&mut self, name: &'static str, n: u64) {
        self.issued_calls += n;
        *self.by_name.entry(name).or_insert(0) += n;
    }

    /// Fraction of issued calls that did *not* cross the network
    /// individually (the paper's "reduction in forwarded CUDA APIs").
    pub fn forwarding_reduction(&self) -> f64 {
        if self.issued_calls == 0 {
            return 0.0;
        }
        1.0 - (self.remoted_calls as f64 / self.issued_calls as f64)
    }
}

/// The virtual CUDA runtime API.
///
/// Every method takes the calling simulated process so implementations can
/// charge virtual time (host overheads, network round trips, device work).
pub trait CudaApi {
    /// Initialize the runtime (the implicit first-call initialization of
    /// real CUDA, made explicit so experiments can attribute its cost).
    fn runtime_init(&mut self, p: &ProcCtx) -> CudaResult<()>;

    /// Ship the application's kernels (Figure 2 step ②).
    fn register_module(&mut self, p: &ProcCtx, registry: Arc<ModuleRegistry>) -> CudaResult<()>;

    /// `cudaGetDeviceCount` — always 1 under DGSF, regardless of the GPU
    /// server's real inventory (§V-B "Device management functions").
    fn get_device_count(&mut self, p: &ProcCtx) -> CudaResult<u32>;

    /// `cudaGetDeviceProperties` for ordinal `dev`.
    fn get_device_properties(&mut self, p: &ProcCtx, dev: u32) -> CudaResult<DeviceProps>;

    /// `cudaSetDevice`. Only ordinal 0 is valid under DGSF.
    fn set_device(&mut self, p: &ProcCtx, dev: u32) -> CudaResult<()>;

    /// `cudaMalloc`.
    fn malloc(&mut self, p: &ProcCtx, bytes: u64) -> CudaResult<DevPtr>;

    /// `cudaFree`.
    fn free(&mut self, p: &ProcCtx, ptr: DevPtr) -> CudaResult<()>;

    /// `cudaMemset` (stream-ordered).
    fn memset(&mut self, p: &ProcCtx, ptr: DevPtr, value: u8, bytes: u64) -> CudaResult<()>;

    /// `cudaMemcpy` host→device.
    fn memcpy_h2d(&mut self, p: &ProcCtx, dst: DevPtr, src: HostBuf) -> CudaResult<()>;

    /// `cudaMemcpy` device→host. `want_data` selects real bytes vs a
    /// size-only result (trace-modeled workloads).
    fn memcpy_d2h(
        &mut self,
        p: &ProcCtx,
        src: DevPtr,
        bytes: u64,
        want_data: bool,
    ) -> CudaResult<HostBuf>;

    /// Launch a kernel by name on the default stream.
    fn launch_kernel(
        &mut self,
        p: &ProcCtx,
        name: &str,
        cfg: LaunchConfig,
        args: KernelArgs,
    ) -> CudaResult<()>;

    /// Launch a kernel on a specific stream. Work on different streams may
    /// overlap (contending on the GPU's compute engine); work on the same
    /// stream stays in order.
    fn launch_kernel_on(
        &mut self,
        p: &ProcCtx,
        stream: StreamHandle,
        name: &str,
        cfg: LaunchConfig,
        args: KernelArgs,
    ) -> CudaResult<()>;

    /// `cudaDeviceSynchronize`.
    fn device_synchronize(&mut self, p: &ProcCtx) -> CudaResult<()>;

    /// `cudaStreamCreate`.
    fn stream_create(&mut self, p: &ProcCtx) -> CudaResult<StreamHandle>;
    /// `cudaStreamDestroy`.
    fn stream_destroy(&mut self, p: &ProcCtx, s: StreamHandle) -> CudaResult<()>;
    /// `cudaStreamSynchronize`.
    fn stream_synchronize(&mut self, p: &ProcCtx, s: StreamHandle) -> CudaResult<()>;

    /// `cudaEventCreate`.
    fn event_create(&mut self, p: &ProcCtx) -> CudaResult<EventHandle>;
    /// `cudaEventRecord` (on the default stream).
    fn event_record(&mut self, p: &ProcCtx, e: EventHandle) -> CudaResult<()>;
    /// `cudaEventSynchronize`.
    fn event_synchronize(&mut self, p: &ProcCtx, e: EventHandle) -> CudaResult<()>;

    /// `cudaPointerGetAttributes` — answerable guest-side under DGSF.
    fn pointer_get_attributes(&mut self, p: &ProcCtx, ptr: DevPtr) -> CudaResult<PtrAttributes>;

    /// DGSF handoff extension: park `ptr` in the serving context's
    /// resident store under `key` — the buffer stays on the GPU, data
    /// intact, after this function exits, for a successor DAG stage to
    /// [`CudaApi::adopt_buffer`]. Not part of real CUDA; backends without
    /// a resident store report `Unsupported`.
    fn publish_buffer(&mut self, p: &ProcCtx, key: u64, ptr: DevPtr) -> CudaResult<()> {
        let _ = (p, key, ptr);
        Err(crate::error::CudaError::Unsupported(
            "publish_buffer: no resident store on this backend".into(),
        ))
    }

    /// DGSF handoff extension: adopt the buffer a predecessor stage parked
    /// under `key`, mapping it into this session at a fresh device pointer.
    fn adopt_buffer(&mut self, p: &ProcCtx, key: u64) -> CudaResult<DevPtr> {
        let _ = (p, key);
        Err(crate::error::CudaError::Unsupported(
            "adopt_buffer: no resident store on this backend".into(),
        ))
    }

    /// `cudaMallocHost` — host-only; fully emulated client-side under DGSF.
    fn malloc_host(&mut self, p: &ProcCtx, bytes: u64) -> CudaResult<()>;

    /// `cudnnCreate`.
    fn cudnn_create(&mut self, p: &ProcCtx) -> CudaResult<CudnnHandle>;
    /// `cudnnDestroy`.
    fn cudnn_destroy(&mut self, p: &ProcCtx, h: CudnnHandle) -> CudaResult<()>;
    /// Create `n` cuDNN descriptors of `kind` (aggregated: model loading
    /// issues thousands of these).
    fn cudnn_create_descriptors(
        &mut self,
        p: &ProcCtx,
        kind: DescriptorKind,
        n: u64,
    ) -> CudaResult<Vec<CudnnDescriptor>>;
    /// Configure descriptors (`cudnnSet*Descriptor` — host-side).
    fn cudnn_set_descriptors(&mut self, p: &ProcCtx, descs: &[CudnnDescriptor]) -> CudaResult<()>;
    /// Destroy descriptors.
    fn cudnn_destroy_descriptors(
        &mut self,
        p: &ProcCtx,
        descs: Vec<CudnnDescriptor>,
    ) -> CudaResult<()>;
    /// Execute an aggregate cuDNN operation.
    fn cudnn_op(&mut self, p: &ProcCtx, h: CudnnHandle, op: LibOp) -> CudaResult<()>;

    /// `cublasCreate`.
    fn cublas_create(&mut self, p: &ProcCtx) -> CudaResult<CublasHandle>;
    /// `cublasDestroy`.
    fn cublas_destroy(&mut self, p: &ProcCtx, h: CublasHandle) -> CudaResult<()>;
    /// Execute an aggregate cuBLAS operation.
    fn cublas_op(&mut self, p: &ProcCtx, h: CublasHandle, op: LibOp) -> CudaResult<()>;

    /// Traffic statistics accumulated so far.
    fn stats(&self) -> ApiStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_reduction_math() {
        let mut s = ApiStats::default();
        s.issue("cudnnOp", 100);
        s.remoted_calls = 52;
        assert!((s.forwarding_reduction() - 0.48).abs() < 1e-12);
        assert_eq!(ApiStats::default().forwarding_reduction(), 0.0);
    }

    #[test]
    fn by_name_counts_accumulate() {
        let mut s = ApiStats::default();
        s.issue("cudaMalloc", 1);
        s.issue("cudaMalloc", 2);
        assert_eq!(s.by_name["cudaMalloc"], 3);
        assert_eq!(s.issued_calls, 3);
    }
}
