//! Calibrated cost table for the virtual CUDA stack.
//!
//! Every number below either comes straight from the paper's text (§V-C,
//! §VIII) or was calibrated so the reproduced experiments land in the same
//! regime as the published ones. `EXPERIMENTS.md` records the mapping from
//! these constants to paper-reported values.

use dgsf_gpu::MB;
use dgsf_sim::Dur;

/// Calibrated latencies, footprints and bandwidths of the CUDA stack.
#[derive(Debug, Clone)]
pub struct CostTable {
    /// CUDA runtime/context initialization. Paper §V-C: "takes on average
    /// 3.2 seconds", varying 2.8–3.6 s across machines.
    pub cuda_init: Dur,
    /// Device memory held by an initialized CUDA context (§V-C: ~303 MB).
    pub cuda_ctx_mem: u64,
    /// `cudnnCreate` latency (§V-C: ~1.2 s).
    pub cudnn_create: Dur,
    /// Device memory held by a cuDNN handle. The paper says "around 386 MB"
    /// but also that the idle worker total is 755 MB; we use 382 MB so the
    /// total matches the reported 755 MB.
    pub cudnn_mem: u64,
    /// `cublasCreate` latency (§V-C: ~0.2 s).
    pub cublas_create: Dur,
    /// Device memory held by a cuBLAS handle (§V-C: ~70 MB).
    pub cublas_mem: u64,
    /// Host-side cost of one locally executed CUDA API call.
    pub native_call_overhead: Dur,
    /// Host-side cost of creating a cuDNN descriptor (a small host
    /// allocation).
    pub descriptor_create: Dur,
    /// Host-side launch overhead of one kernel (driver work, not GPU time).
    pub kernel_launch_overhead: Dur,
    /// On-device `cudaMemset` bandwidth, bytes/s.
    pub memset_bw: f64,
    /// Device-to-device copy bandwidth per DMA channel during migration,
    /// bytes/s. Calibrated against Table V (≈7 GB/s).
    pub d2d_bw_per_channel: f64,
    /// Number of DMA channels migration can spread allocations across.
    /// With >1 allocation, copies overlap — this is why Table II's
    /// multi-allocation migrations are faster per byte than Table V's
    /// single-array worst case.
    pub d2d_channels: u32,
    /// Re-creating cuDNN/cuBLAS library state on the destination context
    /// during migration (descriptor translation, workspace re-plan).
    pub migration_lib_recreate: Dur,
    /// Fixed cost of stopping the API server's handler threads and waiting
    /// for pending operations during a *forced, mid-execution* migration.
    /// Overlaps with the D2D copy — Table V's migration times follow
    /// `max(stop, copy)`: 0.50 s at 323 MB and 0.53 s at 3514 MB, then
    /// copy-dominated above.
    pub migration_stop: Dur,
    /// Pipelined host→GPU transfers: when set, `MemcpyH2D` returns as soon
    /// as the copy is staged and the DMA engines move the bytes in the
    /// background, overlapping transfer with compute (FaaSTube's data-plane
    /// observation). Kernel launches touching the destination buffer fence
    /// on the in-flight copy. Off by default — the synchronous data path
    /// (and every golden produced under it) is unchanged.
    pub h2d_pipelined: bool,
    /// Chunk size the DMA engines slice pipelined copies into, bytes.
    /// Granularity of per-chunk telemetry. Must be non-zero when
    /// `h2d_pipelined` is set.
    pub h2d_chunk_bytes: u64,
    /// Simulated DMA engines per GPU: the cap on concurrently in-flight
    /// pipelined transfers (they still share the one PCIe link's
    /// bandwidth). Must be non-zero when `h2d_pipelined` is set.
    pub h2d_dma_engines: u32,
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable {
            cuda_init: Dur::from_secs_f64(3.2),
            cuda_ctx_mem: 303 * MB,
            cudnn_create: Dur::from_secs_f64(1.2),
            cudnn_mem: 382 * MB,
            cublas_create: Dur::from_secs_f64(0.2),
            cublas_mem: 70 * MB,
            native_call_overhead: Dur::from_micros(2),
            descriptor_create: Dur::from_micros(1),
            kernel_launch_overhead: Dur::from_micros(5),
            memset_bw: 700.0e9,
            d2d_bw_per_channel: 7.0e9,
            d2d_channels: 2,
            migration_lib_recreate: Dur::from_secs_f64(0.4),
            migration_stop: Dur::from_secs_f64(0.45),
            h2d_pipelined: false,
            h2d_chunk_bytes: 4 * MB,
            h2d_dma_engines: 2,
        }
    }
}

impl CostTable {
    /// Device memory an idle, fully warmed DGSF API worker occupies:
    /// context + one cuDNN handle + one cuBLAS handle. The paper reports
    /// 755 MB (§V-C).
    pub fn idle_worker_mem(&self) -> u64 {
        self.cuda_ctx_mem + self.cudnn_mem + self.cublas_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_worker_footprint_matches_paper() {
        let c = CostTable::default();
        assert_eq!(c.idle_worker_mem(), 755 * MB);
    }

    #[test]
    fn init_latency_matches_paper() {
        let c = CostTable::default();
        assert!((c.cuda_init.as_secs_f64() - 3.2).abs() < 1e-9);
        assert!((c.cudnn_create.as_secs_f64() - 1.2).abs() < 1e-9);
        assert!((c.cublas_create.as_secs_f64() - 0.2).abs() < 1e-9);
    }
}
