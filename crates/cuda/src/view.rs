//! Functional kernels' window onto device memory.
//!
//! A [`DeviceView`] resolves virtual addresses through the application's
//! [`VaSpace`] and reads/writes the backing [`dgsf_gpu::PageStore`]s on the
//! *current* physical GPU. Because resolution goes through the VA layer,
//! functional kernels keep working unchanged after a migration — the central
//! correctness property of DGSF's VA-preserving live migration.

use dgsf_gpu::{Gpu, VaSpace};

use crate::types::DevPtr;

/// A view of device memory for one kernel execution.
pub struct DeviceView<'a> {
    va: &'a VaSpace,
    gpu: &'a Gpu,
}

impl<'a> DeviceView<'a> {
    /// Build a view over an address space and the GPU currently backing it.
    pub fn new(va: &'a VaSpace, gpu: &'a Gpu) -> DeviceView<'a> {
        DeviceView { va, gpu }
    }

    /// Read `out.len()` bytes from `ptr`, crossing mapping boundaries if
    /// needed. Panics on unmapped addresses (a device-side fault).
    pub fn read_bytes(&self, ptr: DevPtr, out: &mut [u8]) {
        let mut pos = 0usize;
        while pos < out.len() {
            let va = ptr.0 + pos as u64;
            let (phys, off, remaining) = self
                .va
                .resolve(va)
                .unwrap_or_else(|e| panic!("device fault reading {va:#x}: {e}"));
            let n = (remaining as usize).min(out.len() - pos);
            self.gpu
                .with_alloc(phys, |s| s.read(off, &mut out[pos..pos + n]))
                .unwrap_or_else(|| {
                    panic!(
                        "mapping references allocation {phys:?} not on GPU {:?}",
                        self.gpu.id
                    )
                });
            pos += n;
        }
    }

    /// Write `data` at `ptr`.
    pub fn write_bytes(&mut self, ptr: DevPtr, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let va = ptr.0 + pos as u64;
            let (phys, off, remaining) = self
                .va
                .resolve(va)
                .unwrap_or_else(|e| panic!("device fault writing {va:#x}: {e}"));
            let n = (remaining as usize).min(data.len() - pos);
            self.gpu
                .with_alloc_mut(phys, |s| s.write(off, &data[pos..pos + n]))
                .unwrap_or_else(|| {
                    panic!(
                        "mapping references allocation {phys:?} not on GPU {:?}",
                        self.gpu.id
                    )
                });
            pos += n;
        }
    }

    /// Set `len` bytes at `ptr` to `v` (device-side memset).
    pub fn fill(&mut self, ptr: DevPtr, len: u64, v: u8) {
        let mut pos = 0u64;
        while pos < len {
            let va = ptr.0 + pos;
            let (phys, off, remaining) = self
                .va
                .resolve(va)
                .unwrap_or_else(|e| panic!("device fault memset {va:#x}: {e}"));
            let n = remaining.min(len - pos);
            self.gpu
                .with_alloc_mut(phys, |s| s.fill_range(off, n, v))
                .expect("mapping references allocation not on current GPU");
            pos += n;
        }
    }

    /// Read `n` little-endian `f32`s.
    pub fn read_f32s(&self, ptr: DevPtr, n: usize) -> Vec<f32> {
        let mut raw = vec![0u8; n * 4];
        self.read_bytes(ptr, &mut raw);
        raw.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Write little-endian `f32`s.
    pub fn write_f32s(&mut self, ptr: DevPtr, vals: &[f32]) {
        let mut raw = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(ptr, &raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_gpu::{GpuId, VA_GRANULARITY};
    use dgsf_sim::Sim;

    #[test]
    fn view_roundtrip_through_va() {
        let sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let mut va = VaSpace::new();
        let phys = gpu.mem_create(VA_GRANULARITY).unwrap();
        let r = va.reserve(VA_GRANULARITY).unwrap();
        va.map(r.base, VA_GRANULARITY, phys).unwrap();

        let ptr = DevPtr(r.base);
        {
            let mut view = DeviceView::new(&va, &gpu);
            view.write_f32s(ptr, &[3.5, -1.0]);
            view.fill(ptr.offset(1024), 16, 0xFF);
        }
        let view = DeviceView::new(&va, &gpu);
        assert_eq!(view.read_f32s(ptr, 2), vec![3.5, -1.0]);
        let mut b = [0u8; 16];
        view.read_bytes(ptr.offset(1024), &mut b);
        assert!(b.iter().all(|&x| x == 0xFF));
    }

    #[test]
    fn reads_cross_mapping_boundaries() {
        let sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let mut va = VaSpace::new();
        // Two adjacent mappings inside one reservation.
        let r = va.reserve(2 * VA_GRANULARITY).unwrap();
        let p1 = gpu.mem_create(VA_GRANULARITY).unwrap();
        let p2 = gpu.mem_create(VA_GRANULARITY).unwrap();
        va.map(r.base, VA_GRANULARITY, p1).unwrap();
        va.map(r.base + VA_GRANULARITY, VA_GRANULARITY, p2).unwrap();

        let straddle = DevPtr(r.base + VA_GRANULARITY - 4);
        let mut view = DeviceView::new(&va, &gpu);
        view.write_bytes(straddle, b"ABCDEFGH");
        let mut out = [0u8; 8];
        view.read_bytes(straddle, &mut out);
        assert_eq!(&out, b"ABCDEFGH");
    }

    #[test]
    #[should_panic(expected = "device fault")]
    fn unmapped_access_faults() {
        let sim = Sim::new(1);
        let gpu = Gpu::v100(&sim.handle(), GpuId(0));
        let va = VaSpace::new();
        let view = DeviceView::new(&va, &gpu);
        let mut b = [0u8; 1];
        view.read_bytes(DevPtr(0xdead_beef), &mut b);
    }
}
