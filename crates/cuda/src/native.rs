//! Native (non-remoted) CUDA execution — the paper's baseline.
//!
//! [`NativeCuda`] runs an application directly against a local GPU. Unlike
//! the DGSF path, nothing can be pre-initialized: the CUDA runtime maps its
//! command rings into *this* process's address space, so the ≈3.2 s
//! initialization, cuDNN handle creation (≈1.2 s) and cuBLAS handle creation
//! (≈0.2 s) all land on the critical path (§V-C "Native GPU applications
//! cannot pre-initialize their own runtime").

use std::sync::Arc;

use dgsf_gpu::{DeviceProps, Gpu};
use dgsf_sim::{ProcCtx, SimHandle};

use crate::api::{ApiStats, CudaApi, LibOp};
use crate::context::CudaContext;
use crate::costs::CostTable;
use crate::error::{CudaError, CudaResult};
use crate::module::ModuleRegistry;
use crate::session::GpuSession;
use crate::types::{
    CublasHandle, CudnnDescriptor, CudnnHandle, DescriptorKind, DevPtr, EventHandle, HostBuf,
    KernelArgs, LaunchConfig, PtrAttributes, StreamHandle,
};

/// Direct execution on a local GPU.
pub struct NativeCuda {
    handle: SimHandle,
    gpu: Arc<Gpu>,
    costs: Arc<CostTable>,
    session: Option<GpuSession>,
    stats: ApiStats,
    next_descriptor: u64,
    live_descriptors: u64,
}

impl NativeCuda {
    /// An application process on a machine with a physically attached GPU.
    pub fn new(h: &SimHandle, gpu: Arc<Gpu>, costs: Arc<CostTable>) -> NativeCuda {
        NativeCuda {
            handle: h.clone(),
            gpu,
            costs,
            session: None,
            stats: ApiStats::default(),
            next_descriptor: 1,
            live_descriptors: 0,
        }
    }

    /// Host-side cost of one local API call.
    fn call(&mut self, p: &ProcCtx, name: &'static str) {
        self.stats.issue(name, 1);
        p.sleep(self.costs.native_call_overhead);
    }

    fn ensure(&mut self, p: &ProcCtx) -> CudaResult<&mut GpuSession> {
        if self.session.is_none() {
            // First CUDA call: pay runtime initialization.
            let ctx = CudaContext::create(
                p,
                &self.handle,
                Arc::clone(&self.gpu),
                Arc::clone(&self.costs),
                true,
            )?;
            self.session = Some(GpuSession::new(&self.handle, ctx, None));
        }
        Ok(self.session.as_mut().expect("just ensured"))
    }

    /// Live descriptor count (for leak tests).
    pub fn live_descriptors(&self) -> u64 {
        self.live_descriptors
    }

    /// The session, if initialized (tests).
    pub fn session(&self) -> Option<&GpuSession> {
        self.session.as_ref()
    }
}

impl CudaApi for NativeCuda {
    fn runtime_init(&mut self, p: &ProcCtx) -> CudaResult<()> {
        self.call(p, "cudaRuntimeInit");
        self.ensure(p)?;
        Ok(())
    }

    fn register_module(&mut self, p: &ProcCtx, registry: Arc<ModuleRegistry>) -> CudaResult<()> {
        self.call(p, "cuModuleLoad");
        self.ensure(p)?.register_module(registry);
        Ok(())
    }

    fn get_device_count(&mut self, p: &ProcCtx) -> CudaResult<u32> {
        self.call(p, "cudaGetDeviceCount");
        self.ensure(p)?;
        Ok(1)
    }

    fn get_device_properties(&mut self, p: &ProcCtx, dev: u32) -> CudaResult<DeviceProps> {
        self.call(p, "cudaGetDeviceProperties");
        if dev != 0 {
            return Err(CudaError::InvalidDevice { requested: dev });
        }
        self.ensure(p)?;
        Ok(self.gpu.props().clone())
    }

    fn set_device(&mut self, p: &ProcCtx, dev: u32) -> CudaResult<()> {
        self.call(p, "cudaSetDevice");
        if dev != 0 {
            return Err(CudaError::InvalidDevice { requested: dev });
        }
        self.ensure(p)?;
        Ok(())
    }

    fn malloc(&mut self, p: &ProcCtx, bytes: u64) -> CudaResult<DevPtr> {
        self.call(p, "cudaMalloc");
        self.ensure(p)?.malloc(p, bytes)
    }

    fn free(&mut self, p: &ProcCtx, ptr: DevPtr) -> CudaResult<()> {
        self.call(p, "cudaFree");
        self.ensure(p)?.free(p, ptr)
    }

    fn memset(&mut self, p: &ProcCtx, ptr: DevPtr, value: u8, bytes: u64) -> CudaResult<()> {
        self.call(p, "cudaMemset");
        self.ensure(p)?.memset(p, ptr, value, bytes)
    }

    fn memcpy_h2d(&mut self, p: &ProcCtx, dst: DevPtr, src: HostBuf) -> CudaResult<()> {
        self.call(p, "cudaMemcpyH2D");
        self.stats.bytes_to_device += src.len();
        self.ensure(p)?.memcpy_h2d(p, dst, &src)
    }

    fn memcpy_d2h(
        &mut self,
        p: &ProcCtx,
        src: DevPtr,
        bytes: u64,
        want_data: bool,
    ) -> CudaResult<HostBuf> {
        self.call(p, "cudaMemcpyD2H");
        self.stats.bytes_to_host += bytes;
        self.ensure(p)?.memcpy_d2h(p, src, bytes, want_data)
    }

    fn launch_kernel(
        &mut self,
        p: &ProcCtx,
        name: &str,
        cfg: LaunchConfig,
        args: KernelArgs,
    ) -> CudaResult<()> {
        // Launch = push-call-configuration + the launch itself.
        self.stats.issue("cudaLaunchKernel", 2);
        self.stats.kernel_launches += 1;
        p.sleep(self.costs.kernel_launch_overhead);
        self.ensure(p)?.launch(p, name, cfg, args)
    }

    fn launch_kernel_on(
        &mut self,
        p: &ProcCtx,
        stream: StreamHandle,
        name: &str,
        cfg: LaunchConfig,
        args: KernelArgs,
    ) -> CudaResult<()> {
        self.stats.issue("cudaLaunchKernel", 2);
        self.stats.kernel_launches += 1;
        p.sleep(self.costs.kernel_launch_overhead);
        self.ensure(p)?.launch_on(p, Some(stream), name, cfg, args)
    }

    fn device_synchronize(&mut self, p: &ProcCtx) -> CudaResult<()> {
        self.call(p, "cudaDeviceSynchronize");
        self.ensure(p)?.synchronize(p);
        Ok(())
    }

    fn stream_create(&mut self, p: &ProcCtx) -> CudaResult<StreamHandle> {
        self.call(p, "cudaStreamCreate");
        Ok(self.ensure(p)?.stream_create(p))
    }

    fn stream_destroy(&mut self, p: &ProcCtx, s: StreamHandle) -> CudaResult<()> {
        self.call(p, "cudaStreamDestroy");
        self.ensure(p)?.stream_destroy(p, s)
    }

    fn stream_synchronize(&mut self, p: &ProcCtx, s: StreamHandle) -> CudaResult<()> {
        self.call(p, "cudaStreamSynchronize");
        self.ensure(p)?.stream_synchronize(p, s)
    }

    fn event_create(&mut self, p: &ProcCtx) -> CudaResult<EventHandle> {
        self.call(p, "cudaEventCreate");
        Ok(self.ensure(p)?.event_create(p))
    }

    fn event_record(&mut self, p: &ProcCtx, e: EventHandle) -> CudaResult<()> {
        self.call(p, "cudaEventRecord");
        self.ensure(p)?.event_record(p, e)
    }

    fn event_synchronize(&mut self, p: &ProcCtx, e: EventHandle) -> CudaResult<()> {
        self.call(p, "cudaEventSynchronize");
        self.ensure(p)?.event_synchronize(p, e)
    }

    fn pointer_get_attributes(&mut self, p: &ProcCtx, ptr: DevPtr) -> CudaResult<PtrAttributes> {
        self.call(p, "cudaPointerGetAttributes");
        Ok(self.ensure(p)?.pointer_attributes(ptr))
    }

    fn malloc_host(&mut self, p: &ProcCtx, _bytes: u64) -> CudaResult<()> {
        self.call(p, "cudaMallocHost");
        self.ensure(p)?;
        Ok(())
    }

    fn cudnn_create(&mut self, p: &ProcCtx) -> CudaResult<CudnnHandle> {
        self.call(p, "cudnnCreate");
        // Native applications pay the full handle creation latency.
        self.ensure(p)?.cudnn_create(p, false)
    }

    fn cudnn_destroy(&mut self, p: &ProcCtx, h: CudnnHandle) -> CudaResult<()> {
        self.call(p, "cudnnDestroy");
        self.ensure(p)?.cudnn_destroy(p, h)
    }

    fn cudnn_create_descriptors(
        &mut self,
        p: &ProcCtx,
        _kind: DescriptorKind,
        n: u64,
    ) -> CudaResult<Vec<CudnnDescriptor>> {
        self.stats.issue("cudnnCreateDescriptor", n);
        p.sleep(dgsf_sim::Dur(
            (self.costs.descriptor_create.as_nanos() + self.costs.native_call_overhead.as_nanos())
                .saturating_mul(n),
        ));
        self.ensure(p)?;
        let out = (0..n)
            .map(|_| {
                let d = CudnnDescriptor(self.next_descriptor);
                self.next_descriptor += 1;
                d
            })
            .collect();
        self.live_descriptors += n;
        Ok(out)
    }

    fn cudnn_set_descriptors(&mut self, p: &ProcCtx, descs: &[CudnnDescriptor]) -> CudaResult<()> {
        self.stats.issue("cudnnSetDescriptor", descs.len() as u64);
        p.sleep(dgsf_sim::Dur(
            self.costs
                .native_call_overhead
                .as_nanos()
                .saturating_mul(descs.len() as u64),
        ));
        self.ensure(p)?;
        Ok(())
    }

    fn cudnn_destroy_descriptors(
        &mut self,
        p: &ProcCtx,
        descs: Vec<CudnnDescriptor>,
    ) -> CudaResult<()> {
        self.stats
            .issue("cudnnDestroyDescriptor", descs.len() as u64);
        p.sleep(dgsf_sim::Dur(
            self.costs
                .native_call_overhead
                .as_nanos()
                .saturating_mul(descs.len() as u64),
        ));
        self.live_descriptors = self.live_descriptors.saturating_sub(descs.len() as u64);
        self.ensure(p)?;
        Ok(())
    }

    fn cudnn_op(&mut self, p: &ProcCtx, _h: CudnnHandle, op: LibOp) -> CudaResult<()> {
        self.stats.issue("cudnnOp", op.api_calls);
        p.sleep(dgsf_sim::Dur(
            self.costs
                .native_call_overhead
                .as_nanos()
                .saturating_mul(op.api_calls),
        ));
        self.ensure(p)?.lib_op(p, op.work);
        Ok(())
    }

    fn cublas_create(&mut self, p: &ProcCtx) -> CudaResult<CublasHandle> {
        self.call(p, "cublasCreate");
        self.ensure(p)?.cublas_create(p, false)
    }

    fn cublas_destroy(&mut self, p: &ProcCtx, h: CublasHandle) -> CudaResult<()> {
        self.call(p, "cublasDestroy");
        self.ensure(p)?.cublas_destroy(p, h)
    }

    fn cublas_op(&mut self, p: &ProcCtx, _h: CublasHandle, op: LibOp) -> CudaResult<()> {
        self.stats.issue("cublasOp", op.api_calls);
        p.sleep(dgsf_sim::Dur(
            self.costs
                .native_call_overhead
                .as_nanos()
                .saturating_mul(op.api_calls),
        ));
        self.ensure(p)?.lib_op(p, op.work);
        Ok(())
    }

    fn stats(&self) -> ApiStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{KernelCost, KernelDef};
    use dgsf_gpu::{GpuId, MB};
    use dgsf_sim::Sim;

    #[test]
    fn first_call_pays_runtime_init() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let gpu = Gpu::v100(&h, GpuId(0));
        sim.spawn("app", move |p| {
            let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
            let t0 = p.now();
            api.runtime_init(p).unwrap();
            let init = p.now().since(t0).as_secs_f64();
            assert!(init >= 3.2, "native init on critical path: {init}");
            // second call is cheap
            let t1 = p.now();
            api.get_device_count(p).unwrap();
            assert!(p.now().since(t1).as_secs_f64() < 0.001);
        });
        sim.run();
    }

    #[test]
    fn device_is_hidden_to_one() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let gpu = Gpu::v100(&h, GpuId(3));
        sim.spawn("app", move |p| {
            let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
            assert_eq!(api.get_device_count(p).unwrap(), 1);
            assert!(api.set_device(p, 0).is_ok());
            assert_eq!(
                api.set_device(p, 1),
                Err(CudaError::InvalidDevice { requested: 1 })
            );
        });
        sim.run();
    }

    #[test]
    fn functional_end_to_end_vector_increment() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let gpu = Gpu::v100(&h, GpuId(0));
        sim.spawn("app", move |p| {
            let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
            let registry = Arc::new(ModuleRegistry::new().with(KernelDef::functional(
                "inc",
                KernelCost::Fixed(0.01),
                |view, _c, args| {
                    let v = view.read_f32s(args.ptrs[0], args.scalars[0] as usize);
                    let out: Vec<f32> = v.iter().map(|x| x + 1.0).collect();
                    view.write_f32s(args.ptrs[0], &out);
                },
            )));
            api.register_module(p, registry).unwrap();
            let buf = api.malloc(p, MB).unwrap();
            api.memcpy_h2d(p, buf, HostBuf::from_f32s(&[1.0, 2.0, 3.0]))
                .unwrap();
            api.launch_kernel(
                p,
                "inc",
                LaunchConfig::linear(3, 32),
                KernelArgs {
                    ptrs: vec![buf],
                    scalars: vec![3],
                    ..Default::default()
                },
            )
            .unwrap();
            api.device_synchronize(p).unwrap();
            let out = api.memcpy_d2h(p, buf, 12, true).unwrap();
            assert_eq!(out.to_f32s().unwrap(), vec![2.0, 3.0, 4.0]);
            assert_eq!(api.stats().kernel_launches, 1);
            assert!(api.stats().issued_calls > 5);
        });
        sim.run();
    }

    #[test]
    fn descriptor_lifecycle_and_stats() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let gpu = Gpu::v100(&h, GpuId(0));
        sim.spawn("app", move |p| {
            let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
            let descs = api
                .cudnn_create_descriptors(p, DescriptorKind::Tensor, 100)
                .unwrap();
            assert_eq!(descs.len(), 100);
            assert_eq!(api.live_descriptors(), 100);
            api.cudnn_set_descriptors(p, &descs).unwrap();
            api.cudnn_destroy_descriptors(p, descs).unwrap();
            assert_eq!(api.live_descriptors(), 0);
            assert_eq!(api.stats().by_name["cudnnCreateDescriptor"], 100);
        });
        sim.run();
    }

    #[test]
    fn cudnn_create_costs_full_latency_natively() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let gpu = Gpu::v100(&h, GpuId(0));
        sim.spawn("app", move |p| {
            let mut api = NativeCuda::new(&h, gpu, Arc::new(CostTable::default()));
            api.runtime_init(p).unwrap();
            let t0 = p.now();
            let hdl = api.cudnn_create(p).unwrap();
            assert!(p.now().since(t0).as_secs_f64() >= 1.2);
            let t1 = p.now();
            let b = api.cublas_create(p).unwrap();
            assert!(p.now().since(t1).as_secs_f64() >= 0.2);
            api.cudnn_destroy(p, hdl).unwrap();
            api.cublas_destroy(p, b).unwrap();
        });
        sim.run();
    }
}
