//! Handle and value types shared across the virtual CUDA API surface.

use bytes::Bytes;

/// A device pointer (a virtual address in the application's VA space).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub struct DevPtr(pub u64);

impl DevPtr {
    /// Pointer arithmetic, as applications do with `char* + off`.
    pub fn offset(self, off: u64) -> DevPtr {
        DevPtr(self.0 + off)
    }
}

/// A CUDA stream handle, as seen by the application. Handle *values* are
/// context-specific; DGSF keeps a per-context twin map so migration can
/// translate (§V-D).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamHandle(pub u64);

/// A CUDA event handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(pub u64);

/// A cuDNN library handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CudnnHandle(pub u64);

/// A cuBLAS library handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CublasHandle(pub u64);

/// A cuDNN descriptor (tensor/convolution/filter/… descriptor). These are
/// host-side opaque structs; DGSF's guest library pools them to avoid
/// remoting their create/destroy calls (§V-C).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CudnnDescriptor(pub u64);

/// Kind of cuDNN descriptor, for pool bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DescriptorKind {
    /// `cudnnTensorDescriptor_t`
    Tensor,
    /// `cudnnFilterDescriptor_t`
    Filter,
    /// `cudnnConvolutionDescriptor_t`
    Convolution,
    /// `cudnnPoolingDescriptor_t`
    Pooling,
    /// `cudnnActivationDescriptor_t`
    Activation,
}

impl DescriptorKind {
    /// All descriptor kinds (pool initialization).
    pub const ALL: [DescriptorKind; 5] = [
        DescriptorKind::Tensor,
        DescriptorKind::Filter,
        DescriptorKind::Convolution,
        DescriptorKind::Pooling,
        DescriptorKind::Activation,
    ];
}

/// Kernel launch geometry (`<<<grid, block>>>`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LaunchConfig {
    /// Grid dimensions.
    pub grid: (u32, u32, u32),
    /// Block dimensions.
    pub block: (u32, u32, u32),
}

impl LaunchConfig {
    /// A 1-D launch covering `n` elements with `block` threads per block.
    pub fn linear(n: u64, block: u32) -> LaunchConfig {
        let blocks = n.div_ceil(block as u64).max(1) as u32;
        LaunchConfig {
            grid: (blocks, 1, 1),
            block: (block, 1, 1),
        }
    }

    /// Total number of threads.
    pub fn threads(&self) -> u64 {
        let g = self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64;
        let b = self.block.0 as u64 * self.block.1 as u64 * self.block.2 as u64;
        g * b
    }
}

/// Arguments passed to a kernel launch.
#[derive(Clone, Debug, Default)]
pub struct KernelArgs {
    /// Device-pointer arguments, in order.
    pub ptrs: Vec<DevPtr>,
    /// Scalar arguments, in order (widened to u64).
    pub scalars: Vec<u64>,
    /// Bytes the kernel touches — drives cost models with per-byte terms.
    pub bytes: u64,
    /// Explicit GPU-seconds override for trace-modeled kernels.
    pub work_hint: Option<f64>,
}

impl KernelArgs {
    /// A timed launch: `work` GPU-seconds over `bytes` of data.
    pub fn timed(work: f64, bytes: u64) -> KernelArgs {
        KernelArgs {
            bytes,
            work_hint: Some(work),
            ..Default::default()
        }
    }
}

/// Host-side data crossing the API boundary.
///
/// Functional workloads carry real bytes; trace-modeled workloads carry only
/// a logical size (the simulator charges transfer time without materializing
/// gigabytes of host memory). Real bytes are refcounted [`Bytes`] views so a
/// payload decoded off the wire reaches the device page store without being
/// copied (and a device read reaches the guest the same way back).
#[derive(Clone, Debug, PartialEq)]
pub enum HostBuf {
    /// Real bytes (written to / read from the device page store).
    Bytes(Bytes),
    /// Size-only payload.
    Logical(u64),
}

impl HostBuf {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            HostBuf::Bytes(b) => b.len() as u64,
            HostBuf::Logical(n) => *n,
        }
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Real bytes, if present.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            HostBuf::Bytes(b) => Some(b),
            HostBuf::Logical(_) => None,
        }
    }

    /// Build from `f32`s (little-endian), for functional workloads.
    pub fn from_f32s(vals: &[f32]) -> HostBuf {
        let mut raw = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        HostBuf::Bytes(raw.into())
    }

    /// Interpret as little-endian `f32`s.
    pub fn to_f32s(&self) -> Option<Vec<f32>> {
        let b = self.as_bytes()?;
        Some(
            b.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        )
    }
}

/// Result of `cudaPointerGetAttributes`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtrAttributes {
    /// True if the pointer refers to device memory this session allocated.
    pub is_device: bool,
    /// Size of the owning allocation, if known.
    pub alloc_size: Option<u64>,
    /// Device ordinal as seen by the application (always 0 under DGSF).
    pub device: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_config_linear() {
        let c = LaunchConfig::linear(1000, 256);
        assert_eq!(c.grid.0, 4);
        assert_eq!(c.threads(), 1024);
        // never zero blocks
        assert_eq!(LaunchConfig::linear(0, 256).grid.0, 1);
    }

    #[test]
    fn hostbuf_f32_roundtrip() {
        let b = HostBuf::from_f32s(&[1.0, 2.5]);
        assert_eq!(b.len(), 8);
        assert_eq!(b.to_f32s().unwrap(), vec![1.0, 2.5]);
        assert_eq!(HostBuf::Logical(100).to_f32s(), None);
    }

    #[test]
    fn devptr_offset() {
        assert_eq!(DevPtr(100).offset(28), DevPtr(128));
    }
}
