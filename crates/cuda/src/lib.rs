//! # dgsf-cuda — a virtual CUDA runtime
//!
//! Substitute for CUDA 10.1/10.2 in the DGSF reproduction. It provides:
//!
//! * the [`CudaApi`] trait — the interposition surface the paper's guest
//!   library captures (CUDA runtime + cuDNN + cuBLAS entry points),
//! * [`NativeCuda`] — the paper's *native* baseline: direct execution on a
//!   local (simulated) GPU, paying runtime initialization on the critical
//!   path,
//! * [`CudaContext`] — per-GPU contexts with context-specific function
//!   pointers and handles, each with an in-order asynchronous stream
//!   executor,
//! * [`GpuSession`] — the per-function state an API server maintains, with
//!   **VMM-backed allocation** and **VA-preserving live migration** between
//!   contexts/GPUs (paper §V-D), and
//! * a calibrated [`CostTable`] (runtime init 3.2 s / 303 MB, `cudnnCreate`
//!   1.2 s / 382 MB, `cublasCreate` 0.2 s / 70 MB, …).
//!
//! Kernels are registered in a [`ModuleRegistry`]; each has a cost model
//! and, optionally, a *functional* body that really reads and writes device
//! memory — used by the real K-means example and the migration correctness
//! tests.

#![warn(missing_docs)]

mod api;
mod context;
mod costs;
mod error;
mod module;
mod native;
mod session;
mod types;
mod view;

pub use api::{ApiStats, CudaApi, LibOp};
pub use context::{CudaContext, ResidentBuf, ResidentEvent, DEFAULT_STREAM};
pub use costs::CostTable;
pub use error::{CudaError, CudaResult};
pub use module::{KernelCost, KernelDef, KernelFn, ModuleRegistry};
pub use native::NativeCuda;
pub use session::{GpuSession, MigrationReport};
pub use types::{
    CublasHandle, CudnnDescriptor, CudnnHandle, DescriptorKind, DevPtr, EventHandle, HostBuf,
    KernelArgs, LaunchConfig, PtrAttributes, StreamHandle,
};
pub use view::DeviceView;
