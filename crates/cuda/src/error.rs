//! CUDA error codes, mirroring the subset of `cudaError_t` the prototype
//! surfaces.

use std::fmt;

use dgsf_gpu::VmmError;

/// Result alias used across the virtual CUDA API.
pub type CudaResult<T> = Result<T, CudaError>;

/// Errors the virtual CUDA runtime can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CudaError {
    /// `cudaErrorMemoryAllocation` — device allocation did not fit.
    MemoryAllocation {
        /// Bytes requested.
        requested: u64,
        /// Bytes free on the device.
        free: u64,
    },
    /// `cudaErrorInvalidValue` — malformed argument (bad pointer, size…).
    InvalidValue(String),
    /// `cudaErrorInvalidDevice` — device ordinal out of range. A serverless
    /// function always sees exactly one device (index 0), regardless of how
    /// many GPUs the GPU server really has (§V-B of the paper).
    InvalidDevice {
        /// The ordinal the application asked for.
        requested: u32,
    },
    /// `cudaErrorInvalidResourceHandle` — unknown stream/event/handle.
    InvalidResourceHandle(String),
    /// `cudaErrorNotInitialized` — call before runtime initialization.
    NotInitialized,
    /// Operation not supported by the prototype (e.g. multiple CUDA
    /// contexts via `cuCtxCreate`, multi-GPU — the paper's stated
    /// limitations).
    Unsupported(String),
    /// Internal transport failure in the remoting path.
    RemotingFailure(String),
    /// The remoting link itself failed (timeout, dropped round trip, dead
    /// API server). Unlike the other classes this is *transient*: the same
    /// call can succeed against a healthy server, so the platform retries
    /// the invocation rather than surfacing an application error.
    Transport(String),
    /// The function exceeded its declared GPU memory limit. DGSF tracks all
    /// memory management, "and ensures that it is not violating its
    /// limits" (§V-B).
    MemoryLimitExceeded {
        /// Bytes the function would be using after the request.
        would_use: u64,
        /// Declared limit.
        limit: u64,
    },
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CudaError::MemoryAllocation { requested, free } => write!(
                f,
                "cudaErrorMemoryAllocation: requested {requested} B, free {free} B"
            ),
            CudaError::InvalidValue(s) => write!(f, "cudaErrorInvalidValue: {s}"),
            CudaError::InvalidDevice { requested } => {
                write!(f, "cudaErrorInvalidDevice: ordinal {requested}")
            }
            CudaError::InvalidResourceHandle(s) => {
                write!(f, "cudaErrorInvalidResourceHandle: {s}")
            }
            CudaError::NotInitialized => write!(f, "cudaErrorNotInitialized"),
            CudaError::Unsupported(s) => write!(f, "unsupported by DGSF prototype: {s}"),
            CudaError::RemotingFailure(s) => write!(f, "remoting failure: {s}"),
            CudaError::Transport(s) => write!(f, "transport failure: {s}"),
            CudaError::MemoryLimitExceeded { would_use, limit } => write!(
                f,
                "function GPU memory limit exceeded: would use {would_use} B, limit {limit} B"
            ),
        }
    }
}

impl CudaError {
    /// True for failures of the remoting infrastructure rather than of the
    /// application's API usage — the class a serverless platform is allowed
    /// to retry on a different GPU server.
    pub fn is_transient(&self) -> bool {
        matches!(self, CudaError::Transport(_))
    }
}

impl std::error::Error for CudaError {}

impl From<dgsf_gpu::OutOfMemory> for CudaError {
    fn from(e: dgsf_gpu::OutOfMemory) -> Self {
        CudaError::MemoryAllocation {
            requested: e.requested,
            free: e.free,
        }
    }
}

impl From<VmmError> for CudaError {
    fn from(e: VmmError) -> Self {
        CudaError::InvalidValue(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CudaError::MemoryAllocation {
            requested: 100,
            free: 10,
        };
        assert!(e.to_string().contains("cudaErrorMemoryAllocation"));
        let e = CudaError::InvalidDevice { requested: 3 };
        assert!(e.to_string().contains("ordinal 3"));
    }

    #[test]
    fn oom_converts() {
        let oom = dgsf_gpu::OutOfMemory {
            requested: 5,
            free: 1,
        };
        assert_eq!(
            CudaError::from(oom),
            CudaError::MemoryAllocation {
                requested: 5,
                free: 1
            }
        );
    }
}
