//! Per-function GPU session: the client-visible CUDA state an API server
//! maintains on behalf of one serverless function, and the VA-preserving
//! live-migration engine (paper §V-D).
//!
//! All device memory is allocated through the driver-level VMM
//! (`cuMemCreate` + `cuMemAddressReserve` + `cuMemMap`) instead of plain
//! `cudaMalloc`, so the session can move its physical allocations to another
//! GPU while every virtual address the application ever saw stays valid —
//! including indirect device pointers stored *inside* device data structures,
//! which no argument-translation scheme could fix up.

use std::collections::HashMap;
use std::sync::Arc;

use dgsf_gpu::{VaRange, VaSpace, VA_GRANULARITY};
use dgsf_sim::{Dur, ProcCtx, SimHandle, SimTime};
use parking_lot::Mutex;

use crate::context::{CudaContext, StreamCmd};
use crate::costs::CostTable;
use crate::error::{CudaError, CudaResult};
use crate::module::ModuleRegistry;
use crate::types::{
    CublasHandle, CudnnHandle, DevPtr, EventHandle, HostBuf, KernelArgs, LaunchConfig,
    PtrAttributes, StreamHandle,
};
use crate::view::DeviceView;

/// One `cudaMalloc`-level allocation.
#[derive(Debug, Clone, Copy)]
struct SessionAlloc {
    /// Bytes the application asked for.
    requested: u64,
    /// Bytes actually reserved/mapped (granularity-rounded).
    mapped: u64,
    /// Backing physical allocation on the *current* GPU.
    phys: dgsf_gpu::PhysId,
    /// The VA reservation backing this allocation.
    range: VaRange,
}

/// A pipelined host→device copy not yet known to have retired: the VA range
/// it targets plus the background transfer's completion signal.
struct PendingH2d {
    base: u64,
    len: u64,
    done: dgsf_sim::SimReceiver<()>,
}

impl PendingH2d {
    fn overlaps(&self, base: u64, len: u64) -> bool {
        len > 0 && self.len > 0 && base < self.base + self.len && self.base < base + len
    }
}

/// Client-visible handle twins: the value the application holds, mapped to
/// the per-context native value for every context the session has visited.
#[derive(Default)]
struct TwinMap {
    /// client handle -> (context id -> native handle)
    twins: HashMap<u64, HashMap<u64, u64>>,
}

impl TwinMap {
    fn insert(&mut self, client: u64, ctx: u64, native: u64) {
        self.twins.entry(client).or_default().insert(ctx, native);
    }
    fn get(&self, client: u64, ctx: u64) -> Option<u64> {
        self.twins.get(&client).and_then(|m| m.get(&ctx)).copied()
    }
    fn remove(&mut self, client: u64) -> Option<HashMap<u64, u64>> {
        self.twins.remove(&client)
    }
    /// True if the client handle is known at all.
    fn contains(&self, client: u64) -> bool {
        self.twins.contains_key(&client)
    }
    /// Drop one context's twin of a client handle (after destroying it).
    fn remove_twin(&mut self, client: u64, ctx: u64) {
        if let Some(m) = self.twins.get_mut(&client) {
            m.remove(&ctx);
        }
    }
    fn clients(&self) -> Vec<u64> {
        self.twins.keys().copied().collect()
    }
    fn len(&self) -> usize {
        self.twins.len()
    }
}

/// Outcome of one live migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationReport {
    /// Bytes of device memory moved.
    pub bytes_moved: u64,
    /// Number of allocations moved.
    pub allocs_moved: usize,
    /// Time spent quiescing in-flight work.
    pub quiesce: Dur,
    /// Duration of the copy/stop stage (`max(stop, copy)` — they overlap).
    pub copy: Dur,
    /// Pure data-movement time (overlapped across DMA channels), excluding
    /// the handler-stop floor. This is what Table II's "approx. migration
    /// time" reports.
    pub data_copy: Dur,
    /// Time spent recreating cuDNN/cuBLAS state on the target context.
    pub lib_recreate: Dur,
    /// Wall (virtual) time of the whole migration.
    pub total: Dur,
}

/// The CUDA state of one application/function, bound to a *current* context
/// but migratable between contexts (and thus between physical GPUs).
pub struct GpuSession {
    handle: SimHandle,
    costs: Arc<CostTable>,
    /// Context currently executing this session's work.
    active: Arc<CudaContext>,
    /// Context the session started on (the API server's home GPU).
    home: Arc<CudaContext>,
    /// The application's virtual address space — survives migration intact.
    va: Arc<Mutex<VaSpace>>,
    registry: Arc<ModuleRegistry>,
    allocs: HashMap<u64, SessionAlloc>,
    mem_limit: Option<u64>,
    mem_used: u64,
    peak_mem: u64,
    streams: TwinMap,
    events: TwinMap,
    cudnn: TwinMap,
    cublas: TwinMap,
    /// Pending `cudaEventRecord` markers: client event → wait state.
    event_waits: HashMap<u64, EventWait>,
    /// In-flight pipelined host→device copies (empty unless
    /// [`CostTable::h2d_pipelined`] is set).
    pending_h2d: Vec<PendingH2d>,
    /// Number of completed migrations.
    pub migrations: u32,
}

/// State of a recorded event: a rendezvous that fires when every command
/// submitted to the stream before the record has retired.
struct EventWait {
    rx: dgsf_sim::SimReceiver<()>,
    completed: bool,
}

impl GpuSession {
    /// Start a session on `ctx` with an optional declared GPU memory limit.
    pub fn new(h: &SimHandle, ctx: Arc<CudaContext>, mem_limit: Option<u64>) -> GpuSession {
        GpuSession {
            handle: h.clone(),
            costs: Arc::clone(ctx.costs()),
            home: Arc::clone(&ctx),
            active: ctx,
            va: Arc::new(Mutex::new(VaSpace::new())),
            registry: Arc::new(ModuleRegistry::new()),
            allocs: HashMap::new(),
            mem_limit,
            mem_used: 0,
            peak_mem: 0,
            streams: TwinMap::default(),
            events: TwinMap::default(),
            cudnn: TwinMap::default(),
            cublas: TwinMap::default(),
            event_waits: HashMap::new(),
            pending_h2d: Vec::new(),
            migrations: 0,
        }
    }

    /// The context currently serving this session.
    pub fn active_context(&self) -> &Arc<CudaContext> {
        &self.active
    }

    /// The session's home context.
    pub fn home_context(&self) -> &Arc<CudaContext> {
        &self.home
    }

    /// Register the application's kernels (the guest library ships them at
    /// connection time, Figure 2 step ②).
    pub fn register_module(&mut self, registry: Arc<ModuleRegistry>) {
        self.registry = registry;
    }

    /// The registered module.
    pub fn registry(&self) -> &Arc<ModuleRegistry> {
        &self.registry
    }

    /// Device memory currently allocated by the application (mapped bytes;
    /// excludes context/library footprints).
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// Peak of [`GpuSession::mem_used`] over the session's lifetime.
    pub fn peak_mem(&self) -> u64 {
        self.peak_mem
    }

    // ---- memory management ----

    /// `cudaMalloc`, realized through the VMM path.
    pub fn malloc(&mut self, _proc: &ProcCtx, bytes: u64) -> CudaResult<DevPtr> {
        if bytes == 0 {
            return Err(CudaError::InvalidValue("cudaMalloc(0)".into()));
        }
        let mapped = bytes.div_ceil(VA_GRANULARITY) * VA_GRANULARITY;
        if let Some(limit) = self.mem_limit {
            if self.mem_used + mapped > limit {
                return Err(CudaError::MemoryLimitExceeded {
                    would_use: self.mem_used + mapped,
                    limit,
                });
            }
        }
        let phys = self.active.gpu().mem_create(mapped)?;
        let mut va = self.va.lock();
        let range = va.reserve(mapped)?;
        va.map(range.base, mapped, phys)?;
        drop(va);
        self.allocs.insert(
            range.base,
            SessionAlloc {
                requested: bytes,
                mapped,
                phys,
                range,
            },
        );
        self.mem_used += mapped;
        self.peak_mem = self.peak_mem.max(self.mem_used);
        Ok(DevPtr(range.base))
    }

    /// `cudaFree`.
    pub fn free(&mut self, proc: &ProcCtx, ptr: DevPtr) -> CudaResult<()> {
        if let Some(a) = self.allocs.get(&ptr.0) {
            let (base, mapped) = (a.range.base, a.mapped);
            self.fence_h2d_range(proc, base, mapped);
        }
        let a = self
            .allocs
            .remove(&ptr.0)
            .ok_or_else(|| CudaError::InvalidValue(format!("cudaFree({:#x})", ptr.0)))?;
        let mut va = self.va.lock();
        va.unmap(a.range.base)?;
        va.release(a.range)?;
        drop(va);
        self.active.gpu().mem_free(a.phys);
        self.mem_used -= a.mapped;
        Ok(())
    }

    /// Park an allocation in the active context's resident store under
    /// `key` (DGSF handoff extension): the buffer leaves this session —
    /// its VA is released and its bytes stop counting against the memory
    /// limit — but the *physical* allocation stays on the GPU, data
    /// intact, for a later session on the same context to adopt. Pending
    /// pipelined copies into the range are fenced first.
    pub fn publish_buffer(&mut self, proc: &ProcCtx, key: u64, ptr: DevPtr) -> CudaResult<()> {
        // Reject duplicate keys before dismantling the mapping, so a
        // failed publish leaves the allocation untouched in this session.
        if self.active.resident_peek(key).is_ok() {
            return Err(CudaError::InvalidResourceHandle(format!(
                "resident key {key:#x} already published"
            )));
        }
        if let Some(a) = self.allocs.get(&ptr.0) {
            let (base, mapped) = (a.range.base, a.mapped);
            self.fence_h2d_range(proc, base, mapped);
        }
        let a = self
            .allocs
            .remove(&ptr.0)
            .ok_or_else(|| CudaError::InvalidValue(format!("publish_buffer({:#x})", ptr.0)))?;
        let mut va = self.va.lock();
        va.unmap(a.range.base)?;
        va.release(a.range)?;
        drop(va);
        // No `mem_free`: the physical pages survive as the parked buffer.
        self.active.publish_resident(
            key,
            crate::context::ResidentBuf {
                phys: a.phys,
                requested: a.requested,
                mapped: a.mapped,
            },
        )?;
        self.mem_used -= a.mapped;
        Ok(())
    }

    /// Adopt the buffer parked under `key` in the active context's
    /// resident store: map its physical allocation into *this* session's
    /// VA space (at a fresh virtual address — the adopter never saw the
    /// publisher's) and take ownership as an ordinary allocation.
    pub fn adopt_buffer(&mut self, _proc: &ProcCtx, key: u64) -> CudaResult<DevPtr> {
        // Check the limit before taking the buffer out of the store so a
        // failed adopt leaves it parked (and later reclaimable).
        let mapped = {
            let buf = self.active.resident_peek(key)?;
            buf.mapped
        };
        if let Some(limit) = self.mem_limit {
            if self.mem_used + mapped > limit {
                return Err(CudaError::MemoryLimitExceeded {
                    would_use: self.mem_used + mapped,
                    limit,
                });
            }
        }
        let buf = self.active.take_resident(key)?;
        let mut va = self.va.lock();
        let range = va.reserve(buf.mapped)?;
        va.map(range.base, buf.mapped, buf.phys)?;
        drop(va);
        self.allocs.insert(
            range.base,
            SessionAlloc {
                requested: buf.requested,
                mapped: buf.mapped,
                phys: buf.phys,
                range,
            },
        );
        self.mem_used += buf.mapped;
        self.peak_mem = self.peak_mem.max(self.mem_used);
        Ok(DevPtr(range.base))
    }

    /// `cudaMemset` (asynchronous, stream-ordered).
    pub fn memset(&mut self, proc: &ProcCtx, ptr: DevPtr, value: u8, bytes: u64) -> CudaResult<()> {
        self.check_mapped(ptr, bytes)?;
        self.fence_h2d_range(proc, ptr.0, bytes);
        self.active.submit(
            proc,
            StreamCmd::Memset {
                va: Arc::clone(&self.va),
                ptr,
                len: bytes,
                value,
            },
        );
        Ok(())
    }

    /// `cudaMemcpy` host→device.
    ///
    /// Synchronous by default: drains the stream first (as a default-stream
    /// pageable copy does), then charges PCIe time. With
    /// [`CostTable::h2d_pipelined`] set the call instead *stages* the copy
    /// and returns immediately — the bytes are snapshotted (as a pinned
    /// staging copy would) and the DMA engines move them in the background,
    /// overlapping the transfer with compute and host work. Subsequent
    /// kernel launches touching the destination buffer fence on the
    /// in-flight copy; pipelined copies are not ordered against
    /// previously-submitted stream work.
    pub fn memcpy_h2d(&mut self, proc: &ProcCtx, dst: DevPtr, src: &HostBuf) -> CudaResult<()> {
        self.check_mapped(dst, src.len())?;
        if self.costs.h2d_pipelined {
            if let Some(bytes) = src.as_bytes() {
                let va = self.va.lock();
                let mut view = DeviceView::new(&va, self.active.gpu());
                view.write_bytes(dst, bytes);
            }
            let done = self.active.gpu().dma_pipelined(
                proc,
                src.len(),
                self.costs.h2d_chunk_bytes,
                self.costs.h2d_dma_engines,
            );
            self.pending_h2d.push(PendingH2d {
                base: dst.0,
                len: src.len(),
                done,
            });
            return Ok(());
        }
        self.active.sync(proc);
        self.active.gpu().dma(proc, src.len());
        if let Some(bytes) = src.as_bytes() {
            let va = self.va.lock();
            let mut view = DeviceView::new(&va, self.active.gpu());
            view.write_bytes(dst, bytes);
        }
        Ok(())
    }

    /// Wait for in-flight pipelined copies overlapping `[base, base+len)`.
    fn fence_h2d_range(&mut self, proc: &ProcCtx, base: u64, len: u64) {
        if self.pending_h2d.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_h2d);
        for t in pending {
            if t.overlaps(base, len) {
                let _ = t.done.recv(proc);
            } else {
                self.pending_h2d.push(t);
            }
        }
    }

    /// Wait for every in-flight pipelined copy.
    fn fence_h2d_all(&mut self, proc: &ProcCtx) {
        for t in std::mem::take(&mut self.pending_h2d) {
            let _ = t.done.recv(proc);
        }
    }

    /// Fence in-flight pipelined copies against the allocations any of
    /// `ptrs` point into (a kernel may read anywhere in a buffer it is
    /// handed, so the fence covers the whole allocation).
    fn fence_h2d_for_ptrs(&mut self, proc: &ProcCtx, ptrs: &[DevPtr]) {
        if self.pending_h2d.is_empty() {
            return;
        }
        let spans: Vec<(u64, u64)> = ptrs
            .iter()
            .filter_map(|p| {
                self.allocs
                    .values()
                    .find(|a| p.0 >= a.range.base && p.0 < a.range.base + a.mapped)
                    .map(|a| (a.range.base, a.mapped))
            })
            .collect();
        for (base, len) in spans {
            self.fence_h2d_range(proc, base, len);
        }
    }

    /// `cudaMemcpy` device→host. Returns real bytes when `want_data`.
    pub fn memcpy_d2h(
        &mut self,
        proc: &ProcCtx,
        src: DevPtr,
        bytes: u64,
        want_data: bool,
    ) -> CudaResult<HostBuf> {
        self.check_mapped(src, bytes)?;
        self.fence_h2d_range(proc, src.0, bytes);
        self.active.sync(proc);
        self.active.gpu().dma(proc, bytes);
        if want_data {
            let va = self.va.lock();
            let view = DeviceView::new(&va, self.active.gpu());
            let mut out = vec![0u8; bytes as usize];
            view.read_bytes(src, &mut out);
            Ok(HostBuf::Bytes(out.into()))
        } else {
            Ok(HostBuf::Logical(bytes))
        }
    }

    fn check_mapped(&self, ptr: DevPtr, bytes: u64) -> CudaResult<()> {
        if bytes == 0 {
            return Ok(());
        }
        let va = self.va.lock();
        va.resolve(ptr.0)?;
        if bytes > 1 {
            va.resolve(ptr.0 + bytes - 1)?;
        }
        Ok(())
    }

    /// `cudaPointerGetAttributes`, answered from session-tracked state (the
    /// guest library does exactly this without remoting — §V-C).
    pub fn pointer_attributes(&self, ptr: DevPtr) -> PtrAttributes {
        let known = self
            .allocs
            .values()
            .find(|a| ptr.0 >= a.range.base && ptr.0 < a.range.base + a.mapped);
        PtrAttributes {
            is_device: known.is_some(),
            alloc_size: known.map(|a| a.requested),
            device: 0,
        }
    }

    // ---- execution ----

    /// Launch a kernel by name on the default stream (the wire layer
    /// translates client function pointers to names before calling this).
    pub fn launch(
        &mut self,
        proc: &ProcCtx,
        name: &str,
        cfg: LaunchConfig,
        args: KernelArgs,
    ) -> CudaResult<()> {
        self.launch_on(proc, None, name, cfg, args)
    }

    /// Launch a kernel on a specific (client-visible) stream, or the
    /// default stream when `stream` is `None`. Client handles are
    /// translated to the active context's twin, so launches stay on "the
    /// same stream" across migrations.
    pub fn launch_on(
        &mut self,
        proc: &ProcCtx,
        stream: Option<StreamHandle>,
        name: &str,
        cfg: LaunchConfig,
        args: KernelArgs,
    ) -> CudaResult<()> {
        if self.registry.get(name).is_none() {
            return Err(CudaError::InvalidValue(format!("unknown kernel {name:?}")));
        }
        self.fence_h2d_for_ptrs(proc, &args.ptrs);
        let native = match stream {
            None => crate::context::DEFAULT_STREAM,
            Some(s) => self
                .streams
                .get(s.0, self.active.id)
                .ok_or_else(|| CudaError::InvalidResourceHandle(format!("stream {:#x}", s.0)))?,
        };
        self.active.submit_on(
            proc,
            native,
            StreamCmd::Exec {
                name: name.to_string(),
                cfg,
                args,
                va: Arc::clone(&self.va),
                registry: Arc::clone(&self.registry),
            },
        );
        Ok(())
    }

    /// `cudaStreamSynchronize`: drain one client stream's queue.
    pub fn stream_synchronize(&mut self, proc: &ProcCtx, s: StreamHandle) -> CudaResult<()> {
        let native = self
            .streams
            .get(s.0, self.active.id)
            .ok_or_else(|| CudaError::InvalidResourceHandle(format!("stream {:#x}", s.0)))?;
        self.active.sync_stream(proc, native);
        Ok(())
    }

    /// Enqueue an aggregate cuDNN/cuBLAS operation of `work` GPU-seconds.
    pub fn lib_op(&mut self, proc: &ProcCtx, work: f64) {
        self.active.submit(proc, StreamCmd::LibOp { work });
    }

    /// `cudaDeviceSynchronize`. Also fences every in-flight pipelined copy.
    pub fn synchronize(&mut self, proc: &ProcCtx) {
        self.fence_h2d_all(proc);
        self.active.sync(proc);
    }

    // ---- handles (client-visible values are stable across migration) ----

    /// `cudaStreamCreate`. The twin is pre-created on the current context;
    /// further twins appear at migration time.
    pub fn stream_create(&mut self, _proc: &ProcCtx) -> StreamHandle {
        let native = self.active.create_stream();
        self.streams.insert(native, self.active.id, native);
        StreamHandle(native)
    }

    /// `cudaStreamDestroy`.
    pub fn stream_destroy(&mut self, _proc: &ProcCtx, s: StreamHandle) -> CudaResult<()> {
        let twins = self
            .streams
            .remove(s.0)
            .ok_or_else(|| CudaError::InvalidResourceHandle(format!("stream {:#x}", s.0)))?;
        if let Some(&native) = twins.get(&self.active.id) {
            self.active.destroy_stream(native);
        }
        Ok(())
    }

    /// Native stream handle backing a client stream on the active context —
    /// exercised by migration tests.
    pub fn native_stream(&self, s: StreamHandle) -> Option<u64> {
        self.streams.get(s.0, self.active.id)
    }

    /// `cudaEventCreate`.
    pub fn event_create(&mut self, _proc: &ProcCtx) -> EventHandle {
        let native = self.active.create_event();
        self.events.insert(native, self.active.id, native);
        EventHandle(native)
    }

    /// `cudaEventDestroy`.
    pub fn event_destroy(&mut self, _proc: &ProcCtx, e: EventHandle) -> CudaResult<()> {
        let twins = self
            .events
            .remove(e.0)
            .ok_or_else(|| CudaError::InvalidResourceHandle(format!("event {:#x}", e.0)))?;
        if let Some(&native) = twins.get(&self.active.id) {
            self.active.destroy_event(native);
        }
        self.event_waits.remove(&e.0);
        Ok(())
    }

    /// `cudaEventRecord` on the default stream: the event completes once
    /// every command submitted before this point has retired.
    pub fn event_record(&mut self, proc: &ProcCtx, e: EventHandle) -> CudaResult<()> {
        if !self.events.contains(e.0) {
            return Err(CudaError::InvalidResourceHandle(format!(
                "event {:#x}",
                e.0
            )));
        }
        let (tx, rx) = self.handle.channel::<()>();
        self.active.submit(proc, StreamCmd::Sync { done: tx });
        self.event_waits.insert(
            e.0,
            EventWait {
                rx,
                completed: false,
            },
        );
        Ok(())
    }

    /// `cudaEventSynchronize`: wait until the last recorded marker fires.
    /// An event that was never recorded is complete by definition (CUDA
    /// semantics).
    pub fn event_synchronize(&mut self, proc: &ProcCtx, e: EventHandle) -> CudaResult<()> {
        if let Some(w) = self.event_waits.get_mut(&e.0) {
            if !w.completed {
                let _ = w.rx.recv(proc);
                w.completed = true;
            }
        }
        Ok(())
    }

    /// `cudnnCreate`. `pooled` handles come from the API server's
    /// pre-created pool: no creation latency, no additional device memory
    /// (it is part of the server's idle footprint). Cold handles pay both.
    pub fn cudnn_create(&mut self, proc: &ProcCtx, pooled: bool) -> CudaResult<CudnnHandle> {
        let native = if pooled {
            self.active.serve_pooled_cudnn_handle()
        } else {
            self.active.create_cudnn_handle(proc, true)?
        };
        self.cudnn.insert(native, self.active.id, native);
        Ok(CudnnHandle(native))
    }

    /// `cudnnDestroy`.
    pub fn cudnn_destroy(&mut self, _proc: &ProcCtx, h: CudnnHandle) -> CudaResult<()> {
        let twins = self
            .cudnn
            .remove(h.0)
            .ok_or_else(|| CudaError::InvalidResourceHandle(format!("cudnn {:#x}", h.0)))?;
        if let Some(&native) = twins.get(&self.active.id) {
            self.active.destroy_cudnn_handle(native)?;
        }
        Ok(())
    }

    /// `cublasCreate`. See [`GpuSession::cudnn_create`] for the `pooled`
    /// semantics.
    pub fn cublas_create(&mut self, proc: &ProcCtx, pooled: bool) -> CudaResult<CublasHandle> {
        let native = if pooled {
            self.active.serve_pooled_cublas_handle()
        } else {
            self.active.create_cublas_handle(proc, true)?
        };
        self.cublas.insert(native, self.active.id, native);
        Ok(CublasHandle(native))
    }

    /// `cublasDestroy`.
    pub fn cublas_destroy(&mut self, _proc: &ProcCtx, h: CublasHandle) -> CudaResult<()> {
        let twins = self
            .cublas
            .remove(h.0)
            .ok_or_else(|| CudaError::InvalidResourceHandle(format!("cublas {:#x}", h.0)))?;
        if let Some(&native) = twins.get(&self.active.id) {
            self.active.destroy_cublas_handle(native)?;
        }
        Ok(())
    }

    /// True if the session holds any cuDNN or cuBLAS handles (migration must
    /// then recreate library state on the target).
    pub fn uses_dnn_libs(&self) -> bool {
        self.cudnn.len() > 0 || self.cublas.len() > 0
    }

    // ---- migration (§V-D) ----

    /// Live-migrate this session to `target` (a context on another GPU).
    ///
    /// 1. Quiesce: wait for all in-flight stream work to retire.
    /// 2. For every allocation: create physical memory on the target GPU,
    ///    copy the data D2D (overlapping allocations across DMA channels),
    ///    and *remap the unchanged virtual range* onto the new physical
    ///    allocation.
    /// 3. Recreate cuDNN/cuBLAS/stream/event twins on the target context and
    ///    extend the client→native translation maps.
    pub fn migrate(
        &mut self,
        proc: &ProcCtx,
        target: &Arc<CudaContext>,
    ) -> CudaResult<MigrationReport> {
        if target.id == self.active.id {
            return Ok(MigrationReport {
                bytes_moved: 0,
                allocs_moved: 0,
                quiesce: Dur::ZERO,
                copy: Dur::ZERO,
                data_copy: Dur::ZERO,
                lib_recreate: Dur::ZERO,
                total: Dur::ZERO,
            });
        }
        let t0 = proc.now();

        // (1) quiesce: in-flight pipelined copies, then all stream work
        self.fence_h2d_all(proc);
        self.active.sync(proc);
        let t_quiesced = proc.now();

        // (2) move memory. Admission-check the target first.
        let need: u64 = self.allocs.values().map(|a| a.mapped).sum();
        if target.gpu().free_mem() < need {
            return Err(CudaError::MemoryAllocation {
                requested: need,
                free: target.gpu().free_mem(),
            });
        }
        let src_gpu = Arc::clone(self.active.gpu());
        let dst_gpu = Arc::clone(target.gpu());
        let mut sizes = Vec::with_capacity(self.allocs.len());
        for a in self.allocs.values_mut() {
            let pa = src_gpu
                .take_alloc(a.phys)
                .expect("session allocation missing from source GPU");
            sizes.push(a.mapped);
            let new_phys = dst_gpu
                .mem_create_from(pa.store)
                .expect("admission-checked target ran out of memory");
            self.va
                .lock()
                .remap(a.range.base, new_phys)
                .expect("remap of session allocation failed");
            a.phys = new_phys;
        }
        let copy_secs = copy_makespan(
            &sizes,
            self.costs.d2d_channels.max(1),
            self.costs.d2d_bw_per_channel,
        );
        // The handler-stop/pending-op drain overlaps the copy (Table V's
        // max(stop, copy) shape); only the longer of the two gates progress.
        let gated = copy_secs.max(self.costs.migration_stop.as_secs_f64());
        proc.sleep(Dur::from_secs_f64(gated));
        let t_copied = proc.now();

        // (3) recreate handles on the target context.
        for client in self.streams.clients() {
            if self.streams.get(client, target.id).is_none() {
                let native = target.create_stream();
                self.streams.insert(client, target.id, native);
            }
        }
        for client in self.events.clients() {
            if self.events.get(client, target.id).is_none() {
                let native = target.create_event();
                self.events.insert(client, target.id, native);
            }
        }
        let uses_libs = self.uses_dnn_libs();
        for client in self.cudnn.clients() {
            if self.cudnn.get(client, target.id).is_none() {
                let native = target.create_cudnn_handle(proc, false)?;
                self.cudnn.insert(client, target.id, native);
                // the old twin's footprint leaves the source GPU
                if let Some(old) = self.cudnn.get(client, self.active.id) {
                    self.active.destroy_cudnn_handle(old)?;
                    self.cudnn.remove_twin(client, self.active.id);
                }
            }
        }
        for client in self.cublas.clients() {
            if self.cublas.get(client, target.id).is_none() {
                let native = target.create_cublas_handle(proc, false)?;
                self.cublas.insert(client, target.id, native);
                if let Some(old) = self.cublas.get(client, self.active.id) {
                    self.active.destroy_cublas_handle(old)?;
                    self.cublas.remove_twin(client, self.active.id);
                }
            }
        }
        if uses_libs {
            proc.sleep(self.costs.migration_lib_recreate);
        }
        let t_end = proc.now();

        self.active = Arc::clone(target);
        self.migrations += 1;
        Ok(MigrationReport {
            bytes_moved: sizes.iter().sum(),
            allocs_moved: sizes.len(),
            quiesce: t_quiesced.since(t0),
            copy: t_copied.since(t_quiesced),
            data_copy: Dur::from_secs_f64(copy_secs),
            lib_recreate: t_end.since(t_copied),
            total: t_end.since(t0),
        })
    }

    /// Read device memory for verification (tests/examples). Goes through
    /// the VA layer, so it exercises the same path kernels use.
    pub fn debug_read(&self, ptr: DevPtr, len: usize) -> Vec<u8> {
        let va = self.va.lock();
        let view = DeviceView::new(&va, self.active.gpu());
        let mut out = vec![0u8; len];
        view.read_bytes(ptr, &mut out);
        out
    }

    /// Tear down all function-owned state: frees allocations, destroys
    /// handle twins. Called by the API server when the function finishes
    /// (after which the server flips back to its home GPU for the next
    /// function — with nothing left to copy).
    pub fn release(&mut self, proc: &ProcCtx) {
        self.fence_h2d_all(proc);
        self.active.sync(proc);
        let ptrs: Vec<u64> = self.allocs.keys().copied().collect();
        for p in ptrs {
            let _ = self.free(proc, DevPtr(p));
        }
        for s in self.streams.clients() {
            let _ = self.stream_destroy(proc, StreamHandle(s));
        }
        for e in self.events.clients() {
            let _ = self.event_destroy(proc, EventHandle(e));
        }
        for h in self.cudnn.clients() {
            let _ = self.cudnn_destroy(proc, CudnnHandle(h));
        }
        for h in self.cublas.clients() {
            let _ = self.cublas_destroy(proc, CublasHandle(h));
        }
        self.active = Arc::clone(&self.home);
    }

    /// Number of live allocations.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    /// Current virtual time, via the session's sim handle.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }
}

/// Makespan (seconds) of copying `sizes` across `channels` DMA channels at
/// `bw` bytes/s each, using longest-processing-time-first assignment.
fn copy_makespan(sizes: &[u64], channels: u32, bw: f64) -> f64 {
    let mut loads = vec![0u64; channels as usize];
    let mut sorted: Vec<u64> = sizes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    for s in sorted {
        let min = loads
            .iter_mut()
            .min_by_key(|l| **l)
            .expect("at least one channel");
        *min += s;
    }
    loads.into_iter().max().unwrap_or(0) as f64 / bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsf_gpu::{Gpu, GpuId, MB};
    use dgsf_sim::Sim;

    use crate::module::{KernelCost, KernelDef};

    fn two_gpu_session(sim: &Sim) -> (Arc<Gpu>, Arc<Gpu>) {
        let h = sim.handle();
        (Gpu::v100(&h, GpuId(0)), Gpu::v100(&h, GpuId(1)))
    }

    #[test]
    fn copy_makespan_overlaps_channels() {
        // one big array: no overlap possible
        let one = copy_makespan(&[7_000_000_000], 2, 7.0e9);
        assert!((one - 1.0).abs() < 1e-9);
        // two equal arrays: perfectly overlapped
        let two = copy_makespan(&[7_000_000_000, 7_000_000_000], 2, 7.0e9);
        assert!((two - 1.0).abs() < 1e-9);
        // empty
        assert_eq!(copy_makespan(&[], 2, 7.0e9), 0.0);
    }

    #[test]
    fn malloc_free_accounting() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(proc, &h, g0.clone(), costs, false).unwrap();
            let mut s = GpuSession::new(&h, ctx, None);
            let p = s.malloc(proc, 100 * MB).unwrap();
            assert!(s.mem_used() >= 100 * MB);
            assert!(s.pointer_attributes(p).is_device);
            assert!(!s.pointer_attributes(DevPtr(0x1234)).is_device);
            s.free(proc, p).unwrap();
            assert_eq!(s.mem_used(), 0);
            assert!(s.free(proc, p).is_err(), "double free rejected");
            assert_eq!(s.peak_mem(), 100 * MB);
        });
        sim.run();
    }

    #[test]
    fn mem_limit_enforced() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(proc, &h, g0, costs, false).unwrap();
            let mut s = GpuSession::new(&h, ctx, Some(100 * MB));
            assert!(s.malloc(proc, 64 * MB).is_ok());
            match s.malloc(proc, 64 * MB) {
                Err(CudaError::MemoryLimitExceeded { limit, .. }) => {
                    assert_eq!(limit, 100 * MB)
                }
                other => panic!("expected limit violation, got {other:?}"),
            }
        });
        sim.run();
    }

    #[test]
    fn migration_preserves_addresses_and_data() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, g1) = two_gpu_session(&sim);
        let g0c = g0.clone();
        let g1c = g1.clone();
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let home = CudaContext::create(proc, &h, g0c.clone(), costs.clone(), false).unwrap();
            let away = CudaContext::create(proc, &h, g1c.clone(), costs, false).unwrap();
            let mut s = GpuSession::new(&h, home, None);
            let a = s.malloc(proc, 8 * MB).unwrap();
            let b = s.malloc(proc, 4 * MB).unwrap();
            s.memcpy_h2d(proc, a, &HostBuf::from_f32s(&[1.0, 2.0, 3.0]))
                .unwrap();
            s.memcpy_h2d(
                proc,
                b.offset(4096),
                &HostBuf::Bytes(b"hello".to_vec().into()),
            )
            .unwrap();

            let used_before = g0c.used_mem();
            assert!(used_before > 0);

            let report = s.migrate(proc, &away).unwrap();
            assert_eq!(report.allocs_moved, 2);
            assert!(report.bytes_moved >= 12 * MB);
            assert!(report.copy > Dur::ZERO);

            // pointers unchanged, data intact, now served from GPU 1
            let back = s.memcpy_d2h(proc, a, 12, true).unwrap();
            assert_eq!(back.to_f32s().unwrap(), vec![1.0, 2.0, 3.0]);
            assert_eq!(s.debug_read(b.offset(4096), 5), b"hello");
            assert_eq!(g0c.alloc_count(), 0, "source GPU fully drained");
            assert!(g1c.used_mem() >= 12 * MB);
        });
        sim.run();
    }

    #[test]
    fn migration_translates_handles_but_client_values_stay() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let home = CudaContext::create(proc, &h, g0, costs.clone(), false).unwrap();
            let away = CudaContext::create(proc, &h, g1, costs, false).unwrap();
            let mut s = GpuSession::new(&h, home.clone(), None);
            let stream = s.stream_create(proc);
            let dnn = s.cudnn_create(proc, false).unwrap();
            let native_before = s.native_stream(stream).unwrap();

            let report = s.migrate(proc, &away).unwrap();
            // cuDNN state recreation charged
            assert!(report.lib_recreate.as_secs_f64() >= 0.4 - 1e-9);

            let native_after = s.native_stream(stream).unwrap();
            assert_ne!(native_before, native_after, "twin differs per context");
            assert!(away.has_stream(native_after));
            // the client-visible values are unchanged — the application
            // never notices the migration
            assert!(s.native_stream(stream).is_some());
            s.cudnn_destroy(proc, dnn).unwrap();
        });
        sim.run();
    }

    #[test]
    fn kernel_runs_identically_after_migration() {
        // A functional kernel writing through stored device pointers keeps
        // working after migration — the headline VA-preservation property.
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let home = CudaContext::create(proc, &h, g0, costs.clone(), false).unwrap();
            let away = CudaContext::create(proc, &h, g1, costs, false).unwrap();
            let mut s = GpuSession::new(&h, home, None);
            let registry = Arc::new(ModuleRegistry::new().with(KernelDef::functional(
                "inc",
                KernelCost::Fixed(0.001),
                |view, _cfg, args| {
                    let p = args.ptrs[0];
                    let v = view.read_f32s(p, 4);
                    let inc: Vec<f32> = v.iter().map(|x| x + 1.0).collect();
                    view.write_f32s(p, &inc);
                },
            )));
            s.register_module(registry);
            let buf = s.malloc(proc, 4 * MB).unwrap();
            s.memcpy_h2d(proc, buf, &HostBuf::from_f32s(&[0.0; 4]))
                .unwrap();

            let args = KernelArgs {
                ptrs: vec![buf],
                ..Default::default()
            };
            s.launch(proc, "inc", LaunchConfig::linear(4, 32), args.clone())
                .unwrap();
            s.synchronize(proc);
            s.migrate(proc, &away).unwrap();
            s.launch(proc, "inc", LaunchConfig::linear(4, 32), args)
                .unwrap();
            s.synchronize(proc);

            let out = s.memcpy_d2h(proc, buf, 16, true).unwrap();
            assert_eq!(out.to_f32s().unwrap(), vec![2.0; 4]);
        });
        sim.run();
    }

    #[test]
    fn migration_to_full_gpu_fails_cleanly() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let home = CudaContext::create(proc, &h, g0, costs.clone(), false).unwrap();
            let away = CudaContext::create(proc, &h, g1.clone(), costs, false).unwrap();
            // Fill GPU 1 almost completely.
            let _hog = g1.reserve(g1.free_mem() - MB).unwrap();
            let mut s = GpuSession::new(&h, home, None);
            let _p = s.malloc(proc, 64 * MB).unwrap();
            match s.migrate(proc, &away) {
                Err(CudaError::MemoryAllocation { .. }) => {}
                other => panic!("expected OOM, got {other:?}"),
            }
            // session still fully usable on the source GPU
            let data = s
                .memcpy_d2h(proc, DevPtr(dgsf_gpu::VA_BASE), 4, true)
                .unwrap();
            assert_eq!(data.to_f32s().unwrap(), vec![0.0]);
        });
        sim.run();
    }

    fn pipelined_costs() -> Arc<CostTable> {
        Arc::new(CostTable {
            h2d_pipelined: true,
            ..CostTable::default()
        })
    }

    #[test]
    fn pipelined_h2d_overlaps_compute() {
        // A pipelined copy runs while an already-submitted kernel computes:
        // 1 s of kernel + 1 s of PCIe finish together, not back to back.
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let ctx = CudaContext::create(proc, &h, g0, pipelined_costs(), false).unwrap();
            let mut s = GpuSession::new(&h, ctx, None);
            let registry = Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")));
            s.register_module(registry);
            let buf = s.malloc(proc, 10_000 * MB).unwrap();
            let t0 = proc.now();
            s.launch(
                proc,
                "k",
                LaunchConfig::linear(1, 32),
                KernelArgs::timed(1.0, 0),
            )
            .unwrap();
            // 10 GB at 10 GB/s = 1 s, staged while the kernel runs
            s.memcpy_h2d(proc, buf, &HostBuf::Logical(10_000_000_000))
                .unwrap();
            assert_eq!(proc.now(), t0, "pipelined copy returns immediately");
            s.synchronize(proc);
            let elapsed = proc.now().since(t0).as_secs_f64();
            assert!(
                elapsed < 1.1,
                "copy and kernel overlap, not serialize: {elapsed}"
            );
        });
        sim.run();
    }

    #[test]
    fn pipelined_h2d_fences_dependent_launches_only() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let ctx = CudaContext::create(proc, &h, g0, pipelined_costs(), false).unwrap();
            let mut s = GpuSession::new(&h, ctx, None);
            let registry = Arc::new(ModuleRegistry::new().with(KernelDef::functional(
                "sum",
                KernelCost::Fixed(0.0),
                |view, _cfg, args| {
                    let v = view.read_f32s(args.ptrs[0], 2);
                    view.write_f32s(args.ptrs[1], &[v[0] + v[1]]);
                },
            )));
            s.register_module(registry);
            let a = s.malloc(proc, 100 * MB).unwrap();
            let b = s.malloc(proc, MB).unwrap();
            let mut payload = vec![0u8; 100 * MB as usize];
            payload[..4].copy_from_slice(&2.0f32.to_le_bytes());
            payload[4..8].copy_from_slice(&3.0f32.to_le_bytes());
            s.memcpy_h2d(proc, a, &HostBuf::Bytes(payload.into()))
                .unwrap();
            let t0 = proc.now();
            // kernel reads `a`: the launch fences on the in-flight copy
            let args = KernelArgs {
                ptrs: vec![a, b],
                ..Default::default()
            };
            s.launch(proc, "sum", LaunchConfig::linear(2, 32), args)
                .unwrap();
            assert!(
                proc.now().since(t0).as_secs_f64() > 0.009,
                "launch waited for the 100 MB copy (~10 ms)"
            );
            let out = s.memcpy_d2h(proc, b, 4, true).unwrap();
            assert_eq!(out.to_f32s().unwrap(), vec![5.0]);
        });
        sim.run();
    }

    #[test]
    fn pipelined_h2d_zero_bytes_is_free() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let ctx = CudaContext::create(proc, &h, g0, pipelined_costs(), false).unwrap();
            let mut s = GpuSession::new(&h, ctx, None);
            let buf = s.malloc(proc, MB).unwrap();
            let t0 = proc.now();
            s.memcpy_h2d(proc, buf, &HostBuf::Logical(0)).unwrap();
            s.synchronize(proc);
            assert_eq!(proc.now(), t0, "zero-byte pipelined copy costs nothing");
        });
        sim.run();
    }

    #[test]
    fn pipelined_h2d_release_fences_in_flight_copies() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let ctx = CudaContext::create(proc, &h, g0, pipelined_costs(), false).unwrap();
            let mut s = GpuSession::new(&h, ctx, None);
            let buf = s.malloc(proc, 10_000 * MB).unwrap();
            let t0 = proc.now();
            s.memcpy_h2d(proc, buf, &HostBuf::Logical(10_000_000_000))
                .unwrap();
            s.release(proc);
            assert!(
                proc.now().since(t0).as_secs_f64() > 0.99,
                "release drained the in-flight copy"
            );
            assert_eq!(s.alloc_count(), 0);
        });
        sim.run();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Chunking is telemetry-only: a pipelined (chunked) copy never
        /// finishes later than the synchronous unchunked copy of the same
        /// bytes at the same bandwidth.
        #[test]
        fn pipelined_copy_never_slower_than_sync(
            bytes in 1u64..2_000_000_000,
            chunk in 1u64..64 * MB,
        ) {
            let run = |pipelined: bool| -> u64 {
                let mut sim = Sim::new(1);
                let h = sim.handle();
                let gpu = Gpu::v100(&h, GpuId(0));
                let elapsed = Arc::new(Mutex::new(0u64));
                let e = elapsed.clone();
                sim.spawn("app", move |proc| {
                    let c = CostTable {
                        h2d_pipelined: pipelined,
                        h2d_chunk_bytes: chunk,
                        ..CostTable::default()
                    };
                    let ctx = CudaContext::create(proc, &h, gpu, Arc::new(c), false).unwrap();
                    let mut s = GpuSession::new(&h, ctx, None);
                    let buf = s.malloc(proc, bytes.div_ceil(MB) * MB).unwrap();
                    let t0 = proc.now();
                    s.memcpy_h2d(proc, buf, &HostBuf::Logical(bytes)).unwrap();
                    s.synchronize(proc);
                    *e.lock() = proc.now().since(t0).as_nanos();
                });
                sim.run();
                let v = *elapsed.lock();
                v
            };
            let chunked = run(true);
            let unchunked = run(false);
            proptest::prop_assert!(
                chunked <= unchunked,
                "chunked {chunked} ns > unchunked {unchunked} ns"
            );
        }
    }

    #[test]
    fn release_returns_all_resources() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        let g = g0.clone();
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(proc, &h, g.clone(), costs.clone(), false).unwrap();
            let base = g.used_mem(); // ctx footprint
            let mut s = GpuSession::new(&h, ctx, None);
            s.malloc(proc, 100 * MB).unwrap();
            s.cudnn_create(proc, false).unwrap();
            s.cublas_create(proc, false).unwrap();
            s.stream_create(proc);
            assert!(g.used_mem() > base);
            s.release(proc);
            assert_eq!(g.used_mem(), base, "everything the function owned is gone");
            assert_eq!(s.alloc_count(), 0);
        });
        sim.run();
    }

    #[test]
    fn publish_adopt_preserves_data_across_sessions() {
        // Stage 1 writes and publishes; stage 2 (a fresh session on the
        // same context) adopts at a new VA and reads the same bytes back.
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        let g = g0.clone();
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(proc, &h, g.clone(), costs, false).unwrap();

            let mut s1 = GpuSession::new(&h, ctx.clone(), None);
            let p1 = s1.malloc(proc, MB).unwrap();
            s1.memcpy_h2d(proc, p1, &HostBuf::from_f32s(&[3.5, -7.25, 42.0]))
                .unwrap();
            s1.publish_buffer(proc, 0xDA6, p1).unwrap();
            assert_eq!(s1.mem_used(), 0, "published bytes leave the session");
            assert_eq!(ctx.resident_count(), 1);
            assert!(
                s1.free(proc, p1).is_err(),
                "published pointer is gone from the session"
            );
            s1.release(proc);

            let mut s2 = GpuSession::new(&h, ctx.clone(), None);
            // The adopter maps into its *own* VA space; the numeric value
            // may coincide with the publisher's but is a fresh reservation.
            let p2 = s2.adopt_buffer(proc, 0xDA6).unwrap();
            assert_eq!(ctx.resident_count(), 0);
            let back = s2.memcpy_d2h(proc, p2, 12, true).unwrap();
            assert_eq!(back.to_f32s().unwrap(), vec![3.5, -7.25, 42.0]);
            s2.free(proc, p2).unwrap();
            s2.release(proc);

            use crate::context::ResidentEvent;
            assert_eq!(
                ctx.resident_events(),
                vec![
                    ResidentEvent::Published {
                        key: 0xDA6,
                        bytes: 2 * MB
                    },
                    ResidentEvent::Adopted {
                        key: 0xDA6,
                        bytes: 2 * MB
                    },
                ]
            );
        });
        sim.run();
    }

    #[test]
    fn adopt_respects_mem_limit_and_missing_keys_fail() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(proc, &h, g0.clone(), costs, false).unwrap();

            let mut s1 = GpuSession::new(&h, ctx.clone(), None);
            let p1 = s1.malloc(proc, 100 * MB).unwrap();
            s1.publish_buffer(proc, 1, p1).unwrap();
            s1.release(proc);

            // Limit smaller than the parked buffer: adopt refuses and the
            // buffer stays parked for someone else (or the reclaimer).
            let mut tight = GpuSession::new(&h, ctx.clone(), Some(10 * MB));
            assert!(matches!(
                tight.adopt_buffer(proc, 1),
                Err(CudaError::MemoryLimitExceeded { .. })
            ));
            assert_eq!(ctx.resident_count(), 1, "failed adopt leaves it parked");
            assert!(matches!(
                tight.adopt_buffer(proc, 99),
                Err(CudaError::InvalidResourceHandle(_))
            ));
            assert!(matches!(
                tight.publish_buffer(proc, 2, DevPtr(0xBAD)),
                Err(CudaError::InvalidValue(_))
            ));
            tight.release(proc);

            let mut roomy = GpuSession::new(&h, ctx.clone(), Some(200 * MB));
            let p2 = roomy.adopt_buffer(proc, 1).unwrap();
            roomy.free(proc, p2).unwrap();
            roomy.release(proc);
        });
        sim.run();
    }

    #[test]
    fn context_release_reclaims_orphaned_residents() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        let g = g0.clone();
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(proc, &h, g.clone(), costs, false).unwrap();
            let base = g.used_mem();
            let mut s = GpuSession::new(&h, ctx.clone(), None);
            let p = s.malloc(proc, 64 * MB).unwrap();
            s.publish_buffer(proc, 7, p).unwrap();
            s.release(proc);
            assert!(g.used_mem() > base, "parked buffer still holds memory");
            ctx.release();
            assert_eq!(g.used_mem(), 0, "teardown reclaims orphaned residents");
            use crate::context::ResidentEvent;
            let evs = ctx.resident_events();
            assert_eq!(evs.len(), 2);
            assert!(matches!(evs[1], ResidentEvent::Reclaimed { key: 7, .. }));
        });
        sim.run();
    }

    #[test]
    fn duplicate_publish_key_rejected() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let (g0, _g1) = two_gpu_session(&sim);
        sim.spawn("app", move |proc| {
            let costs = Arc::new(CostTable::default());
            let ctx = CudaContext::create(proc, &h, g0.clone(), costs, false).unwrap();
            let mut s = GpuSession::new(&h, ctx.clone(), None);
            let a = s.malloc(proc, MB).unwrap();
            let b = s.malloc(proc, MB).unwrap();
            s.publish_buffer(proc, 5, a).unwrap();
            assert!(matches!(
                s.publish_buffer(proc, 5, b),
                Err(CudaError::InvalidResourceHandle(_))
            ));
            assert_eq!(s.alloc_count(), 1, "failed publish keeps the alloc");
            assert!(ctx.reclaim_resident(5));
            assert!(!ctx.reclaim_resident(5), "second reclaim is a no-op");
            s.release(proc);
        });
        sim.run();
    }
}
