//! Property-based tests of the session layer: arbitrary allocation /
//! write / migrate / free sequences must preserve data, virtual addresses,
//! and memory accounting across GPUs.

use std::collections::HashMap;
use std::sync::Arc;

use dgsf_cuda::{CostTable, CudaContext, DevPtr, GpuSession, HostBuf};
use dgsf_gpu::{Gpu, GpuId, MB};
use dgsf_sim::Sim;
use parking_lot::Mutex;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum SessOp {
    Malloc {
        mb: u64,
    },
    Write {
        alloc_idx: usize,
        off: u64,
        data: Vec<u8>,
    },
    Free {
        alloc_idx: usize,
    },
    Migrate {
        to: u8,
    },
}

fn sess_op() -> impl Strategy<Value = SessOp> {
    prop_oneof![
        3 => (1u64..16).prop_map(|mb| SessOp::Malloc { mb }),
        4 => (any::<usize>(), 0u64..(1 << 20), proptest::collection::vec(any::<u8>(), 1..128))
            .prop_map(|(alloc_idx, off, data)| SessOp::Write { alloc_idx, off, data }),
        1 => any::<usize>().prop_map(|alloc_idx| SessOp::Free { alloc_idx }),
        2 => (0u8..3).prop_map(|to| SessOp::Migrate { to }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzz the session with malloc/write/free/migrate across three GPUs;
    /// a host-side shadow model must agree with device contents at every
    /// point, and pointers must never change.
    #[test]
    fn session_survives_random_op_sequences(ops in proptest::collection::vec(sess_op(), 1..25)) {
        let mut sim = Sim::new(7);
        let h = sim.handle();
        let failed = Arc::new(Mutex::new(None::<String>));
        let f2 = failed.clone();
        sim.spawn("fuzz", move |p| {
            let costs = Arc::new(CostTable::default());
            let gpus: Vec<Arc<Gpu>> = (0..3).map(|i| Gpu::v100(&h, GpuId(i))).collect();
            let ctxs: Vec<Arc<CudaContext>> = gpus
                .iter()
                .map(|g| CudaContext::create(p, &h, g.clone(), costs.clone(), false).unwrap())
                .collect();
            let mut sess = GpuSession::new(&h, ctxs[0].clone(), None);
            // shadow model: ptr -> (size, bytes we wrote at offsets)
            let mut live: Vec<DevPtr> = Vec::new();
            let mut shadow: HashMap<u64, HashMap<u64, Vec<u8>>> = HashMap::new();
            let mut sizes: HashMap<u64, u64> = HashMap::new();
            for op in ops {
                match op {
                    SessOp::Malloc { mb } => {
                        let ptr = sess.malloc(p, mb * MB).expect("fits");
                        if live.contains(&ptr) {
                            *f2.lock() = Some("pointer reuse while live".into());
                            return;
                        }
                        live.push(ptr);
                        sizes.insert(ptr.0, mb * MB);
                        shadow.insert(ptr.0, HashMap::new());
                    }
                    SessOp::Write { alloc_idx, off, data } => {
                        if live.is_empty() { continue; }
                        let ptr = live[alloc_idx % live.len()];
                        let size = sizes[&ptr.0];
                        let off = off % size;
                        let n = data.len().min((size - off) as usize);
                        let data = data[..n].to_vec();
                        if data.is_empty() { continue; }
                        sess.memcpy_h2d(p, ptr.offset(off), &HostBuf::Bytes(data.clone().into()))
                            .expect("write in bounds");
                        shadow.get_mut(&ptr.0).unwrap().insert(off, data);
                    }
                    SessOp::Free { alloc_idx } => {
                        if live.is_empty() { continue; }
                        let ptr = live.remove(alloc_idx % live.len());
                        sess.free(p, ptr).expect("free live pointer");
                        shadow.remove(&ptr.0);
                        sizes.remove(&ptr.0);
                    }
                    SessOp::Migrate { to } => {
                        let target = &ctxs[to as usize % 3];
                        sess.migrate(p, target).expect("capacity is plentiful");
                    }
                }
                // verify the shadow after every op
                for ptr in &live {
                    for (off, data) in &shadow[&ptr.0] {
                        let got = sess.debug_read(ptr.offset(*off), data.len());
                        if &got != data {
                            *f2.lock() = Some(format!(
                                "mismatch at {ptr:?}+{off}: wrote {data:?}, read {got:?}"
                            ));
                            return;
                        }
                    }
                }
            }
            // cleanup: everything frees, all GPUs return to ctx-only usage
            sess.release(p);
            for (i, g) in gpus.iter().enumerate() {
                let expected = costs.cuda_ctx_mem; // each holds one context
                if g.used_mem() != expected {
                    *f2.lock() = Some(format!(
                        "gpu {i} leaked: used {} expected {expected}",
                        g.used_mem()
                    ));
                }
            }
        });
        sim.run();
        let failure = failed.lock().clone();
        if let Some(msg) = failure {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Migration accounting: bytes_moved equals the mapped bytes of live
    /// allocations and the source GPU is fully drained of them.
    #[test]
    fn migration_moves_exactly_the_live_bytes(mbs in proptest::collection::vec(1u64..64, 1..6)) {
        let mut sim = Sim::new(9);
        let h = sim.handle();
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        sim.spawn("m", move |p| {
            let costs = Arc::new(CostTable::default());
            let g0 = Gpu::v100(&h, GpuId(0));
            let g1 = Gpu::v100(&h, GpuId(1));
            let c0 = CudaContext::create(p, &h, g0.clone(), costs.clone(), false).unwrap();
            let c1 = CudaContext::create(p, &h, g1.clone(), costs.clone(), false).unwrap();
            let mut sess = GpuSession::new(&h, c0, None);
            let mut total = 0u64;
            for mb in &mbs {
                sess.malloc(p, mb * MB).unwrap();
                // sessions map at the 2 MiB VMM granularity
                total += (mb * MB).div_ceil(dgsf_gpu::VA_GRANULARITY) * dgsf_gpu::VA_GRANULARITY;
            }
            let before_dst = g1.used_mem();
            let report = sess.migrate(p, &c1).unwrap();
            assert_eq!(report.bytes_moved, total);
            assert_eq!(report.allocs_moved, mbs.len());
            assert_eq!(g0.alloc_count(), 0);
            assert_eq!(g1.used_mem() - before_dst, total);
            *ok2.lock() = true;
        });
        sim.run();
        prop_assert!(*ok.lock());
    }
}
