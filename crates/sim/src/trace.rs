//! Request-scoped trace assembly and critical-path tail-latency attribution.
//!
//! The instrumented stack threads a [`TraceCtx`](crate::telemetry::TraceCtx)
//! from the serverless front door down to the GPU server, so every span an
//! invocation produces carries an `inv` (and usually `attempt`) argument.
//! This module joins those flat spans back into one [`TraceTree`] per
//! request and computes an **exact integer decomposition** of its
//! end-to-end latency:
//!
//! * the request window `[start, end)` is cut at every covering span
//!   boundary into elementary slices,
//! * each slice gets exactly one label by priority — GPU-server execution
//!   (`exec`: a same-trace `server` span overlapped by a same-trace client
//!   `rpc` span), remoting wire + wait (`transport`: `rpc` cover without
//!   server cover), the client-side phase covering it (`download`, `queue`,
//!   `init`, ...), residual in-attempt time (`attempt`), retry backoff gaps
//!   between attempts (`backoff`), or pre-attempt platform time (`other`),
//! * slice widths are summed per label.
//!
//! Because the slices partition the window, the per-label segments **sum
//! exactly (integer ns) to the recorded end-to-end latency** — for
//! completed, shed and failed requests alike (a shed-on-arrival request has
//! a zero-width window and an empty decomposition). Server activity past a
//! client timeout deliberately does *not* count as `exec`: the client
//! stopped waiting, so that time belongs to whatever the client was doing
//! (backoff, the next attempt, ...).
//!
//! On top of the decompositions sit [`attribute`] (per-tenant/workload
//! p50/p95/p99 contribution tables plus slowest-k exemplars) and
//! [`slo_burn`] (per-tenant SLO violation + error-budget accounting).

use std::collections::BTreeMap;

use crate::telemetry::{SpanRecord, Telemetry};
use crate::time::{Dur, SimTime};

/// Terminal state of one traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceOutcome {
    /// The request returned a successful [`FunctionResult`]-style outcome.
    Completed,
    /// Admission control (or queue-age overload) shed the request.
    Shed,
    /// The request terminally failed (exhausted retries, permanent error).
    Failed,
}

impl TraceOutcome {
    /// Parse the `outcome` span argument written by the instrumentation.
    pub fn parse(s: &str) -> TraceOutcome {
        match s {
            "completed" => TraceOutcome::Completed,
            "shed" => TraceOutcome::Shed,
            _ => TraceOutcome::Failed,
        }
    }

    /// The wire/JSON form of this outcome.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceOutcome::Completed => "completed",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Failed => "failed",
        }
    }
}

/// One labeled segment of a request's exact latency decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment label (`exec`, `transport`, a phase name, `backoff`, ...).
    pub label: String,
    /// Total virtual time attributed to this label.
    pub dur: Dur,
}

/// One request's assembled trace: identity, terminal state and the exact
/// integer decomposition of its end-to-end latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// Platform-unique trace id (the `inv` span argument).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Workload name (from the `req:{workload}` span name).
    pub workload: String,
    /// Terminal state.
    pub outcome: TraceOutcome,
    /// Request window start (launch).
    pub start: SimTime,
    /// Request window end (finish/shed/failure).
    pub end: SimTime,
    /// Attempts the request made (0 for shed-on-arrival).
    pub attempts: u32,
    /// Per-label segments, sorted by label; zero-width labels omitted.
    /// Invariant: durations sum exactly to [`TraceTree::e2e`].
    pub segments: Vec<Segment>,
}

impl TraceTree {
    /// Recorded end-to-end latency of the request.
    pub fn e2e(&self) -> Dur {
        self.end.since(self.start)
    }

    /// Sum of all segment durations (equals [`TraceTree::e2e`] exactly).
    pub fn segment_total(&self) -> Dur {
        Dur(self.segments.iter().map(|s| s.dur.as_nanos()).sum())
    }

    /// Duration attributed to `label` (zero if absent).
    pub fn segment(&self, label: &str) -> Dur {
        self.segments
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.dur)
            .unwrap_or(Dur::ZERO)
    }
}

fn arg<'a>(s: &'a SpanRecord, key: &str) -> Option<&'a str> {
    s.args
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn arg_u64(s: &SpanRecord, key: &str) -> Option<u64> {
    arg(s, key).and_then(|v| v.parse().ok())
}

/// Assemble one [`TraceTree`] per `request`-category span recorded in
/// `tel`, sorted by trace id. See the [module docs](self) for the
/// decomposition rules.
pub fn assemble(tel: &Telemetry) -> Vec<TraceTree> {
    assemble_spans(&tel.spans())
}

/// [`assemble`] over an explicit span list (useful for tests and replays).
pub fn assemble_spans(spans: &[SpanRecord]) -> Vec<TraceTree> {
    let mut by_inv: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.cat != "request") {
        if let Some(id) = arg_u64(s, "inv") {
            by_inv.entry(id).or_default().push(s);
        }
    }
    let mut trees: Vec<TraceTree> = spans
        .iter()
        .filter(|s| s.cat == "request")
        .filter_map(|req| {
            let id = arg_u64(req, "inv")?;
            let related = by_inv.get(&id).map(Vec::as_slice).unwrap_or(&[]);
            Some(decompose(id, req, related))
        })
        .collect();
    trees.sort_by_key(|t| t.id);
    trees
}

fn decompose(id: u64, req: &SpanRecord, related: &[&SpanRecord]) -> TraceTree {
    let (s, e) = (req.start.as_nanos(), req.end.as_nanos());
    // Elementary slice boundaries: every covering-span endpoint, clamped
    // to the request window.
    let mut cuts: Vec<u64> = Vec::with_capacity(2 + related.len() * 2);
    cuts.push(s);
    cuts.push(e);
    for sp in related {
        cuts.push(sp.start.as_nanos().clamp(s, e));
        cuts.push(sp.end.as_nanos().clamp(s, e));
    }
    cuts.sort_unstable();
    cuts.dedup();

    let covers = |sp: &SpanRecord, a: u64, b: u64| -> bool {
        sp.start.as_nanos() <= a && b <= sp.end.as_nanos()
    };
    let mut acc: BTreeMap<&str, u64> = BTreeMap::new();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let width = b - a;
        let any = |cat: &str| related.iter().any(|sp| sp.cat == cat && covers(sp, a, b));
        // Server-side execution counts only where the client was actually
        // waiting on it: an rpc span and a server span of the *same
        // attempt* both cover the slice. (A stale server span running past
        // a client timeout must not pair with the next attempt's rpc.)
        let exec = related.iter().any(|r| {
            r.cat == "rpc"
                && covers(r, a, b)
                && related.iter().any(|v| {
                    v.cat == "server" && covers(v, a, b) && arg(v, "attempt") == arg(r, "attempt")
                })
        });
        let label: &str = if exec {
            "exec"
        } else if any("rpc") {
            "transport"
        } else if let Some(ph) = related
            .iter()
            .find(|sp| sp.cat == "phase" && covers(sp, a, b))
        {
            ph.name.as_str()
        } else if any("invocation") {
            "attempt"
        } else if related
            .iter()
            .any(|sp| sp.cat == "invocation" && sp.end.as_nanos() <= a)
        {
            // Uncovered time after a finished attempt: retry backoff.
            "backoff"
        } else {
            // Pre-attempt platform time (admission, routing).
            "other"
        };
        *acc.entry(label).or_insert(0) += width;
    }
    let attempts = arg_u64(req, "attempts")
        .map(|n| n as u32)
        .unwrap_or_else(|| related.iter().filter(|sp| sp.cat == "invocation").count() as u32);
    TraceTree {
        id,
        tenant: arg(req, "tenant").unwrap_or("default").to_string(),
        workload: req
            .name
            .strip_prefix("req:")
            .unwrap_or(&req.name)
            .to_string(),
        outcome: TraceOutcome::parse(arg(req, "outcome").unwrap_or("failed")),
        start: req.start,
        end: req.end,
        attempts,
        segments: acc
            .into_iter()
            .filter(|&(_, ns)| ns > 0)
            .map(|(label, ns)| Segment {
                label: label.to_string(),
                dur: Dur(ns),
            })
            .collect(),
    }
}

/// Nearest-rank percentile of a sorted slice (q in permille). Integer-only.
fn percentile_sorted(sorted: &[u64], q_permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((n * q_permille).div_ceil(1000)).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Distribution of one segment label's contribution across a group (zeros
/// included for requests the label never touched, so percentiles are over
/// *all* requests in the group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment label.
    pub label: String,
    /// Median contribution (ns, nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile contribution (ns).
    pub p95_ns: u64,
    /// 99th-percentile contribution (ns).
    pub p99_ns: u64,
    /// Largest single contribution (ns).
    pub max_ns: u64,
    /// Mean contribution (ns, truncating).
    pub mean_ns: u64,
    /// Total contribution across the group (ns).
    pub total_ns: u64,
}

/// Per-(tenant, workload) tail-latency attribution table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAttribution {
    /// Tenant the group belongs to.
    pub tenant: String,
    /// Workload class within the tenant.
    pub workload: String,
    /// Requests in the group.
    pub count: u64,
    /// ... of which completed.
    pub completed: u64,
    /// ... of which shed.
    pub shed: u64,
    /// ... of which terminally failed.
    pub failed: u64,
    /// Median end-to-end latency (ns).
    pub p50_e2e_ns: u64,
    /// 99th-percentile end-to-end latency (ns).
    pub p99_e2e_ns: u64,
    /// Per-label contribution stats, sorted by label.
    pub segments: Vec<SegmentStats>,
    /// Trace ids of the slowest-k requests (e2e desc, id asc).
    pub slowest: Vec<u64>,
}

/// Aggregate decomposed traces into per-(tenant, workload) contribution
/// tables with slowest-`k` exemplars. Deterministic: groups sorted by
/// (tenant, workload), labels sorted, ties on exemplars broken by id.
pub fn attribute(trees: &[TraceTree], k: usize) -> Vec<GroupAttribution> {
    let mut groups: BTreeMap<(String, String), Vec<&TraceTree>> = BTreeMap::new();
    for t in trees {
        groups
            .entry((t.tenant.clone(), t.workload.clone()))
            .or_default()
            .push(t);
    }
    groups
        .into_iter()
        .map(|((tenant, workload), members)| {
            let count = members.len() as u64;
            let mut e2e: Vec<u64> = members.iter().map(|t| t.e2e().as_nanos()).collect();
            e2e.sort_unstable();
            let mut labels: Vec<&str> = members
                .iter()
                .flat_map(|t| t.segments.iter().map(|s| s.label.as_str()))
                .collect();
            labels.sort_unstable();
            labels.dedup();
            let segments = labels
                .into_iter()
                .map(|label| {
                    let mut vals: Vec<u64> = members
                        .iter()
                        .map(|t| t.segment(label).as_nanos())
                        .collect();
                    vals.sort_unstable();
                    let total: u64 = vals.iter().sum();
                    SegmentStats {
                        label: label.to_string(),
                        p50_ns: percentile_sorted(&vals, 500),
                        p95_ns: percentile_sorted(&vals, 950),
                        p99_ns: percentile_sorted(&vals, 990),
                        max_ns: vals.last().copied().unwrap_or(0),
                        mean_ns: total / count.max(1),
                        total_ns: total,
                    }
                })
                .collect();
            let mut by_slowness = members.clone();
            by_slowness.sort_by_key(|t| (std::cmp::Reverse(t.e2e().as_nanos()), t.id));
            GroupAttribution {
                tenant,
                workload,
                count,
                completed: members
                    .iter()
                    .filter(|t| t.outcome == TraceOutcome::Completed)
                    .count() as u64,
                shed: members
                    .iter()
                    .filter(|t| t.outcome == TraceOutcome::Shed)
                    .count() as u64,
                failed: members
                    .iter()
                    .filter(|t| t.outcome == TraceOutcome::Failed)
                    .count() as u64,
                p50_e2e_ns: percentile_sorted(&e2e, 500),
                p99_e2e_ns: percentile_sorted(&e2e, 990),
                segments,
                slowest: by_slowness.iter().take(k).map(|t| t.id).collect(),
            }
        })
        .collect()
}

/// Per-tenant SLO: a latency target plus an error budget (the permille of
/// requests allowed to miss it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloPolicy {
    /// End-to-end latency target; a completed request above it violates.
    pub target_e2e: Dur,
    /// Permille of requests allowed to violate (latency miss, shed or
    /// failure) before the budget is fully burned.
    pub error_budget_permille: u64,
}

/// One tenant's SLO burn accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloBurn {
    /// Tenant name.
    pub tenant: String,
    /// Requests observed.
    pub total: u64,
    /// Requests violating the SLO (late, shed or failed).
    pub violations: u64,
    /// Violations per thousand requests.
    pub violation_permille: u64,
    /// Fraction of the error budget consumed, in permille (1000 = budget
    /// exactly exhausted; saturates instead of overflowing).
    pub budget_burn_permille: u64,
}

/// Compute per-tenant SLO burn over decomposed traces: a request violates
/// when it shed, failed, or completed above `policy.target_e2e`. Sorted by
/// tenant.
pub fn slo_burn(trees: &[TraceTree], policy: &SloPolicy) -> Vec<SloBurn> {
    let mut per_tenant: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for t in trees {
        let e = per_tenant.entry(t.tenant.as_str()).or_insert((0, 0));
        e.0 += 1;
        if t.outcome != TraceOutcome::Completed || t.e2e() > policy.target_e2e {
            e.1 += 1;
        }
    }
    per_tenant
        .into_iter()
        .map(|(tenant, (total, violations))| {
            let violation_permille = (violations * 1000).checked_div(total).unwrap_or(0);
            let budget = policy.error_budget_permille.max(1);
            let budget_burn_permille = (violation_permille.saturating_mul(1000)) / budget;
            SloBurn {
                tenant: tenant.to_string(),
                total,
                violations,
                violation_permille,
                budget_burn_permille,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Telemetry;

    #[allow(clippy::too_many_arguments)]
    fn req(
        tel: &Telemetry,
        id: u64,
        tenant: &str,
        workload: &str,
        outcome: &str,
        attempts: u32,
        start: u64,
        end: u64,
    ) {
        tel.span_args(
            "client",
            &format!("req:{workload}"),
            "request",
            SimTime(start),
            SimTime(end),
            &[
                ("inv", id.to_string()),
                ("tenant", tenant.into()),
                ("outcome", outcome.into()),
                ("attempts", attempts.to_string()),
            ],
        );
    }

    fn traced(tel: &Telemetry, id: u64, cat: &'static str, name: &str, start: u64, end: u64) {
        traced_attempt(tel, id, 1, cat, name, start, end);
    }

    fn traced_attempt(
        tel: &Telemetry,
        id: u64,
        attempt: u32,
        cat: &'static str,
        name: &str,
        start: u64,
        end: u64,
    ) {
        tel.span_args(
            "client",
            name,
            cat,
            SimTime(start),
            SimTime(end),
            &[("inv", id.to_string()), ("attempt", attempt.to_string())],
        );
    }

    #[test]
    fn decomposition_partitions_the_window_exactly() {
        let tel = Telemetry::new();
        tel.enable();
        // Request [0, 100): one attempt [0, 60), with queue [0, 20),
        // an rpc [20, 50) whose server-side exec is [25, 45), then a
        // backoff gap [60, 100).
        req(&tel, 1, "hot", "spin", "completed", 2, 0, 100);
        traced(&tel, 1, "invocation", "invoke:spin:a1", 0, 60);
        traced(&tel, 1, "phase", "queue", 0, 20);
        traced(&tel, 1, "rpc", "launch_kernel", 20, 50);
        traced(&tel, 1, "server", "launch_kernel", 25, 45);
        let trees = assemble(&tel);
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!((t.id, t.attempts), (1, 2));
        assert_eq!(t.outcome, TraceOutcome::Completed);
        assert_eq!(t.segment_total(), t.e2e(), "segments must sum exactly");
        assert_eq!(t.segment("queue"), Dur(20));
        assert_eq!(t.segment("transport"), Dur(10), "rpc minus server cover");
        assert_eq!(t.segment("exec"), Dur(20));
        assert_eq!(t.segment("attempt"), Dur(10), "in-attempt residual");
        assert_eq!(t.segment("backoff"), Dur(40));
    }

    #[test]
    fn server_work_past_the_client_timeout_is_not_exec() {
        let tel = Telemetry::new();
        tel.enable();
        // Attempt 1 times out at 40 (rpc span [10, 40)); the server keeps
        // running [15, 70) — past the client's window. Attempt 2 succeeds
        // [50, 90) with an rpc [55, 85) and server [60, 80).
        req(&tel, 9, "hot", "spin", "completed", 2, 0, 90);
        traced_attempt(&tel, 9, 1, "invocation", "invoke:spin:a1", 0, 40);
        traced_attempt(&tel, 9, 1, "rpc", "launch_kernel", 10, 40);
        traced_attempt(&tel, 9, 1, "server", "launch_kernel", 15, 70);
        traced_attempt(&tel, 9, 2, "invocation", "invoke:spin:a2", 50, 90);
        traced_attempt(&tel, 9, 2, "rpc", "launch_kernel", 55, 85);
        traced_attempt(&tel, 9, 2, "server", "launch_kernel", 60, 80);
        let t = &assemble(&tel)[0];
        assert_eq!(t.segment_total(), t.e2e());
        // exec = [15,40) of attempt 1 + [60,80) of attempt 2; the server's
        // [40,70) tail has no rpc cover and must not count.
        assert_eq!(t.segment("exec"), Dur(25 + 20));
        // The inter-attempt gap [40,50) is backoff.
        assert_eq!(t.segment("backoff"), Dur(10));
    }

    #[test]
    fn shed_on_arrival_is_a_zero_width_tree() {
        let tel = Telemetry::new();
        tel.enable();
        req(&tel, 3, "cold", "spin", "shed", 0, 500, 500);
        let t = &assemble(&tel)[0];
        assert_eq!(t.outcome, TraceOutcome::Shed);
        assert_eq!(t.e2e(), Dur::ZERO);
        assert!(t.segments.is_empty());
        assert_eq!(t.segment_total(), Dur::ZERO);
    }

    #[test]
    fn attribution_groups_by_tenant_and_workload() {
        let tel = Telemetry::new();
        tel.enable();
        for (id, e2e) in [(1u64, 100u64), (2, 200), (3, 300)] {
            req(&tel, id, "hot", "spin", "completed", 1, 0, e2e);
            traced(&tel, id, "invocation", "invoke:spin:a1", 0, e2e);
        }
        req(&tel, 4, "cold", "spin", "shed", 0, 0, 0);
        let trees = assemble(&tel);
        let groups = attribute(&trees, 2);
        assert_eq!(groups.len(), 2);
        assert_eq!((groups[0].tenant.as_str(), groups[0].count), ("cold", 1));
        let hot = &groups[1];
        assert_eq!(
            (hot.tenant.as_str(), hot.workload.as_str()),
            ("hot", "spin")
        );
        assert_eq!((hot.completed, hot.shed, hot.failed), (3, 0, 0));
        assert_eq!(hot.p50_e2e_ns, 200);
        assert_eq!(hot.p99_e2e_ns, 300);
        assert_eq!(hot.slowest, vec![3, 2], "e2e desc, capped at k");
        let attempt = hot.segments.iter().find(|s| s.label == "attempt").unwrap();
        assert_eq!(attempt.total_ns, 600);
        assert_eq!(attempt.mean_ns, 200);
        assert_eq!(attempt.max_ns, 300);
    }

    #[test]
    fn slo_burn_counts_late_shed_and_failed_as_violations() {
        let tel = Telemetry::new();
        tel.enable();
        req(&tel, 1, "hot", "spin", "completed", 1, 0, 50); // within target
        req(&tel, 2, "hot", "spin", "completed", 1, 0, 500); // late
        req(&tel, 3, "hot", "spin", "shed", 0, 0, 0); // shed
        req(&tel, 4, "cold", "spin", "failed", 3, 0, 80); // failed
        let trees = assemble(&tel);
        let policy = SloPolicy {
            target_e2e: Dur(100),
            error_budget_permille: 100,
        };
        let burn = slo_burn(&trees, &policy);
        assert_eq!(burn.len(), 2);
        let cold = &burn[0];
        assert_eq!(
            (cold.total, cold.violations, cold.violation_permille),
            (1, 1, 1000)
        );
        assert_eq!(cold.budget_burn_permille, 10_000, "10× over budget");
        let hot = &burn[1];
        assert_eq!((hot.total, hot.violations), (3, 2));
        assert_eq!(hot.violation_permille, 666);
        assert_eq!(hot.budget_burn_permille, 6_660);
    }

    #[test]
    fn assembly_is_deterministic_and_sorted_by_id() {
        let tel = Telemetry::new();
        tel.enable();
        req(&tel, 7, "a", "w", "completed", 1, 0, 10);
        req(&tel, 2, "a", "w", "completed", 1, 0, 10);
        let a = assemble(&tel);
        let b = assemble(&tel);
        assert_eq!(a, b);
        assert_eq!(a.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2, 7]);
    }
}
