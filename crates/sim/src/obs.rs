//! Online observability plane: streaming windowed aggregation, SLO
//! burn-rate alerting and per-server health scoring — all deterministic,
//! integer-only, and usable *while the simulation runs*.
//!
//! PR 2's telemetry and PR 5's critical-path attribution are post-hoc:
//! metrics and traces are exported after a run, so nothing in the platform
//! can act on them while the fleet is serving. [`ObsPlane`] closes that
//! loop. The hot paths (the serverless backend's front door, the monitor's
//! sampling tick) feed it live events, and it maintains:
//!
//! * a **fixed-window arrival counter** plus an **integer EWMA arrival-rate
//!   estimator** (per-window counts, smoothed in units of arrivals ×1000 so
//!   no float ever enters the state) whose rate-ramp signal the predictive
//!   autoscaler pre-warms on;
//! * a bounded-error **log₂ quantile sketch** ([`QuantileSketch`]) over
//!   end-to-end and queue latencies — the streamed equivalent of the
//!   offline histograms, with a proptest-certified rank-error bound;
//! * a **multi-window SLO burn-rate evaluator**: per tenant, violation
//!   rates over a fast and a slow window pair are compared against the
//!   error budget, and an alert fires only when *both* burn and the
//!   *queue-attributed share* of tail latency cross their thresholds (so
//!   exec-caused slowness never raises a scaling/queueing alert). The
//!   alert log is a first-class deterministic output;
//! * **per-server health timelines** derived from the monitor's gauges.
//!
//! ## Windows
//!
//! Virtual time is cut into fixed windows of [`ObsConfig::window`] ns;
//! an event at time `t` belongs to window `t / window`. A window is
//! *finalized* the first time any event or query observes a later window
//! (empty gap windows are finalized as zeros), which makes every derived
//! quantity a pure function of the event stream — independent of when
//! queries happen between events.
//!
//! ## Sketch error bound
//!
//! [`QuantileSketch`] buckets a value `v` by its bit length, so bucket
//! `b ≥ 1` covers `[2^(b-1), 2^b - 1]`. A quantile query finds the bucket
//! containing the exact nearest-rank element and returns that bucket's
//! upper bound. The estimate `est` therefore brackets the exact value
//! `x` as `x ≤ est ≤ 2x − 1` (and `est = 0` exactly when `x = 0`):
//! never an underestimate, never more than one power of two high. The
//! proptest battery in this module certifies the bound against exact
//! sorted quantiles for constant, bimodal and heavy-tailed inputs.
//!
//! ## Burn-rate math
//!
//! For a window set with `total` requests and `violations` SLO misses
//! (late, shed or failed — the same rule as [`crate::trace::slo_burn`]),
//! the burn is `(violations·1000/total) · 1000 / error_budget_permille`
//! per mille: 1000 means the budget is being consumed exactly at its
//! sustainable rate. An alert fires for a tenant when both the fast
//! window set (the last [`ObsConfig::fast_windows`] windows) and the slow
//! set (the last [`ObsConfig::slow_windows`]) burn at or above
//! [`ObsConfig::burn_threshold_permille`] *and* the tenant's violating
//! requests spent at least [`ObsConfig::queue_share_threshold_permille`]
//! of their end-to-end time queueing. Alerts are edge-triggered: one
//! `fired` event when the condition becomes true, one `cleared` when it
//! stops.
//!
//! ## Determinism
//!
//! Exactly one simulated process runs at a time, so feed and query calls
//! arrive in a deterministic order per seed; every aggregate is integer
//! arithmetic over that stream; iteration for export is over `BTreeMap`s
//! and append-ordered `Vec`s. [`ObsReport::dashboard_json`] is therefore
//! byte-identical across same-seed reruns.

use std::collections::{BTreeMap, VecDeque};

use parking_lot::Mutex;

use crate::time::{Dur, SimTime};

/// Streaming log₂-bucket quantile sketch over `u64` samples.
///
/// O(1) insert, 65 buckets of fixed state, and a certified error bound:
/// for an exact nearest-rank quantile `x`, the estimate `est` satisfies
/// `x ≤ est ≤ 2x − 1` (with `est = 0` iff `x = 0`). See the
/// [module docs](self) for the argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    /// `buckets[b]` counts samples of bit length `b` (bucket 0 is the
    /// value 0; bucket 64 covers `≥ 2^63`).
    buckets: Vec<u64>,
    count: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            buckets: vec![0; 65],
            count: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
        self.count += 1;
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound of the bucket holding the exact nearest-rank quantile
    /// (`q` in permille). 0 on an empty sketch.
    pub fn quantile(&self, q_permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank =
            ((self.count as u128 * q_permille as u128).div_ceil(1000) as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return match b {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
            }
        }
        unreachable!("cumulative bucket count reaches self.count")
    }
}

/// Configuration of the observability plane. All thresholds are integer
/// permille; all windows are virtual-time durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Fixed aggregation window length.
    pub window: Dur,
    /// EWMA smoothing factor for the arrival-rate estimator, in permille
    /// (300 = each finalized window contributes 30%).
    pub ewma_alpha_permille: u64,
    /// Rate-ramp trigger as a ratio over the EWMA: a ramp is signalled
    /// while the *current* window's arrivals ≥ `ramp_num/ramp_den` × the
    /// smoothed per-window rate.
    pub ramp_num: u64,
    /// Denominator of the ramp ratio.
    pub ramp_den: u64,
    /// Minimum arrivals in the current window before a ramp can be
    /// signalled (suppresses cold-start noise).
    pub min_ramp_arrivals: u64,
    /// End-to-end latency SLO target; a completed request above it
    /// violates (shed and failed requests always violate).
    pub slo_target: Dur,
    /// Error budget: permille of requests allowed to violate.
    pub error_budget_permille: u64,
    /// Fast alert window, in aggregation windows.
    pub fast_windows: usize,
    /// Slow alert window, in aggregation windows (≥ `fast_windows`).
    pub slow_windows: usize,
    /// Burn-rate (permille of the budget's sustainable rate) both window
    /// sets must reach before an alert fires. 1000 = burning the budget
    /// exactly as fast as it refills.
    pub burn_threshold_permille: u64,
    /// Queue-attributed share of the violating requests' end-to-end time
    /// (permille) required before an alert fires — the online analogue of
    /// PR 5's critical-path attribution gate.
    pub queue_share_threshold_permille: u64,
    /// When set, the backend sheds new requests from a tenant whose
    /// fast-window burn rate is at or above this threshold (and whose
    /// burn alert gate holds). `None` — the default — never sheds on
    /// burn rate.
    pub shed_burn_threshold_permille: Option<u64>,
}

impl ObsConfig {
    /// Moderate defaults: 500 ms windows, 30% EWMA, ramp at 1.5× the
    /// smoothed rate, 2 s SLO with a 10% budget, 2-window fast / 8-window
    /// slow burn pair at 1× budget rate, 300‰ queue-share gate, no
    /// burn-rate shedding.
    pub fn paper_default() -> ObsConfig {
        ObsConfig {
            window: Dur::from_millis(500),
            ewma_alpha_permille: 300,
            ramp_num: 3,
            ramp_den: 2,
            min_ramp_arrivals: 4,
            slo_target: Dur::from_secs(2),
            error_budget_permille: 100,
            fast_windows: 2,
            slow_windows: 8,
            burn_threshold_permille: 1000,
            queue_share_threshold_permille: 300,
            shed_burn_threshold_permille: None,
        }
    }

    /// Builder-style: set the aggregation window.
    pub fn with_window(mut self, d: Dur) -> Self {
        self.window = d;
        self
    }

    /// Builder-style: set the SLO target and error budget.
    pub fn with_slo(mut self, target: Dur, budget_permille: u64) -> Self {
        self.slo_target = target;
        self.error_budget_permille = budget_permille;
        self
    }

    /// Builder-style: set the fast/slow burn window pair.
    pub fn with_burn_windows(mut self, fast: usize, slow: usize) -> Self {
        self.fast_windows = fast;
        self.slow_windows = slow;
        self
    }

    /// Builder-style: set the burn-rate alert threshold.
    pub fn with_burn_threshold(mut self, permille: u64) -> Self {
        self.burn_threshold_permille = permille;
        self
    }

    /// Builder-style: set the queue-attribution alert gate.
    pub fn with_queue_share_threshold(mut self, permille: u64) -> Self {
        self.queue_share_threshold_permille = permille;
        self
    }

    /// Builder-style: set the ramp trigger ratio.
    pub fn with_ramp_ratio(mut self, num: u64, den: u64) -> Self {
        self.ramp_num = num;
        self.ramp_den = den;
        self
    }

    /// Builder-style: shed new work from tenants burning at or above
    /// `permille` of the sustainable budget rate.
    pub fn with_shed_burn_threshold(mut self, permille: u64) -> Self {
        self.shed_burn_threshold_permille = Some(permille);
        self
    }

    /// Check the configuration for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == Dur::ZERO {
            return Err("obs window must be non-zero".into());
        }
        if self.ewma_alpha_permille == 0 || self.ewma_alpha_permille > 1000 {
            return Err("obs EWMA alpha must be in 1..=1000 permille".into());
        }
        if self.ramp_den == 0 {
            return Err("obs ramp ratio denominator must be non-zero".into());
        }
        if self.fast_windows == 0 {
            return Err("obs fast window must cover at least one window".into());
        }
        if self.slow_windows < self.fast_windows {
            return Err("obs slow window must be at least the fast window".into());
        }
        if self.error_budget_permille == 0 {
            return Err("obs error budget must be non-zero".into());
        }
        Ok(())
    }
}

/// One finalized aggregation window of the global stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRow {
    /// Window start (ns).
    pub start_ns: u64,
    /// Requests that arrived at the backend's front door in this window.
    pub arrivals: u64,
    /// Requests that reached a terminal state in this window.
    pub finished: u64,
    /// ... of which violated the SLO (late, shed or failed).
    pub violations: u64,
    /// EWMA of per-window arrivals ×1000, after folding in this window.
    pub ewma_rate_milli: u64,
}

/// One tenant's burn accounting for one finalized window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantBurnRow {
    /// Tenant name.
    pub tenant: String,
    /// Window start (ns).
    pub window_start_ns: u64,
    /// The tenant's terminal requests in this window.
    pub total: u64,
    /// ... of which violated the SLO.
    pub violations: u64,
    /// Burn rate over the fast window set ending here (0 when the set
    /// held no requests).
    pub fast_burn_permille: u64,
    /// Burn rate over the slow window set ending here.
    pub slow_burn_permille: u64,
    /// Queue-attributed share of the fast set's violating end-to-end
    /// time (0 when no violating time was observed).
    pub queue_share_permille: u64,
}

/// Whether an alert event opened or closed an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The burn + attribution condition became true.
    Fired,
    /// The condition stopped holding.
    Cleared,
}

impl AlertKind {
    /// The wire/JSON form.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertKind::Fired => "fired",
            AlertKind::Cleared => "cleared",
        }
    }
}

/// One edge-triggered burn-rate alert transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertEvent {
    /// When the transition was evaluated (the end of the finalized
    /// window that caused it).
    pub at: SimTime,
    /// Start (ns) of the window whose finalization triggered the
    /// evaluation.
    pub window_start_ns: u64,
    /// Tenant the alert belongs to.
    pub tenant: String,
    /// Fired or cleared.
    pub kind: AlertKind,
    /// Fast-set burn at evaluation time.
    pub fast_burn_permille: u64,
    /// Slow-set burn at evaluation time.
    pub slow_burn_permille: u64,
    /// Fast-set queue-attributed share at evaluation time.
    pub queue_share_permille: u64,
}

/// Global per-window accumulator.
#[derive(Debug, Clone, Default)]
struct WinAgg {
    arrivals: u64,
    finished: u64,
    violations: u64,
    tail_queue_ns: u64,
    tail_e2e_ns: u64,
}

/// Per-tenant per-window accumulator.
#[derive(Debug, Clone, Default)]
struct TenantWin {
    total: u64,
    violations: u64,
    tail_queue_ns: u64,
    tail_e2e_ns: u64,
}

fn sum_set<'a, I: Iterator<Item = &'a TenantWin>>(it: I) -> TenantWin {
    let mut acc = TenantWin::default();
    for w in it {
        acc.total += w.total;
        acc.violations += w.violations;
        acc.tail_queue_ns += w.tail_queue_ns;
        acc.tail_e2e_ns += w.tail_e2e_ns;
    }
    acc
}

/// Burn rate of a window set in permille of the sustainable budget rate;
/// `None` when the set held no requests.
fn burn_permille(total: u64, violations: u64, budget_permille: u64) -> Option<u64> {
    if total == 0 {
        return None;
    }
    let vp = violations.saturating_mul(1000) / total;
    Some(vp.saturating_mul(1000) / budget_permille.max(1))
}

fn share_permille(part: u64, whole: u64) -> Option<u64> {
    if whole == 0 {
        return None;
    }
    Some(((part as u128 * 1000) / whole as u128) as u64)
}

#[derive(Debug, Clone)]
struct Inner {
    /// Window currently accumulating. Meaningless until `started`.
    cur_idx: u64,
    started: bool,
    cur: WinAgg,
    cur_tenants: BTreeMap<String, TenantWin>,
    ewma_rate_milli: u64,
    ewma_seeded: bool,
    /// Finalized per-tenant windows, most recent at the back, bounded to
    /// `slow_windows`. Every known tenant gets a (possibly zero) entry
    /// per finalized window, so sets stay time-aligned.
    tenant_hist: BTreeMap<String, VecDeque<TenantWin>>,
    /// Global (tail_queue, tail_e2e) of recent finalized windows, bounded
    /// to `fast_windows` (drives the autoscaler's attribution gate).
    share_hist: VecDeque<(u64, u64)>,
    windows: Vec<WindowRow>,
    tenant_rows: Vec<TenantBurnRow>,
    alert_active: BTreeMap<String, bool>,
    alerts: Vec<AlertEvent>,
    e2e_sketch: QuantileSketch,
    queue_sketch: QuantileSketch,
    /// Per-server-label health timelines (ns, score in permille),
    /// recorded on change.
    health: BTreeMap<String, Vec<(u64, u64)>>,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            cur_idx: 0,
            started: false,
            cur: WinAgg::default(),
            cur_tenants: BTreeMap::new(),
            ewma_rate_milli: 0,
            ewma_seeded: false,
            tenant_hist: BTreeMap::new(),
            share_hist: VecDeque::new(),
            windows: Vec::new(),
            tenant_rows: Vec::new(),
            alert_active: BTreeMap::new(),
            alerts: Vec::new(),
            e2e_sketch: QuantileSketch::new(),
            queue_sketch: QuantileSketch::new(),
            health: BTreeMap::new(),
        }
    }

    /// Advance to `idx`, finalizing every window before it (gap windows
    /// finalize as zeros).
    fn roll(&mut self, cfg: &ObsConfig, idx: u64) {
        if !self.started {
            self.started = true;
            self.cur_idx = idx;
            return;
        }
        while self.cur_idx < idx {
            self.finalize_window(cfg);
            self.cur_idx += 1;
        }
    }

    fn finalize_window(&mut self, cfg: &ObsConfig) {
        let start_ns = self.cur_idx * cfg.window.as_nanos();
        // EWMA of per-window arrivals, in arrivals ×1000.
        let sample = self.cur.arrivals * 1000;
        self.ewma_rate_milli = if self.ewma_seeded {
            let a = cfg.ewma_alpha_permille;
            (a * sample + (1000 - a) * self.ewma_rate_milli) / 1000
        } else {
            self.ewma_seeded = true;
            sample
        };
        self.windows.push(WindowRow {
            start_ns,
            arrivals: self.cur.arrivals,
            finished: self.cur.finished,
            violations: self.cur.violations,
            ewma_rate_milli: self.ewma_rate_milli,
        });
        self.share_hist
            .push_back((self.cur.tail_queue_ns, self.cur.tail_e2e_ns));
        while self.share_hist.len() > cfg.fast_windows {
            self.share_hist.pop_front();
        }
        // Per-tenant: every known tenant gets an entry (zeros when idle
        // this window) so fast/slow sets stay aligned in time.
        let mut tenants: Vec<String> = self.tenant_hist.keys().cloned().collect();
        for t in self.cur_tenants.keys() {
            if !self.tenant_hist.contains_key(t) {
                tenants.push(t.clone());
            }
        }
        tenants.sort();
        tenants.dedup();
        let cur_tenants = std::mem::take(&mut self.cur_tenants);
        for tenant in tenants {
            let tw = cur_tenants.get(&tenant).cloned().unwrap_or_default();
            let hist = self.tenant_hist.entry(tenant.clone()).or_default();
            hist.push_back(tw);
            while hist.len() > cfg.slow_windows {
                hist.pop_front();
            }
            let fast_n = cfg.fast_windows.min(hist.len());
            let fast = sum_set(hist.iter().skip(hist.len() - fast_n));
            let slow = sum_set(hist.iter());
            let fast_burn = burn_permille(fast.total, fast.violations, cfg.error_budget_permille);
            let slow_burn = burn_permille(slow.total, slow.violations, cfg.error_budget_permille);
            let share = share_permille(fast.tail_queue_ns, fast.tail_e2e_ns);
            self.tenant_rows.push(TenantBurnRow {
                tenant: tenant.clone(),
                window_start_ns: start_ns,
                total: hist.back().map(|w| w.total).unwrap_or(0),
                violations: hist.back().map(|w| w.violations).unwrap_or(0),
                fast_burn_permille: fast_burn.unwrap_or(0),
                slow_burn_permille: slow_burn.unwrap_or(0),
                queue_share_permille: share.unwrap_or(0),
            });
            let firing = fast_burn.is_some_and(|b| b >= cfg.burn_threshold_permille)
                && slow_burn.is_some_and(|b| b >= cfg.burn_threshold_permille)
                && share.is_some_and(|s| s >= cfg.queue_share_threshold_permille);
            let active = self.alert_active.entry(tenant.clone()).or_insert(false);
            if firing != *active {
                *active = firing;
                self.alerts.push(AlertEvent {
                    at: SimTime(start_ns + cfg.window.as_nanos()),
                    window_start_ns: start_ns,
                    tenant,
                    kind: if firing {
                        AlertKind::Fired
                    } else {
                        AlertKind::Cleared
                    },
                    fast_burn_permille: fast_burn.unwrap_or(0),
                    slow_burn_permille: slow_burn.unwrap_or(0),
                    queue_share_permille: share.unwrap_or(0),
                });
            }
        }
        self.cur = WinAgg::default();
    }

    /// Fast-set + current-partial-window burn for one tenant (the *live*
    /// signal, ahead of finalization).
    fn live_fast_burn(&self, cfg: &ObsConfig, tenant: &str) -> Option<u64> {
        let mut acc = self
            .tenant_hist
            .get(tenant)
            .map(|hist| {
                let n = cfg.fast_windows.min(hist.len());
                sum_set(hist.iter().skip(hist.len() - n))
            })
            .unwrap_or_default();
        if let Some(cur) = self.cur_tenants.get(tenant) {
            acc.total += cur.total;
            acc.violations += cur.violations;
            acc.tail_queue_ns += cur.tail_queue_ns;
            acc.tail_e2e_ns += cur.tail_e2e_ns;
        }
        burn_permille(acc.total, acc.violations, cfg.error_budget_permille)
    }

    /// Fast-set + current-partial queue share of one tenant's violating
    /// latency (the live analogue of the alert's attribution gate).
    fn live_queue_share(&self, cfg: &ObsConfig, tenant: &str) -> Option<u64> {
        let mut acc = self
            .tenant_hist
            .get(tenant)
            .map(|hist| {
                let n = cfg.fast_windows.min(hist.len());
                sum_set(hist.iter().skip(hist.len() - n))
            })
            .unwrap_or_default();
        if let Some(cur) = self.cur_tenants.get(tenant) {
            acc.tail_queue_ns += cur.tail_queue_ns;
            acc.tail_e2e_ns += cur.tail_e2e_ns;
        }
        share_permille(acc.tail_queue_ns, acc.tail_e2e_ns)
    }
}

/// The online observability plane. Shared (`Arc`) between the serverless
/// backend (arrival/completion feed), the monitors (health feed, scaling
/// signals) and the harness (report export). Interior mutability only —
/// every method takes `&self`.
#[derive(Debug)]
pub struct ObsPlane {
    cfg: ObsConfig,
    inner: Mutex<Inner>,
}

impl ObsPlane {
    /// A fresh plane under `cfg`.
    pub fn new(cfg: ObsConfig) -> ObsPlane {
        ObsPlane {
            cfg,
            inner: Mutex::new(Inner::new()),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    fn idx(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.cfg.window.as_nanos()
    }

    /// Record one request arriving at the platform's front door.
    pub fn record_arrival(&self, now: SimTime) {
        let mut inner = self.inner.lock();
        inner.roll(&self.cfg, self.idx(now));
        inner.cur.arrivals += 1;
    }

    /// Record one request reaching a terminal state: `e2e` is its
    /// client-observed latency, `queue_wait` the total time it spent in
    /// GPU-server queues across every attempt, `completed` whether it
    /// succeeded. Violation follows the same rule as the offline
    /// [`crate::trace::slo_burn`]: shed/failed always violate; completed
    /// requests violate above the SLO target.
    pub fn record_completion(
        &self,
        now: SimTime,
        tenant: &str,
        e2e: Dur,
        queue_wait: Dur,
        completed: bool,
    ) {
        let violated = !completed || e2e > self.cfg.slo_target;
        let mut inner = self.inner.lock();
        inner.roll(&self.cfg, self.idx(now));
        inner.e2e_sketch.record(e2e.as_nanos());
        inner.queue_sketch.record(queue_wait.as_nanos());
        inner.cur.finished += 1;
        let tw = inner.cur_tenants.entry(tenant.to_string()).or_default();
        tw.total += 1;
        if violated {
            inner.cur.violations += 1;
            let tw = inner
                .cur_tenants
                .get_mut(tenant)
                .expect("entry inserted above");
            tw.violations += 1;
            if e2e > Dur::ZERO {
                tw.tail_queue_ns += queue_wait.as_nanos();
                tw.tail_e2e_ns += e2e.as_nanos();
                inner.cur.tail_queue_ns += queue_wait.as_nanos();
                inner.cur.tail_e2e_ns += e2e.as_nanos();
            }
        }
    }

    /// Record one server's health score (permille; 1000 = fully healthy)
    /// under a stable label. Stored on change only.
    pub fn record_health(&self, now: SimTime, label: &str, score_permille: u64) {
        let score = score_permille.min(1000);
        let mut inner = self.inner.lock();
        inner.roll(&self.cfg, self.idx(now));
        let tl = inner.health.entry(label.to_string()).or_default();
        if tl.last().map(|&(_, s)| s) != Some(score) {
            tl.push((now.as_nanos(), score));
        }
    }

    /// True while the current window's arrivals already exceed
    /// `ramp_num/ramp_den` × the smoothed per-window rate (with at least
    /// [`ObsConfig::min_ramp_arrivals`] arrivals) — the predictive
    /// autoscaler's pre-warm signal.
    pub fn rate_ramp(&self, now: SimTime) -> bool {
        let mut inner = self.inner.lock();
        inner.roll(&self.cfg, self.idx(now));
        let cur = inner.cur.arrivals;
        if cur < self.cfg.min_ramp_arrivals {
            return false;
        }
        // Floor the baseline at one arrival per window so a cold start
        // cannot divide by (near) zero and call everything a ramp.
        let baseline = inner.ewma_rate_milli.max(1000);
        cur * 1000 * self.cfg.ramp_den >= baseline * self.cfg.ramp_num
    }

    /// Smoothed arrival rate: EWMA of per-window arrivals ×1000.
    pub fn ewma_rate_milli(&self, now: SimTime) -> u64 {
        let mut inner = self.inner.lock();
        inner.roll(&self.cfg, self.idx(now));
        inner.ewma_rate_milli
    }

    /// Queue-attributed share (permille) of violating end-to-end time
    /// over the recent fast set plus the current partial window, across
    /// all tenants. `None` while no violating latency has been observed
    /// in that span — callers must treat that as "no attribution data",
    /// not as zero.
    pub fn tail_queue_share_permille(&self, now: SimTime) -> Option<u64> {
        let mut inner = self.inner.lock();
        inner.roll(&self.cfg, self.idx(now));
        let mut q: u64 = inner.share_hist.iter().map(|&(a, _)| a).sum();
        let mut e: u64 = inner.share_hist.iter().map(|&(_, b)| b).sum();
        q += inner.cur.tail_queue_ns;
        e += inner.cur.tail_e2e_ns;
        share_permille(q, e)
    }

    /// One tenant's live fast-window burn rate (`None` without data).
    pub fn tenant_burn_permille(&self, now: SimTime, tenant: &str) -> Option<u64> {
        let mut inner = self.inner.lock();
        inner.roll(&self.cfg, self.idx(now));
        inner.live_fast_burn(&self.cfg, tenant)
    }

    /// True when the backend should shed new work from `tenant`:
    /// [`ObsConfig::shed_burn_threshold_permille`] is set, the tenant's
    /// live fast-window burn is at or above it, and the queue-share gate
    /// holds (burn caused by queueing overload, not by exec slowness).
    pub fn shed_due(&self, now: SimTime, tenant: &str) -> bool {
        let Some(th) = self.cfg.shed_burn_threshold_permille else {
            return false;
        };
        let mut inner = self.inner.lock();
        inner.roll(&self.cfg, self.idx(now));
        inner
            .live_fast_burn(&self.cfg, tenant)
            .is_some_and(|b| b >= th)
            && inner
                .live_queue_share(&self.cfg, tenant)
                .is_some_and(|s| s >= self.cfg.queue_share_threshold_permille)
    }

    /// Snapshot everything into an [`ObsReport`]. Non-destructive and
    /// repeatable: the live state is cloned and its partial window
    /// flushed on the copy, so feeding may continue afterwards.
    pub fn report(&self) -> ObsReport {
        let mut inner = self.inner.lock().clone();
        if inner.started
            && (inner.cur.arrivals > 0 || inner.cur.finished > 0 || !inner.cur_tenants.is_empty())
        {
            inner.finalize_window(&self.cfg);
        }
        ObsReport {
            window_ns: self.cfg.window.as_nanos(),
            windows: inner.windows,
            tenants: inner.tenant_rows,
            alerts: inner.alerts,
            health: inner.health.into_iter().collect(),
            e2e_p50_ns: inner.e2e_sketch.quantile(500),
            e2e_p95_ns: inner.e2e_sketch.quantile(950),
            e2e_p99_ns: inner.e2e_sketch.quantile(990),
            queue_p50_ns: inner.queue_sketch.quantile(500),
            queue_p95_ns: inner.queue_sketch.quantile(950),
            queue_p99_ns: inner.queue_sketch.quantile(990),
        }
    }
}

/// Deterministic snapshot of the observability plane: the dashboard's
/// ground truth. Integer-only; byte-identical per seed via
/// [`ObsReport::dashboard_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsReport {
    /// Aggregation window length (ns).
    pub window_ns: u64,
    /// Finalized global windows, in time order.
    pub windows: Vec<WindowRow>,
    /// Per-tenant burn rows, in (window, tenant) order.
    pub tenants: Vec<TenantBurnRow>,
    /// The alert log, in firing order.
    pub alerts: Vec<AlertEvent>,
    /// Per-server health timelines, sorted by label.
    pub health: Vec<(String, Vec<(u64, u64)>)>,
    /// Streamed end-to-end p50 (sketch upper bound, ns).
    pub e2e_p50_ns: u64,
    /// Streamed end-to-end p95 (ns).
    pub e2e_p95_ns: u64,
    /// Streamed end-to-end p99 (ns).
    pub e2e_p99_ns: u64,
    /// Streamed queue-wait p50 (ns).
    pub queue_p50_ns: u64,
    /// Streamed queue-wait p95 (ns).
    pub queue_p95_ns: u64,
    /// Streamed queue-wait p99 (ns).
    pub queue_p99_ns: u64,
}

impl ObsReport {
    /// Alerts that fired (opened), in order.
    pub fn fired(&self) -> impl Iterator<Item = &AlertEvent> {
        self.alerts.iter().filter(|a| a.kind == AlertKind::Fired)
    }

    /// Render the dashboard JSON: integer-only, deterministic key order,
    /// byte-identical across same-seed reruns.
    pub fn dashboard_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"window_ns\": {},\n", self.window_ns));
        s.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"start_ns\": {}, \"arrivals\": {}, \"finished\": {}, \"violations\": {}, \"ewma_rate_milli\": {}}}{}\n",
                w.start_ns,
                w.arrivals,
                w.finished,
                w.violations,
                w.ewma_rate_milli,
                if i + 1 < self.windows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"tenant\": \"{}\", \"window_start_ns\": {}, \"total\": {}, \"violations\": {}, \"fast_burn_permille\": {}, \"slow_burn_permille\": {}, \"queue_share_permille\": {}}}{}\n",
                t.tenant,
                t.window_start_ns,
                t.total,
                t.violations,
                t.fast_burn_permille,
                t.slow_burn_permille,
                t.queue_share_permille,
                if i + 1 < self.tenants.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"alerts\": [\n");
        for (i, a) in self.alerts.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"at_ns\": {}, \"window_start_ns\": {}, \"tenant\": \"{}\", \"kind\": \"{}\", \"fast_burn_permille\": {}, \"slow_burn_permille\": {}, \"queue_share_permille\": {}}}{}\n",
                a.at.as_nanos(),
                a.window_start_ns,
                a.tenant,
                a.kind.as_str(),
                a.fast_burn_permille,
                a.slow_burn_permille,
                a.queue_share_permille,
                if i + 1 < self.alerts.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"health\": {\n");
        for (i, (label, tl)) in self.health.iter().enumerate() {
            let samples: Vec<String> = tl.iter().map(|(t, v)| format!("[{t},{v}]")).collect();
            s.push_str(&format!(
                "    \"{}\": [{}]{}\n",
                label,
                samples.join(","),
                if i + 1 < self.health.len() { "," } else { "" }
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"latency\": {\n");
        s.push_str(&format!(
            "    \"e2e\": {{\"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}},\n",
            self.e2e_p50_ns, self.e2e_p95_ns, self.e2e_p99_ns
        ));
        s.push_str(&format!(
            "    \"queue\": {{\"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}\n",
            self.queue_p50_ns, self.queue_p95_ns, self.queue_p99_ns
        ));
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Dur::from_millis(ms)
    }

    fn cfg() -> ObsConfig {
        ObsConfig::paper_default()
            .with_window(Dur::from_millis(500))
            .with_slo(Dur::from_millis(100), 100)
            .with_burn_windows(2, 4)
    }

    /// Exact nearest-rank quantile, same rank rule as the sketch.
    fn exact_quantile(sorted: &[u64], q_permille: u64) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((n as u128 * q_permille as u128).div_ceil(1000) as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    fn assert_bound(xs: &[u64], q: u64) {
        let mut sk = QuantileSketch::new();
        for &x in xs {
            sk.record(x);
        }
        let mut sorted = xs.to_vec();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = sk.quantile(q);
        if exact == 0 {
            assert_eq!(est, 0, "q{q} over {} samples", xs.len());
        } else {
            assert!(
                exact <= est && est < 2 * exact,
                "q{q}: exact {exact}, est {est} out of [x, 2x-1]"
            );
        }
    }

    #[test]
    fn sketch_is_exact_on_powers_of_two_minus_one() {
        let mut sk = QuantileSketch::new();
        for v in [0u64, 1, 3, 7, 15] {
            sk.record(v);
        }
        assert_eq!(sk.quantile(1000), 15);
        assert_eq!(sk.quantile(1), 0);
        assert_eq!(sk.quantile(500), 3);
    }

    #[test]
    fn sketch_handles_extremes() {
        let mut sk = QuantileSketch::new();
        assert_eq!(sk.quantile(500), 0, "empty sketch");
        sk.record(u64::MAX);
        assert_eq!(sk.quantile(500), u64::MAX, "top bucket saturates");
    }

    #[test]
    fn sketch_bound_on_adversarial_distributions() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Constant stream.
        assert_bound(&vec![42_000u64; 500], 500);
        assert_bound(&vec![42_000u64; 500], 990);
        // Bimodal: tight cluster + far cluster.
        let mut bimodal: Vec<u64> = vec![10; 450];
        bimodal.extend(vec![1_000_000u64; 50]);
        for q in [500, 950, 990] {
            assert_bound(&bimodal, q);
        }
        // Heavy-tailed Zipf ranks mapped to exponential-ish magnitudes.
        let mut rng = StdRng::seed_from_u64(7);
        let z = crate::rng::Zipf::new(64, 1.2);
        let zipf: Vec<u64> = (0..2000)
            .map(|_| 1u64 << (z.sample(&mut rng).min(40) as u32))
            .collect();
        for q in [500, 950, 990] {
            assert_bound(&zipf, q);
        }
        // Log-normal durations via the sim's deterministic sampler.
        let mut rng = StdRng::seed_from_u64(11);
        let lognorm: Vec<u64> = (0..2000)
            .map(|_| crate::rng::lognormal_dur(&mut rng, (0.01f64).ln(), 1.5).as_nanos())
            .collect();
        for q in [500, 950, 990] {
            assert_bound(&lognorm, q);
        }
    }

    #[test]
    fn ewma_tracks_arrivals_and_ramp_fires_on_surge() {
        let obs = ObsPlane::new(cfg());
        // Two calm windows of 2 arrivals each.
        for w in 0..2u64 {
            for k in 0..2u64 {
                obs.record_arrival(t(w * 500 + k * 100));
            }
        }
        assert!(!obs.rate_ramp(t(1100)), "2 arrivals is under min_ramp");
        // Surge: 10 arrivals early in window 2 → ≥1.5× the EWMA.
        for k in 0..10u64 {
            obs.record_arrival(t(1000 + k * 10));
        }
        assert!(obs.rate_ramp(t(1200)), "10 vs EWMA≈2 is a ramp");
        let rate = obs.ewma_rate_milli(t(1200));
        assert_eq!(rate, 2000, "two seeded windows of 2 → 2000 milli");
    }

    #[test]
    fn gap_windows_finalize_as_zeros() {
        let obs = ObsPlane::new(cfg());
        obs.record_arrival(t(100));
        obs.record_arrival(t(5100)); // 10 windows later
        let r = obs.report();
        assert_eq!(r.windows.len(), 11, "w0..w9 finalized + flushed w10");
        assert_eq!(r.windows[0].arrivals, 1);
        assert!(r.windows[1..10].iter().all(|w| w.arrivals == 0));
        assert_eq!(r.windows[10].arrivals, 1);
    }

    #[test]
    fn burn_alert_fires_on_queue_caused_violations_only() {
        // Tenant "hot": every request violates (e2e 400ms > 100ms target)
        // with queue-dominated latency → alert fires. Tenant "cpu":
        // violates just as hard but with zero queueing → never alerts.
        let obs = ObsPlane::new(cfg());
        for w in 0..4u64 {
            for k in 0..5u64 {
                let at = t(w * 500 + 50 + k * 20);
                obs.record_completion(
                    at,
                    "hot",
                    Dur::from_millis(400),
                    Dur::from_millis(300),
                    true,
                );
                obs.record_completion(at, "cpu", Dur::from_millis(400), Dur::ZERO, true);
            }
        }
        let r = obs.report();
        let fired: Vec<&AlertEvent> = r.fired().collect();
        assert!(!fired.is_empty(), "hot must alert");
        assert!(fired.iter().all(|a| a.tenant == "hot"));
        assert!(
            fired.iter().all(|a| a.queue_share_permille >= 300),
            "every fired alert passed the attribution gate"
        );
        assert!(
            !r.alerts.iter().any(|a| a.tenant == "cpu"),
            "exec-caused burn never alerts: {:?}",
            r.alerts
        );
    }

    #[test]
    fn alerts_are_edge_triggered_and_clear() {
        let obs = ObsPlane::new(cfg());
        // 4 bad windows, then 8 good ones (slow set drains).
        for w in 0..12u64 {
            for k in 0..5u64 {
                let at = t(w * 500 + 50 + k * 20);
                let (e2e, q) = if w < 4 {
                    (Dur::from_millis(400), Dur::from_millis(300))
                } else {
                    (Dur::from_millis(50), Dur::ZERO)
                };
                obs.record_completion(at, "hot", e2e, q, true);
            }
        }
        let r = obs.report();
        let kinds: Vec<AlertKind> = r.alerts.iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![AlertKind::Fired, AlertKind::Cleared],
            "one rising edge, one falling edge: {:?}",
            r.alerts
        );
    }

    #[test]
    fn shed_due_requires_threshold_and_queue_gate() {
        let base = cfg();
        let without = ObsPlane::new(base.clone());
        let with = ObsPlane::new(base.with_shed_burn_threshold(1000));
        for k in 0..10u64 {
            let at = t(50 + k * 20);
            for obs in [&without, &with] {
                obs.record_completion(
                    at,
                    "hot",
                    Dur::from_millis(400),
                    Dur::from_millis(300),
                    true,
                );
                obs.record_completion(at, "cpu", Dur::from_millis(400), Dur::ZERO, true);
            }
        }
        assert!(!without.shed_due(t(300), "hot"), "no threshold configured");
        assert!(with.shed_due(t(300), "hot"), "burning and queue-caused");
        assert!(
            !with.shed_due(t(300), "cpu"),
            "exec-caused burn never sheds"
        );
        assert!(!with.shed_due(t(300), "idle"), "unknown tenant has no data");
    }

    #[test]
    fn health_timeline_dedups_on_change() {
        let obs = ObsPlane::new(cfg());
        obs.record_health(t(0), "srv0.gpu0", 1000);
        obs.record_health(t(200), "srv0.gpu0", 1000);
        obs.record_health(t(400), "srv0.gpu0", 700);
        obs.record_health(t(600), "srv0.gpu0", 700);
        let r = obs.report();
        assert_eq!(r.health.len(), 1);
        assert_eq!(r.health[0].1, vec![(0, 1000), (400_000_000, 700)]);
    }

    #[test]
    fn report_is_repeatable_and_dashboard_deterministic() {
        let obs = ObsPlane::new(cfg());
        for k in 0..7u64 {
            obs.record_arrival(t(k * 130));
            obs.record_completion(
                t(k * 130 + 60),
                "hot",
                Dur::from_millis(150),
                Dur::from_millis(90),
                true,
            );
        }
        obs.record_health(t(400), "srv0.gpu0", 900);
        let a = obs.report();
        let b = obs.report();
        assert_eq!(a, b, "report is non-destructive");
        assert_eq!(a.dashboard_json(), b.dashboard_json());
        // Shape sanity: valid-ish JSON with the documented keys.
        let j = a.dashboard_json();
        for key in [
            "window_ns",
            "windows",
            "tenants",
            "alerts",
            "health",
            "latency",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(ObsConfig::paper_default().validate().is_ok());
        assert!(ObsConfig::paper_default()
            .with_window(Dur::ZERO)
            .validate()
            .is_err());
        assert!(ObsConfig::paper_default()
            .with_burn_windows(0, 4)
            .validate()
            .is_err());
        assert!(ObsConfig::paper_default()
            .with_burn_windows(4, 2)
            .validate()
            .is_err());
        let mut c = ObsConfig::paper_default();
        c.ramp_den = 0;
        assert!(c.validate().is_err());
        c = ObsConfig::paper_default();
        c.error_budget_permille = 0;
        assert!(c.validate().is_err());
        c = ObsConfig::paper_default();
        c.ewma_alpha_permille = 1001;
        assert!(c.validate().is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn exact_quantile(sorted: &[u64], q_permille: u64) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((n as u128 * q_permille as u128).div_ceil(1000) as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    proptest! {
        /// The documented rank-error bound holds for arbitrary streams:
        /// the estimate never undershoots the exact nearest-rank value
        /// and never reaches twice it.
        #[test]
        fn sketch_bound_holds_for_arbitrary_streams(
            xs in proptest::collection::vec(0u64..u64::MAX, 1..512),
            q in 1u64..1001,
        ) {
            let mut sk = QuantileSketch::new();
            for &x in &xs {
                sk.record(x);
            }
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            let exact = exact_quantile(&sorted, q);
            let est = sk.quantile(q);
            if exact == 0 {
                prop_assert_eq!(est, 0);
            } else {
                prop_assert!(exact <= est, "under: exact {} est {}", exact, est);
                // est ≤ 2·exact − 1, saturating so exact near u64::MAX
                // cannot overflow the check.
                prop_assert!(
                    est < exact.saturating_mul(2) || est == u64::MAX && exact > (1 << 63),
                    "over: exact {} est {}", exact, est
                );
            }
        }

        /// Insert order never matters (the sketch is a pure multiset).
        #[test]
        fn sketch_is_order_insensitive(
            xs in proptest::collection::vec(0u64..1_000_000, 2..128),
        ) {
            let mut a = QuantileSketch::new();
            for &x in &xs {
                a.record(x);
            }
            let mut xs = xs;
            xs.reverse();
            let mut b = QuantileSketch::new();
            for &x in &xs {
                b.record(x);
            }
            prop_assert_eq!(a, b);
        }
    }
}
