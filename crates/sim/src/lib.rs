//! # dgsf-sim — deterministic discrete-event simulation substrate
//!
//! The DGSF paper evaluates on real V100 GPUs, real CUDA, and a 10 Gb/s
//! network. This crate is the substitute substrate for all of that hardware:
//! a conservative, sequential discrete-event simulator with
//!
//! * a virtual nanosecond clock ([`SimTime`], [`Dur`]),
//! * thread-backed cooperative **processes** written as ordinary blocking
//!   Rust ([`Sim::spawn`], [`ProcCtx`]),
//! * MPMC **channels** with virtual-time blocking receives
//!   ([`SimSender`], [`SimReceiver`]),
//! * shared-capacity **resources** — processor-sharing ([`GpsResource`]) and
//!   serialized ([`FifoResource`]) — with busy [`Timeline`]s for NVML-style
//!   utilization sampling, and
//! * a seeded RNG threaded through the kernel for reproducible arrival
//!   processes.
//!
//! Runs are fully deterministic for a given seed: exactly one simulated
//! process executes at any moment and ties are broken in FIFO schedule
//! order.
//!
//! ## Example
//!
//! ```
//! use dgsf_sim::{Sim, Dur, GpsResource};
//! use std::sync::Arc;
//!
//! let mut sim = Sim::new(7);
//! let gpu = Arc::new(GpsResource::new(&sim, 1.0)); // 1 "GPU-second" per second
//! for i in 0..2 {
//!     let gpu = gpu.clone();
//!     sim.spawn(&format!("kernel{i}"), move |ctx| {
//!         gpu.acquire(ctx, 1.0); // two 1s kernels sharing => both end at ~2s
//!         assert!((ctx.now().as_secs_f64() - 2.0).abs() < 1e-6);
//!     });
//! }
//! sim.run();
//! ```

#![warn(missing_docs)]

mod channel;
pub mod invariants;
mod kernel;
pub mod obs;
mod resource;
pub mod rng;
pub mod stats;
pub mod telemetry;
mod time;
pub mod trace;

pub use channel::{RecvError, SimReceiver, SimSender};
pub use invariants::{
    InvariantReport, InvocationFacts, MigrationFacts, RequestFacts, RequestOutcome, Violation,
};
pub use kernel::{ProcCtx, ProcId, ShutdownSignal, Sim, SimHandle};
pub use obs::{
    AlertEvent, AlertKind, ObsConfig, ObsPlane, ObsReport, QuantileSketch, TenantBurnRow, WindowRow,
};
pub use resource::{FifoResource, GpsResource, Timeline};
pub use stats::{moving_average, percentile_sorted, Summary};
pub use telemetry::{EventRecord, Histogram, SpanRecord, Telemetry, TelemetryExport, TraceCtx};
pub use time::{Dur, SimTime};
pub use trace::{GroupAttribution, Segment, SloBurn, SloPolicy, TraceOutcome, TraceTree};
