//! Exactly-once invariant oracle over a finished run's facts.
//!
//! The platform promises that every admitted invocation is **executed
//! exactly once or failed/shed exactly once — never lost, never
//! double-run** — and that the migration state machine never goes
//! backwards, even while the fault injector races kills and message drops
//! against live migration. This module is the always-on (in tests) checker
//! for those promises: callers convert their domain records into the
//! neutral fact types below and [`check`] returns every violation it can
//! find, instead of panicking on the first.
//!
//! The facts are deliberately plain data (ids and timestamps only) so the
//! oracle has no dependency on the server/serverless crates and can be
//! exercised directly in unit tests with hand-built histories.

use crate::telemetry::EventRecord;
use crate::time::SimTime;

/// Lifecycle facts of one GPU invocation, as the server recorded it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationFacts {
    /// Platform-assigned invocation id.
    pub invocation: u64,
    /// When the GPU request reached the monitor.
    pub requested_at: SimTime,
    /// When an API server was assigned, if ever.
    pub assigned_at: Option<SimTime>,
    /// When the function completed, if it did.
    pub done_at: Option<SimTime>,
    /// When the invocation was declared failed, if it was.
    pub failed_at: Option<SimTime>,
    /// Trace id of the serverless request this invocation served.
    pub trace: Option<u64>,
}

/// Terminal outcome of one serverless request (one trace id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The request returned a successful result to the caller.
    Completed,
    /// The request failed after exhausting its attempts.
    Failed,
    /// The request was shed (admission control / overload).
    Shed,
}

/// Facts of one serverless request, keyed by trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestFacts {
    /// Platform-unique trace id.
    pub trace: u64,
    /// What the caller was told.
    pub outcome: RequestOutcome,
}

/// Facts of one committed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationFacts {
    /// API server that moved.
    pub server: u32,
    /// Source GPU id.
    pub from: u32,
    /// Destination GPU id.
    pub to: u32,
    /// When the state transfer started.
    pub begun_at: SimTime,
    /// When the migration committed.
    pub completed_at: SimTime,
}

/// One broken invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule broke (stable, grep-able name).
    pub rule: &'static str,
    /// Human-readable specifics (ids, timestamps).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Everything the oracle found, plus how much it looked at.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Every violation, in discovery order.
    pub violations: Vec<Violation>,
    /// Invocations inspected.
    pub checked_invocations: usize,
    /// Requests inspected.
    pub checked_requests: usize,
    /// Migrations inspected.
    pub checked_migrations: usize,
}

impl InvariantReport {
    /// True when no invariant broke.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with every violation listed (test harness entry point).
    pub fn assert_ok(&self) {
        assert!(
            self.ok(),
            "{} invariant violation(s) over {} invocations / {} requests / {} migrations:\n{}",
            self.violations.len(),
            self.checked_invocations,
            self.checked_requests,
            self.checked_migrations,
            self.violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: InvariantReport) {
        self.violations.extend(other.violations);
        self.checked_invocations += other.checked_invocations;
        self.checked_requests += other.checked_requests;
        self.checked_migrations += other.checked_migrations;
    }

    fn violate(&mut self, rule: &'static str, detail: String) {
        self.violations.push(Violation { rule, detail });
    }
}

/// Check the exactly-once and state-machine invariants over a finished
/// run. `requests` may be empty when the caller drove the server directly
/// (no serverless layer); per-trace rules then only use the invocations'
/// own trace ids.
pub fn check(
    invocations: &[InvocationFacts],
    requests: &[RequestFacts],
    migrations: &[MigrationFacts],
) -> InvariantReport {
    let mut r = InvariantReport {
        checked_invocations: invocations.len(),
        checked_requests: requests.len(),
        checked_migrations: migrations.len(),
        ..InvariantReport::default()
    };

    for inv in invocations {
        let id = inv.invocation;
        match (inv.done_at, inv.failed_at) {
            (Some(d), Some(f)) => r.violate(
                "terminal-exclusive",
                format!("invocation {id} both done (at {d:?}) and failed (at {f:?})"),
            ),
            (None, None) => r.violate(
                "never-lost",
                format!("invocation {id} has no terminal state: admitted but lost"),
            ),
            _ => {}
        }
        if let Some(a) = inv.assigned_at {
            if a < inv.requested_at {
                r.violate(
                    "time-ordered",
                    format!(
                        "invocation {id} assigned at {a:?} before requested at {:?}",
                        inv.requested_at
                    ),
                );
            }
        }
        if let Some(d) = inv.done_at {
            match inv.assigned_at {
                None => r.violate(
                    "done-needs-assignment",
                    format!("invocation {id} done without ever being assigned"),
                ),
                Some(a) if d < a => r.violate(
                    "time-ordered",
                    format!("invocation {id} done at {d:?} before assigned at {a:?}"),
                ),
                _ => {}
            }
        }
        if let Some(f) = inv.failed_at {
            if f < inv.requested_at {
                r.violate(
                    "time-ordered",
                    format!(
                        "invocation {id} failed at {f:?} before requested at {:?}",
                        inv.requested_at
                    ),
                );
            }
        }
    }

    // Per-request (trace) rules: a trace must complete at most once across
    // every attempt the retry layer made for it.
    let mut by_trace: std::collections::HashMap<u64, Vec<&InvocationFacts>> =
        std::collections::HashMap::new();
    for inv in invocations {
        if let Some(t) = inv.trace {
            by_trace.entry(t).or_default().push(inv);
        }
    }
    for (trace, invs) in &by_trace {
        let dones: Vec<u64> = invs
            .iter()
            .filter(|i| i.done_at.is_some())
            .map(|i| i.invocation)
            .collect();
        if dones.len() > 1 {
            r.violate(
                "never-double-run",
                format!(
                    "trace {trace} completed {} times (invocations {dones:?})",
                    dones.len()
                ),
            );
        }
    }
    for req in requests {
        let dones = by_trace
            .get(&req.trace)
            .map(|invs| invs.iter().filter(|i| i.done_at.is_some()).count())
            .unwrap_or(0);
        let attempts = by_trace.get(&req.trace).map(|v| v.len()).unwrap_or(0);
        match req.outcome {
            RequestOutcome::Completed => {
                if attempts > 0 && dones != 1 {
                    r.violate(
                        "completed-exactly-once",
                        format!(
                            "trace {} reported completed but {dones} of its {attempts} \
                             invocations are done",
                            req.trace
                        ),
                    );
                }
            }
            RequestOutcome::Failed | RequestOutcome::Shed => {
                if dones != 0 {
                    r.violate(
                        "failed-means-no-run",
                        format!(
                            "trace {} reported {:?} but {dones} invocation(s) completed — \
                             the caller saw a failure for work that ran",
                            req.trace, req.outcome
                        ),
                    );
                }
            }
        }
    }

    // Migration state machine: time moves forward and one server is never
    // in two migrations at once.
    let mut by_server: std::collections::HashMap<u32, Vec<&MigrationFacts>> =
        std::collections::HashMap::new();
    for m in migrations {
        if m.from == m.to {
            r.violate(
                "migration-moves",
                format!(
                    "server {} migrated {} -> {} (no-op committed)",
                    m.server, m.from, m.to
                ),
            );
        }
        if m.completed_at < m.begun_at {
            r.violate(
                "migration-forward",
                format!(
                    "server {} migration completed at {:?} before it began at {:?}",
                    m.server, m.completed_at, m.begun_at
                ),
            );
        }
        by_server.entry(m.server).or_default().push(m);
    }
    for (server, mut ms) in by_server {
        ms.sort_by_key(|m| (m.begun_at, m.completed_at));
        for w in ms.windows(2) {
            if w[1].begun_at < w[0].completed_at {
                r.violate(
                    "migration-serialized",
                    format!(
                        "server {server} began a migration at {:?} while one was still \
                         in flight (until {:?})",
                        w[1].begun_at, w[0].completed_at
                    ),
                );
            }
            // Chained moves: the next migration leaves from where the last
            // one arrived, unless the server went home between functions.
            if w[1].from != w[0].to && w[1].from != w[0].from {
                // Reverting to the home GPU between functions is legal and
                // unlogged; only flag a source that matches *neither* the
                // previous destination nor the previous source (home).
                r.violate(
                    "migration-continuous",
                    format!(
                        "server {server} migration from GPU {} follows one that ended on \
                         GPU {} (and did not start from its previous source {})",
                        w[1].from, w[0].to, w[0].from
                    ),
                );
            }
        }
    }

    r
}

/// Cross-check the migration log against the telemetry stream: every
/// committed migration must have exactly one `migration-begin` instant at
/// its begin time and exactly one `migration` (completion) instant at its
/// commit time, with matching server/from/to args; and every begin must be
/// accounted for by a completion, an abort, or a server death.
///
/// `allow_unfinished` is the number of begins allowed to have no matching
/// completion or abort (servers killed mid-migration emit nothing further).
pub fn check_migration_telemetry(
    migrations: &[MigrationFacts],
    events: &[EventRecord],
    allow_unfinished: usize,
) -> InvariantReport {
    let mut r = InvariantReport {
        checked_migrations: migrations.len(),
        ..InvariantReport::default()
    };
    let arg = |e: &EventRecord, k: &str| -> Option<String> {
        e.args.iter().find(|(a, _)| a == k).map(|(_, v)| v.clone())
    };
    let matches = |e: &EventRecord, m: &MigrationFacts| {
        arg(e, "server").as_deref() == Some(m.server.to_string().as_str())
            && arg(e, "from").as_deref() == Some(m.from.to_string().as_str())
            && arg(e, "to").as_deref() == Some(m.to.to_string().as_str())
    };
    let begins: Vec<&EventRecord> = events
        .iter()
        .filter(|e| e.name == "migration-begin")
        .collect();
    let completes: Vec<&EventRecord> = events.iter().filter(|e| e.name == "migration").collect();
    let aborts: Vec<&EventRecord> = events
        .iter()
        .filter(|e| e.name == "migration-aborted")
        .collect();

    for m in migrations {
        let b = begins
            .iter()
            .filter(|e| e.at == m.begun_at && matches(e, m))
            .count();
        if b != 1 {
            r.violate(
                "telemetry-begin-matches-log",
                format!(
                    "migration of server {} ({} -> {}) begun at {:?} has {b} matching \
                     begin instants (want exactly 1)",
                    m.server, m.from, m.to, m.begun_at
                ),
            );
        }
        let c = completes
            .iter()
            .filter(|e| e.at == m.completed_at && matches(e, m))
            .count();
        if c != 1 {
            r.violate(
                "telemetry-complete-matches-log",
                format!(
                    "migration of server {} ({} -> {}) completed at {:?} has {c} matching \
                     completion instants (want exactly 1)",
                    m.server, m.from, m.to, m.completed_at
                ),
            );
        }
    }
    if completes.len() != migrations.len() {
        r.violate(
            "telemetry-no-phantom-migrations",
            format!(
                "{} migration completion instants but {} log records",
                completes.len(),
                migrations.len()
            ),
        );
    }
    // begins = completes + aborts + (servers that died mid-migration).
    let accounted = completes.len() + aborts.len();
    if begins.len() < accounted || begins.len() > accounted + allow_unfinished {
        r.violate(
            "telemetry-begins-accounted",
            format!(
                "{} begins vs {} completions + {} aborts (allow {} unfinished)",
                begins.len(),
                completes.len(),
                aborts.len(),
                allow_unfinished
            ),
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Dur::from_millis(ms)
    }

    fn inv(id: u64, trace: u64) -> InvocationFacts {
        InvocationFacts {
            invocation: id,
            requested_at: t(0),
            assigned_at: Some(t(10)),
            done_at: Some(t(100)),
            failed_at: None,
            trace: Some(trace),
        }
    }

    #[test]
    fn clean_history_passes() {
        let invs = [inv(1, 7), {
            let mut i = inv(2, 8);
            i.done_at = None;
            i.failed_at = Some(t(50));
            i
        }];
        let reqs = [
            RequestFacts {
                trace: 7,
                outcome: RequestOutcome::Completed,
            },
            RequestFacts {
                trace: 8,
                outcome: RequestOutcome::Failed,
            },
        ];
        let migs = [MigrationFacts {
            server: 0,
            from: 0,
            to: 1,
            begun_at: t(20),
            completed_at: t(30),
        }];
        check(&invs, &reqs, &migs).assert_ok();
    }

    #[test]
    fn lost_invocation_is_flagged() {
        let mut i = inv(1, 7);
        i.done_at = None;
        i.failed_at = None;
        let r = check(&[i], &[], &[]);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "never-lost");
    }

    #[test]
    fn double_run_is_flagged() {
        // Two invocations of the same trace both completed: the retry layer
        // re-ran work whose first run succeeded.
        let r = check(&[inv(1, 7), inv(2, 7)], &[], &[]);
        assert!(r.violations.iter().any(|v| v.rule == "never-double-run"));
    }

    #[test]
    fn double_terminal_and_bad_ordering_are_flagged() {
        let mut both = inv(1, 7);
        both.failed_at = Some(t(101));
        let mut backwards = inv(2, 8);
        backwards.assigned_at = Some(t(10));
        backwards.done_at = Some(t(5));
        let r = check(&[both, backwards], &[], &[]);
        assert!(r.violations.iter().any(|v| v.rule == "terminal-exclusive"));
        assert!(r.violations.iter().any(|v| v.rule == "time-ordered"));
    }

    #[test]
    fn failed_request_with_completed_work_is_flagged() {
        let r = check(
            &[inv(1, 7)],
            &[RequestFacts {
                trace: 7,
                outcome: RequestOutcome::Failed,
            }],
            &[],
        );
        assert!(r.violations.iter().any(|v| v.rule == "failed-means-no-run"));
    }

    #[test]
    fn overlapping_migrations_are_flagged() {
        let migs = [
            MigrationFacts {
                server: 3,
                from: 0,
                to: 1,
                begun_at: t(10),
                completed_at: t(30),
            },
            MigrationFacts {
                server: 3,
                from: 1,
                to: 0,
                begun_at: t(20),
                completed_at: t(40),
            },
        ];
        let r = check(&[], &[], &migs);
        assert!(r
            .violations
            .iter()
            .any(|v| v.rule == "migration-serialized"));
    }

    #[test]
    fn backwards_and_noop_migrations_are_flagged() {
        let migs = [MigrationFacts {
            server: 0,
            from: 1,
            to: 1,
            begun_at: t(10),
            completed_at: t(5),
        }];
        let r = check(&[], &[], &migs);
        assert!(r.violations.iter().any(|v| v.rule == "migration-moves"));
        assert!(r.violations.iter().any(|v| v.rule == "migration-forward"));
    }

    #[test]
    fn telemetry_cross_check_matches_instants() {
        let m = MigrationFacts {
            server: 2,
            from: 0,
            to: 1,
            begun_at: t(10),
            completed_at: t(25),
        };
        let ev = |name: &str, at: SimTime| EventRecord {
            track: "api-server-2".into(),
            name: name.into(),
            at,
            args: vec![
                ("server".into(), "2".into()),
                ("from".into(), "0".into()),
                ("to".into(), "1".into()),
            ],
        };
        let good = [ev("migration-begin", t(10)), ev("migration", t(25))];
        check_migration_telemetry(&[m], &good, 0).assert_ok();

        // A completion instant at the wrong time breaks the cross-check.
        let skewed = [ev("migration-begin", t(10)), ev("migration", t(26))];
        let r = check_migration_telemetry(&[m], &skewed, 0);
        assert!(!r.ok());

        // A begin with no completion is only legal when deaths allow it.
        let unfinished = [
            ev("migration-begin", t(10)),
            ev("migration", t(25)),
            ev("migration-begin", t(40)),
        ];
        assert!(!check_migration_telemetry(&[m], &unfinished, 0).ok());
        check_migration_telemetry(&[m], &unfinished, 1).assert_ok();
    }
}
