//! Small statistics helpers used by the experiment harness.

/// Summary statistics over a sample of `f64`s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Sum of all samples.
    pub sum: f64,
}

impl Summary {
    /// Compute summary statistics; returns an all-zero summary for an empty
    /// sample.
    pub fn from(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                sum: 0.0,
            };
        }
        let n = samples.len();
        let sum: f64 = samples.iter().sum();
        let mean = sum / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
            sum,
        }
    }
}

/// Nearest-rank percentile over a pre-sorted sample.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Jain's fairness index over `xs`, in permille: `(Σx)² / (n·Σx²)`.
/// 1000 means every party gets the same value; 1000/n means one party gets
/// everything. All-zero input is vacuously fair. Integer arithmetic only,
/// so it is safe inside byte-deterministic exports.
pub fn jain_permille(xs: &[u64]) -> u64 {
    let n = xs.len() as u128;
    if n == 0 {
        return 1000;
    }
    let s: u128 = xs.iter().map(|&x| x as u128).sum();
    let s2: u128 = xs.iter().map(|&x| (x as u128) * (x as u128)).sum();
    if s2 == 0 {
        return 1000;
    }
    ((s * s * 1000) / (n * s2)) as u64
}

/// Simple centered-window-free moving average (trailing window of size `w`),
/// matching the paper's "moving average window of size 5" for Figure 7.
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    if w == 0 || xs.is_empty() {
        return xs.to_vec();
    }
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        acc += x;
        if i >= w {
            acc -= xs[i - w];
        }
        let len = (i + 1).min(w);
        out.push(acc / len as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.sum - 10.0).abs() < 1e-12);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::from(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile_sorted(&sorted, 0.50), 50.0);
        assert_eq!(percentile_sorted(&sorted, 0.95), 95.0);
        assert_eq!(percentile_sorted(&sorted, 0.99), 99.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 100.0);
    }

    #[test]
    fn percentiles_on_empty_input_are_zero() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_sorted(&[], q), 0.0);
        }
    }

    #[test]
    fn percentiles_on_single_sample_return_it_for_every_q() {
        // Nearest rank clamps to rank 1, including at the q=0 boundary and
        // out-of-range q values.
        for q in [-0.5, 0.0, 0.001, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(percentile_sorted(&[7.5], q), 7.5);
        }
        let s = Summary::from(&[7.5]);
        assert_eq!((s.n, s.min, s.max), (1, 7.5, 7.5));
        assert_eq!((s.p50, s.p95, s.p99), (7.5, 7.5, 7.5));
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn q_boundaries_clamp_to_first_and_last_rank() {
        let sorted = [10.0, 20.0, 30.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 30.0);
        // Values outside [0,1] clamp rather than indexing out of bounds.
        assert_eq!(percentile_sorted(&sorted, -1.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 42.0), 30.0);
    }

    #[test]
    fn moving_average_window() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ma = moving_average(&xs, 2);
        assert_eq!(ma, vec![0.0, 0.5, 1.5, 2.5, 3.5]);
        // window 0 or empty input: identity
        assert_eq!(moving_average(&xs, 0), xs.to_vec());
        assert!(moving_average(&[], 5).is_empty());
    }
}
