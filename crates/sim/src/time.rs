//! Virtual time for the simulation.
//!
//! All simulated components express time as [`SimTime`] (an absolute instant)
//! and [`Dur`] (a span). Both are nanosecond-resolution `u64`s, which keeps
//! arithmetic exact and runs deterministic: two runs with the same seed see
//! exactly the same timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the start of the run.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// A span of `n` whole seconds.
    #[inline]
    pub const fn from_secs(n: u64) -> Dur {
        Dur(n * 1_000_000_000)
    }

    /// A span of `n` milliseconds.
    #[inline]
    pub const fn from_millis(n: u64) -> Dur {
        Dur(n * 1_000_000)
    }

    /// A span of `n` microseconds.
    #[inline]
    pub const fn from_micros(n: u64) -> Dur {
        Dur(n * 1_000)
    }

    /// A span of fractional seconds. Negative or non-finite inputs clamp to
    /// zero; callers feed this from calibrated cost models, where a negative
    /// intermediate simply means "free".
    pub fn from_secs_f64(secs: f64) -> Dur {
        if !secs.is_finite() || secs <= 0.0 {
            return Dur::ZERO;
        }
        Dur((secs * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float (reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: SimTime) -> Dur {
        self.since(rhs)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let d = Dur::from_secs_f64(3.2);
        assert_eq!(d.as_nanos(), 3_200_000_000);
        assert!((d.as_secs_f64() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::INFINITY), Dur::ZERO);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::ZERO + Dur::from_millis(250);
        assert_eq!(t.as_nanos(), 250_000_000);
        assert_eq!(t.since(SimTime::ZERO), Dur::from_millis(250));
        // saturating: earlier.since(later) == 0
        assert_eq!(SimTime::ZERO.since(t), Dur::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(Dur::from_micros(1) < Dur::from_millis(1));
    }
}
