//! MPMC channels between simulated processes.
//!
//! Sends never block (the queue is unbounded); receives block the calling
//! *simulated* process until a message is available, a timeout elapses in
//! virtual time, or the simulation shuts down. Delivery latency is zero —
//! model network/queueing delay explicitly with resources or sleeps.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{ProcCtx, ProcId, Shared};
use crate::time::Dur;

struct ChanInner<T> {
    state: Mutex<ChanState<T>>,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    /// Parked receivers, FIFO. Entries are removed either by a sender (which
    /// schedules their wake) or by the receiver itself on timeout/shutdown.
    waiters: VecDeque<(ProcId, u64)>,
}

/// Sending half of a simulation channel. Cloneable.
pub struct SimSender<T> {
    inner: Arc<ChanInner<T>>,
}

/// Receiving half of a simulation channel. Cloneable (MPMC).
pub struct SimReceiver<T> {
    inner: Arc<ChanInner<T>>,
}

impl<T> Clone for SimSender<T> {
    fn clone(&self) -> Self {
        SimSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for SimReceiver<T> {
    fn clone(&self) -> Self {
        SimReceiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Why a `recv_timeout` returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The deadline passed with no message.
    Timeout,
    /// The simulation is shutting down; the process should return.
    Shutdown,
}

pub(crate) fn channel<T: Send + 'static>(shared: &Arc<Shared>) -> (SimSender<T>, SimReceiver<T>) {
    let _ = shared; // channels key off the caller's ProcCtx for kernel access
    let inner = Arc::new(ChanInner {
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            waiters: VecDeque::new(),
        }),
    });
    (
        SimSender {
            inner: Arc::clone(&inner),
        },
        SimReceiver { inner },
    )
}

impl<T: Send + 'static> SimSender<T> {
    /// Enqueue `v` and wake one parked receiver (at the current virtual
    /// time). Never blocks.
    pub fn send(&self, ctx: &ProcCtx, v: T) {
        let mut st = ctx.lock_state();
        let mut ch = self.inner.state.lock();
        ch.queue.push_back(v);
        if let Some((pid, generation)) = ch.waiters.pop_front() {
            let now = st.now;
            st.schedule_wake(now, pid, generation);
        }
    }

    /// Number of queued (undelivered) messages.
    pub fn queued(&self) -> usize {
        self.inner.state.lock().queue.len()
    }
}

impl<T: Send + 'static> SimReceiver<T> {
    /// Block the simulated process until a message arrives. Returns `None`
    /// when the simulation is shutting down.
    pub fn recv(&self, ctx: &ProcCtx) -> Option<T> {
        loop {
            {
                let mut st = ctx.lock_state();
                let mut ch = self.inner.state.lock();
                if let Some(v) = ch.queue.pop_front() {
                    return Some(v);
                }
                if st.shutdown {
                    return None;
                }
                let generation = st.begin_park(ctx.pid());
                ch.waiters.push_back((ctx.pid(), generation));
            }
            if ctx.yield_parked_raw() {
                self.deregister(ctx);
                return None;
            }
            // Spurious wake is possible under MPMC (another receiver took the
            // message); loop and re-park.
            self.deregister(ctx);
        }
    }

    /// Block until a message arrives or `timeout` of virtual time elapses.
    pub fn recv_timeout(&self, ctx: &ProcCtx, timeout: Dur) -> Result<T, RecvError> {
        let deadline = ctx.now() + timeout;
        loop {
            {
                let mut st = ctx.lock_state();
                let mut ch = self.inner.state.lock();
                if let Some(v) = ch.queue.pop_front() {
                    return Ok(v);
                }
                if st.shutdown {
                    return Err(RecvError::Shutdown);
                }
                if st.now >= deadline {
                    return Err(RecvError::Timeout);
                }
                let generation = st.begin_park(ctx.pid());
                ch.waiters.push_back((ctx.pid(), generation));
                st.schedule_wake(deadline, ctx.pid(), generation);
            }
            let shutdown = ctx.yield_parked_raw();
            self.deregister(ctx);
            if shutdown {
                return Err(RecvError::Shutdown);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.state.lock().queue.pop_front()
    }

    /// Drain everything currently queued (non-blocking).
    pub fn drain(&self) -> Vec<T> {
        let mut ch = self.inner.state.lock();
        ch.queue.drain(..).collect()
    }

    /// Remove this process from the waiter list, if still registered.
    fn deregister(&self, ctx: &ProcCtx) {
        let _st = ctx.lock_state();
        let mut ch = self.inner.state.lock();
        let pid = ctx.pid();
        ch.waiters.retain(|(p, _)| *p != pid);
    }
}

impl ProcCtx {
    /// Like `yield_parked` but reports shutdown instead of panicking, so
    /// blocking primitives can offer a clean-exit path.
    pub(crate) fn yield_parked_raw(&self) -> bool {
        self.yield_parked_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;
    use crate::time::SimTime;

    #[test]
    fn send_wakes_receiver_at_send_time() {
        let mut sim = Sim::new(1);
        let (tx, rx) = sim.channel::<u32>();
        let got = Arc::new(Mutex::new(None));
        let g = got.clone();
        sim.spawn("rx", move |ctx| {
            let v = rx.recv(ctx).unwrap();
            *g.lock() = Some((v, ctx.now()));
        });
        sim.spawn("tx", move |ctx| {
            ctx.sleep(Dur::from_millis(42));
            tx.send(ctx, 99);
        });
        sim.run();
        let (v, t) = got.lock().unwrap();
        assert_eq!(v, 99);
        assert_eq!(t, SimTime::ZERO + Dur::from_millis(42));
    }

    #[test]
    fn recv_timeout_times_out_in_virtual_time() {
        let mut sim = Sim::new(1);
        let (_tx, rx) = sim.channel::<u32>();
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("rx", move |ctx| {
            let r = rx.recv_timeout(ctx, Dur::from_secs(5));
            *o.lock() = Some((r, ctx.now()));
        });
        sim.run();
        let (r, t) = out.lock().take().unwrap();
        assert_eq!(r, Err(RecvError::Timeout));
        assert_eq!(t, SimTime::ZERO + Dur::from_secs(5));
    }

    #[test]
    fn message_beats_timeout() {
        let mut sim = Sim::new(1);
        let (tx, rx) = sim.channel::<u32>();
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        sim.spawn("rx", move |ctx| {
            let r = rx.recv_timeout(ctx, Dur::from_secs(5));
            *o.lock() = Some((r, ctx.now()));
        });
        sim.spawn("tx", move |ctx| {
            ctx.sleep(Dur::from_secs(1));
            tx.send(ctx, 7);
        });
        sim.run();
        let (r, t) = out.lock().take().unwrap();
        assert_eq!(r, Ok(7));
        assert_eq!(t, SimTime::ZERO + Dur::from_secs(1));
        // The stale timer wake at t=5s must not disturb anything (run ended).
    }

    #[test]
    fn fifo_order_between_messages() {
        let mut sim = Sim::new(1);
        let (tx, rx) = sim.channel::<u32>();
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = out.clone();
        sim.spawn("rx", move |ctx| {
            for _ in 0..3 {
                o.lock().push(rx.recv(ctx).unwrap());
            }
        });
        sim.spawn("tx", move |ctx| {
            for v in [1, 2, 3] {
                tx.send(ctx, v);
                ctx.sleep(Dur::from_millis(1));
            }
        });
        sim.run();
        assert_eq!(*out.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn mpmc_distributes_messages() {
        let mut sim = Sim::new(1);
        let (tx, rx) = sim.channel::<u32>();
        let count = Arc::new(Mutex::new(0u32));
        for i in 0..4 {
            let rx = rx.clone();
            let count = count.clone();
            sim.spawn(&format!("worker{i}"), move |ctx| {
                while let Ok(_v) = rx.recv_timeout(ctx, Dur::from_secs(1)) {
                    ctx.sleep(Dur::from_millis(10));
                    *count.lock() += 1;
                }
            });
        }
        sim.spawn("producer", move |ctx| {
            for v in 0..20 {
                tx.send(ctx, v);
                ctx.sleep(Dur::from_millis(1));
            }
        });
        sim.run();
        assert_eq!(*count.lock(), 20);
    }
}
