//! Shared-capacity resources.
//!
//! Two contention models are provided:
//!
//! * [`GpsResource`] — generalized processor sharing. All active jobs share
//!   the capacity equally; when the active set changes, remaining work is
//!   re-apportioned. This is how the GPU compute engine, NICs, PCIe links and
//!   the object store are modeled: two compute-heavy functions that share one
//!   GPU each run at roughly half speed, which is the behaviour DGSF's
//!   sharing/migration experiments depend on.
//! * [`FifoResource`] — strict serialization. Used for the ablation that
//!   compares processor-sharing against serialized kernel execution.
//!
//! Both record a [`Timeline`] of their active-job count, from which NVML-like
//! utilization samples are derived.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{ProcCtx, ProcId, Shared, Sim, SimState};
use crate::time::{Dur, SimTime};

/// Transition log of a resource's active-job count. Appended on every
/// arrival/departure; queried for busy time and utilization.
#[derive(Default, Clone)]
pub struct Timeline {
    /// `(time, active)` — the active count from `time` until the next entry.
    entries: Vec<(SimTime, u32)>,
}

impl Timeline {
    fn record(&mut self, t: SimTime, active: u32) {
        if let Some(last) = self.entries.last_mut() {
            if last.0 == t {
                last.1 = active;
                return;
            }
            if last.1 == active {
                return;
            }
        }
        self.entries.push((t, active));
    }

    /// Active count at time `t` (0 before the first entry).
    pub fn active_at(&self, t: SimTime) -> u32 {
        match self.entries.binary_search_by_key(&t, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(0) => 0,
            Err(i) => self.entries[i - 1].1,
        }
    }

    /// Time within `[a, b)` during which at least one job was active.
    pub fn busy_between(&self, a: SimTime, b: SimTime) -> Dur {
        if b <= a || self.entries.is_empty() {
            return Dur::ZERO;
        }
        let mut busy = 0u64;
        let start_idx = match self.entries.binary_search_by_key(&a, |e| e.0) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        for (i, &(t, active)) in self.entries.iter().enumerate().skip(start_idx) {
            let seg_start = t.max(a);
            let seg_end = self
                .entries
                .get(i + 1)
                .map(|e| e.0)
                .unwrap_or(SimTime::MAX)
                .min(b);
            if seg_end <= seg_start {
                if t >= b {
                    break;
                }
                continue;
            }
            if active >= 1 {
                busy += seg_end.since(seg_start).as_nanos();
            }
        }
        Dur(busy)
    }

    /// NVML-style utilization samples: for each sample period of length
    /// `period` in `[start, end)`, the fraction of the period during which at
    /// least one job was active.
    pub fn utilization_samples(&self, start: SimTime, end: SimTime, period: Dur) -> Vec<f64> {
        let mut out = Vec::new();
        if period == Dur::ZERO {
            return out;
        }
        let mut t = start;
        while t < end {
            let next = (t + period).min(end);
            let span = next.since(t);
            if span == Dur::ZERO {
                break;
            }
            let busy = self.busy_between(t, next);
            out.push(busy.as_nanos() as f64 / span.as_nanos() as f64);
            t = next;
        }
        out
    }

    /// Mean active-job count over `[a, b)` (time-weighted).
    pub fn avg_active(&self, a: SimTime, b: SimTime) -> f64 {
        if b <= a || self.entries.is_empty() {
            return 0.0;
        }
        let mut weighted = 0.0;
        for (i, &(t, active)) in self.entries.iter().enumerate() {
            let seg_start = t.max(a);
            let seg_end = self
                .entries
                .get(i + 1)
                .map(|e| e.0)
                .unwrap_or(SimTime::MAX)
                .min(b);
            if seg_end > seg_start {
                weighted += active as f64 * seg_end.since(seg_start).as_secs_f64();
            }
        }
        weighted / b.since(a).as_secs_f64()
    }

    /// Number of recorded transitions (for memory diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

struct GpsJob {
    pid: ProcId,
    generation: u64,
    /// Remaining work, in units of `capacity × seconds`.
    remaining: f64,
}

struct Gps {
    /// Work units completed per second when a single job is active.
    capacity: f64,
    jobs: Vec<GpsJob>,
    last: SimTime,
    /// Bumped on every state change; stale completion timers check it.
    version: u64,
    timeline: Timeline,
}

impl Gps {
    /// Apportion capacity equally among active jobs for the elapsed window.
    fn settle(&mut self, now: SimTime) {
        let n = self.jobs.len();
        if n > 0 {
            let elapsed = now.since(self.last).as_secs_f64();
            if elapsed > 0.0 {
                let done = elapsed * self.capacity / n as f64;
                for j in &mut self.jobs {
                    j.remaining -= done;
                }
            }
        }
        self.last = now;
    }

    fn completion_eps(&self) -> f64 {
        // One event-queue tick (1 ns) of slack, scaled to work units.
        self.capacity * 2e-9 + 1e-12
    }
}

/// A generalized-processor-sharing resource.
pub struct GpsResource {
    inner: Arc<Mutex<Gps>>,
}

impl GpsResource {
    /// `capacity` is in work units per second (e.g. bytes/s for a link,
    /// 1.0 for "seconds of exclusive use" on a GPU).
    pub fn new(sim: &Sim, capacity: f64) -> GpsResource {
        Self::with_shared(&sim.shared, capacity)
    }

    /// Create from a process context (e.g. a manager building a GPU at run
    /// time).
    pub fn new_in(ctx: &ProcCtx, capacity: f64) -> GpsResource {
        Self::with_shared(&ctx.shared, capacity)
    }

    pub(crate) fn with_shared_pub(shared: &Arc<Shared>, capacity: f64) -> GpsResource {
        Self::with_shared(shared, capacity)
    }

    fn with_shared(shared: &Arc<Shared>, capacity: f64) -> GpsResource {
        assert!(capacity > 0.0, "resource capacity must be positive");
        let _ = shared; // resources interact with the kernel via the caller's ProcCtx
        GpsResource {
            inner: Arc::new(Mutex::new(Gps {
                capacity,
                jobs: Vec::new(),
                last: SimTime::ZERO,
                version: 0,
                timeline: Timeline::default(),
            })),
        }
    }

    /// Block the calling process until `work` units complete under the
    /// processor-sharing discipline.
    pub fn acquire(&self, ctx: &ProcCtx, work: f64) {
        // NaN work is treated like zero work, hence the explicit check.
        if work.is_nan() || work <= 0.0 {
            return;
        }
        {
            let mut st = ctx.lock_state();
            let mut g = self.inner.lock();
            let now = st.now;
            g.settle(now);
            let generation = st.begin_park(ctx.pid());
            g.jobs.push(GpsJob {
                pid: ctx.pid(),
                generation,
                remaining: work,
            });
            let active = g.jobs.len() as u32;
            g.timeline.record(now, active);
            g.version += 1;
            drop(g); // reschedule re-locks the resource state
            reschedule(&mut st, &self.inner);
        }
        ctx.yield_parked();
    }

    /// Convenience: `work` expressed as a duration of exclusive use.
    pub fn acquire_for(&self, ctx: &ProcCtx, d: Dur) {
        let cap = self.inner.lock().capacity;
        self.acquire(ctx, d.as_secs_f64() * cap);
    }

    /// Capacity in work units per second.
    pub fn capacity(&self) -> f64 {
        self.inner.lock().capacity
    }

    /// Number of jobs currently being served.
    pub fn active_jobs(&self) -> usize {
        self.inner.lock().jobs.len()
    }

    /// Inspect the busy timeline.
    pub fn with_timeline<R>(&self, f: impl FnOnce(&Timeline) -> R) -> R {
        f(&self.inner.lock().timeline)
    }

    /// Snapshot the busy timeline (clones the transition log).
    pub fn timeline_snapshot(&self) -> Timeline {
        self.inner.lock().timeline.clone()
    }
}

/// Schedule (or re-schedule) the completion timer for the earliest-finishing
/// job. Must be called with the kernel state locked.
fn reschedule(st: &mut SimState, inner: &Arc<Mutex<Gps>>) {
    let (at, version) = {
        let g = inner.lock();
        let Some(min_remaining) = g
            .jobs
            .iter()
            .map(|j| j.remaining)
            .min_by(|a, b| a.partial_cmp(b).expect("remaining work is finite"))
        else {
            return;
        };
        let n = g.jobs.len() as f64;
        let secs = (min_remaining.max(0.0)) * n / g.capacity;
        // +1 ns so the settle at the timer strictly covers the work.
        (st.now + Dur::from_secs_f64(secs) + Dur(1), g.version)
    };
    let inner = Arc::clone(inner);
    st.schedule_call(
        at,
        Box::new(move |st: &mut SimState| {
            let mut g = inner.lock();
            if g.version != version {
                return; // stale timer; a newer one exists
            }
            g.settle(st.now);
            let eps = g.completion_eps();
            let mut finished = Vec::new();
            g.jobs.retain(|j| {
                if j.remaining <= eps {
                    finished.push((j.pid, j.generation));
                    false
                } else {
                    true
                }
            });
            let now = st.now;
            let active = g.jobs.len() as u32;
            g.timeline.record(now, active);
            g.version += 1;
            drop(g);
            for (pid, generation) in finished {
                st.schedule_wake(now, pid, generation);
            }
            reschedule(st, &inner);
        }),
    );
}

struct Fifo {
    /// The job currently holding the resource, if any.
    current: Option<(ProcId, u64)>,
    waiters: VecDeque<(ProcId, u64, Dur)>,
    timeline: Timeline,
}

/// A strictly serialized resource: one job at a time, FIFO admission.
pub struct FifoResource {
    inner: Arc<Mutex<Fifo>>,
}

impl FifoResource {
    /// Create an idle FIFO resource.
    pub fn new(sim: &Sim) -> FifoResource {
        let _ = &sim.shared;
        FifoResource {
            inner: Arc::new(Mutex::new(Fifo {
                current: None,
                waiters: VecDeque::new(),
                timeline: Timeline::default(),
            })),
        }
    }

    /// Create from within a running process.
    pub fn new_in(ctx: &ProcCtx) -> FifoResource {
        let _ = &ctx.shared;
        FifoResource {
            inner: Arc::new(Mutex::new(Fifo {
                current: None,
                waiters: VecDeque::new(),
                timeline: Timeline::default(),
            })),
        }
    }

    /// Hold the resource exclusively for `d` of virtual time, queueing FIFO
    /// behind earlier holders.
    pub fn acquire_for(&self, ctx: &ProcCtx, d: Dur) {
        if d == Dur::ZERO {
            return;
        }
        {
            let mut st = ctx.lock_state();
            let mut f = self.inner.lock();
            let generation = st.begin_park(ctx.pid());
            f.waiters.push_back((ctx.pid(), generation, d));
            if f.current.is_none() {
                start_next(&mut st, &self.inner, &mut f);
            }
        }
        ctx.yield_parked();
    }

    /// Inspect the busy timeline.
    pub fn with_timeline<R>(&self, f: impl FnOnce(&Timeline) -> R) -> R {
        f(&self.inner.lock().timeline)
    }

    /// Jobs waiting plus the one in service.
    pub fn queue_len(&self) -> usize {
        let f = self.inner.lock();
        f.waiters.len() + usize::from(f.current.is_some())
    }
}

/// Pop the next waiter and schedule its completion. Kernel state locked.
fn start_next(st: &mut SimState, inner: &Arc<Mutex<Fifo>>, f: &mut Fifo) {
    let Some((pid, generation, d)) = f.waiters.pop_front() else {
        f.timeline.record(st.now, 0);
        return;
    };
    f.current = Some((pid, generation));
    f.timeline.record(st.now, 1);
    let inner = Arc::clone(inner);
    st.schedule_call(
        st.now + d,
        Box::new(move |st: &mut SimState| {
            let mut f = inner.lock();
            let (pid, generation) = f.current.take().expect("fifo completion without owner");
            let now = st.now;
            st.schedule_wake(now, pid, generation);
            start_next(st, &inner, &mut f);
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;

    fn secs(s: f64) -> Dur {
        Dur::from_secs_f64(s)
    }

    #[test]
    fn solo_job_runs_at_full_capacity() {
        let mut sim = Sim::new(1);
        let r = Arc::new(GpsResource::new(&sim, 2.0)); // 2 units/s
        let done = Arc::new(Mutex::new(SimTime::ZERO));
        let d = done.clone();
        let r2 = r.clone();
        sim.spawn("j", move |ctx| {
            r2.acquire(ctx, 4.0); // 4 units at 2/s = 2s
            *d.lock() = ctx.now();
        });
        sim.run();
        let t = done.lock().as_secs_f64();
        assert!((t - 2.0).abs() < 1e-6, "expected ~2s, got {t}");
    }

    #[test]
    fn two_equal_jobs_share_capacity() {
        let mut sim = Sim::new(1);
        let r = Arc::new(GpsResource::new(&sim, 1.0));
        let times = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let r = r.clone();
            let times = times.clone();
            sim.spawn(&format!("j{i}"), move |ctx| {
                r.acquire(ctx, 1.0); // 1s of exclusive work
                times.lock().push(ctx.now().as_secs_f64());
            });
        }
        sim.run();
        // Both share the whole time: each finishes at ~2s.
        for t in times.lock().iter() {
            assert!((t - 2.0).abs() < 1e-6, "expected ~2s, got {t}");
        }
    }

    #[test]
    fn late_arrival_reapportions_capacity() {
        let mut sim = Sim::new(1);
        let r = Arc::new(GpsResource::new(&sim, 1.0));
        let times = Arc::new(Mutex::new(Vec::new()));
        {
            let r = r.clone();
            let times = times.clone();
            sim.spawn("long", move |ctx| {
                r.acquire(ctx, 2.0);
                times.lock().push(("long", ctx.now().as_secs_f64()));
            });
        }
        {
            let r = r.clone();
            let times = times.clone();
            sim.spawn("late", move |ctx| {
                ctx.sleep(secs(1.0));
                r.acquire(ctx, 0.5);
                times.lock().push(("late", ctx.now().as_secs_f64()));
            });
        }
        sim.run();
        // long: 1s alone (1.0 done), then shares. late needs 0.5 at half
        // rate = 1s, finishing at t=2. long's last 1.0 unit: 0.5 during the
        // shared second, then 0.5 alone => t=2.5.
        let times = times.lock();
        let late = times.iter().find(|x| x.0 == "late").unwrap().1;
        let long = times.iter().find(|x| x.0 == "long").unwrap().1;
        assert!((late - 2.0).abs() < 1e-6, "late: {late}");
        assert!((long - 2.5).abs() < 1e-6, "long: {long}");
    }

    #[test]
    fn timeline_tracks_busy_time_and_utilization() {
        let mut sim = Sim::new(1);
        let r = Arc::new(GpsResource::new(&sim, 1.0));
        let r2 = r.clone();
        sim.spawn("j", move |ctx| {
            ctx.sleep(secs(1.0));
            r2.acquire(ctx, 1.0); // busy [1,2)
            ctx.sleep(secs(1.0));
            r2.acquire(ctx, 1.0); // busy [3,4)
        });
        sim.run();
        let a = SimTime::ZERO;
        let b = SimTime::ZERO + secs(4.0);
        r.with_timeline(|tl| {
            let busy = tl.busy_between(a, b).as_secs_f64();
            assert!((busy - 2.0).abs() < 1e-6, "busy {busy}");
            let samples = tl.utilization_samples(a, b, secs(1.0));
            assert_eq!(samples.len(), 4);
            assert!(samples[0] < 0.01);
            assert!(samples[1] > 0.99);
            assert!(samples[2] < 0.01);
            assert!(samples[3] > 0.99);
        });
    }

    #[test]
    fn fifo_serializes_in_arrival_order() {
        let mut sim = Sim::new(1);
        let r = Arc::new(FifoResource::new(&sim));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let r = r.clone();
            let order = order.clone();
            sim.spawn(&format!("f{i}"), move |ctx| {
                ctx.sleep(Dur::from_millis(i as u64)); // arrive 0,1,2 ms
                r.acquire_for(ctx, secs(1.0));
                order.lock().push((i, ctx.now().as_secs_f64()));
            });
        }
        sim.run();
        let order = order.lock();
        assert_eq!(order.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!((order[0].1 - 1.0).abs() < 1e-6);
        assert!((order[1].1 - 2.0).abs() < 1e-6);
        assert!((order[2].1 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn zero_work_is_free() {
        let mut sim = Sim::new(1);
        let r = Arc::new(GpsResource::new(&sim, 1.0));
        let done = Arc::new(Mutex::new(false));
        let d = done.clone();
        sim.spawn("z", move |ctx| {
            r.acquire(ctx, 0.0);
            r.acquire(ctx, -1.0);
            assert_eq!(ctx.now(), SimTime::ZERO);
            *d.lock() = true;
        });
        sim.run();
        assert!(*done.lock());
    }
}
