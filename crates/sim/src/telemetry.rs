//! Deterministic sim-time telemetry: spans, counters, gauges, histograms.
//!
//! Every [`Sim`](crate::Sim) owns one [`Telemetry`] registry, disabled by
//! default (recording methods early-return on a single relaxed atomic load).
//! When enabled, instrumented layers record
//!
//! * **spans** — named intervals of virtual time on a named track
//!   (invocation → phase → RPC nesting falls out of tracks being process
//!   names),
//! * **instant events** — point-in-time markers with key/value arguments
//!   (migrations, retries, lease expirations),
//! * **counters** — monotonic `u64` sums (RPC calls per API class, retries,
//!   drops, failures),
//! * **gauges** — `(SimTime, i64)` timelines (queue depth, per-GPU memory
//!   and utilization), and
//! * **histograms** — log₂-bucketed `u64` distributions (per-API-class RPC
//!   latency and bytes).
//!
//! # Determinism contract
//!
//! All timestamps are virtual ([`SimTime`]) and recording order follows the
//! kernel's deterministic schedule, so two runs with the same seed produce
//! **byte-identical** exports. To keep that property the registry never
//! consults wall clocks, never iterates hash maps (state lives in `BTreeMap`s
//! and append-ordered `Vec`s), never draws from any RNG, and exports only
//! integers — no float formatting. Telemetry being enabled or disabled must
//! not perturb the simulation itself: recording never sleeps, never yields
//! and never touches the sim RNG.
//!
//! Exports come in two shapes: a JSON metrics snapshot
//! ([`Telemetry::metrics_json`]) and a Chrome trace-event file
//! ([`Telemetry::chrome_trace_json`]) loadable in `chrome://tracing` /
//! Perfetto.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::time::{Dur, SimTime};

/// Number of log₂ histogram buckets: bucket 0 holds zeros, bucket `b ≥ 1`
/// holds values with bit length `b` (i.e. `2^(b-1) ..= 2^b - 1`).
const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed distribution of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Bucket counts; index = bit length of the sample value.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let b = (64 - value.leading_zeros()) as usize;
        self.buckets[b] += 1;
    }

    /// Nearest-rank quantile estimate from the buckets: the upper bound of
    /// the bucket containing the q-th sample (exact for min/max, a ≤2×
    /// overestimate inside a bucket). Integer-only, so deterministic.
    pub fn quantile_upper_bound(&self, q_permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count * q_permille).div_ceil(1000)).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 {
                    0
                } else {
                    (1u64 << b).wrapping_sub(1)
                };
            }
        }
        self.max
    }
}

/// One closed span, for programmatic test oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Track (thread lane) the span lives on — by convention the recording
    /// process's name.
    pub track: String,
    /// Span name (e.g. a phase or an RPC class).
    pub name: String,
    /// Category ("invocation", "phase", "rpc", "server", ...).
    pub cat: String,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time.
    pub end: SimTime,
}

impl SpanRecord {
    /// The span's duration.
    pub fn dur(&self) -> Dur {
        self.end.since(self.start)
    }
}

/// One instant event, for programmatic test oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Track the event is attached to.
    pub track: String,
    /// Event name (e.g. "migration", "retry", "lease-expired").
    pub name: String,
    /// When it happened.
    pub at: SimTime,
    /// Key/value arguments, in recording order.
    pub args: Vec<(String, String)>,
}

/// Both export artifacts of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryExport {
    /// JSON metrics snapshot (counters, gauges, histograms).
    pub metrics_json: String,
    /// Chrome trace-event JSON (spans + instants + track names).
    pub chrome_trace_json: String,
}

enum TraceItem {
    Span {
        track: u32,
        name: String,
        cat: &'static str,
        start: SimTime,
        end: SimTime,
    },
    Instant {
        track: u32,
        name: String,
        at: SimTime,
        args: Vec<(String, String)>,
    },
}

#[derive(Default)]
struct TelState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(SimTime, i64)>>,
    histograms: BTreeMap<String, Histogram>,
    items: Vec<TraceItem>,
    /// Track name → tid, in first-use order (deterministic).
    tracks: Vec<String>,
}

impl TelState {
    fn track_id(&mut self, name: &str) -> u32 {
        match self.tracks.iter().position(|t| t == name) {
            Some(i) => i as u32,
            None => {
                self.tracks.push(name.to_string());
                (self.tracks.len() - 1) as u32
            }
        }
    }
}

/// The per-simulation telemetry registry. See the [module docs](self) for
/// the recording model and determinism contract.
pub struct Telemetry {
    enabled: AtomicBool,
    state: Mutex<TelState>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A disabled registry (the state every [`Sim`](crate::Sim) starts in).
    pub fn new() -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(false),
            state: Mutex::new(TelState::default()),
        }
    }

    /// Turn recording on. Everything recorded before this call was dropped.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether recording is on. Call sites that need to build strings for
    /// arguments should guard on this to keep the disabled path free.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    // ---- recording ----------------------------------------------------

    /// Add `delta` to counter `name` (created at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.is_enabled() || delta == 0 {
            return;
        }
        let mut st = self.state.lock();
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Append a `(at, value)` sample to gauge `name`'s timeline.
    pub fn gauge_set(&self, name: &str, at: SimTime, value: i64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        st.gauges
            .entry(name.to_string())
            .or_default()
            .push((at, value));
    }

    /// Record `value` into histogram `name`.
    pub fn histogram_record(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        st.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Record a closed span of virtual time on `track`.
    pub fn span(&self, track: &str, name: &str, cat: &'static str, start: SimTime, end: SimTime) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        let track = st.track_id(track);
        st.items.push(TraceItem::Span {
            track,
            name: name.to_string(),
            cat,
            start,
            end,
        });
    }

    /// Record an instant event on `track` with key/value `args`.
    pub fn instant(&self, track: &str, name: &str, at: SimTime, args: &[(&str, String)]) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        let track = st.track_id(track);
        st.items.push(TraceItem::Instant {
            track,
            name: name.to_string(),
            at,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    // ---- programmatic queries (test oracles) --------------------------

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        *self.state.lock().counters.get(name).unwrap_or(&0)
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.state
            .lock()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Timeline of gauge `name` (empty if never touched).
    pub fn gauge(&self, name: &str) -> Vec<(SimTime, i64)> {
        self.state
            .lock()
            .gauges
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Highest value ever recorded on gauge `name` (`None` if never
    /// touched). Convenient oracle for peak pool size / queue depth.
    pub fn gauge_peak(&self, name: &str) -> Option<i64> {
        self.state
            .lock()
            .gauges
            .get(name)
            .and_then(|samples| samples.iter().map(|&(_, v)| v).max())
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.state.lock().histograms.get(name).cloned()
    }

    /// All closed spans, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let st = self.state.lock();
        st.items
            .iter()
            .filter_map(|it| match it {
                TraceItem::Span {
                    track,
                    name,
                    cat,
                    start,
                    end,
                } => Some(SpanRecord {
                    track: st.tracks[*track as usize].clone(),
                    name: name.clone(),
                    cat: (*cat).to_string(),
                    start: *start,
                    end: *end,
                }),
                TraceItem::Instant { .. } => None,
            })
            .collect()
    }

    /// All instant events, in recording order.
    pub fn instants(&self) -> Vec<EventRecord> {
        let st = self.state.lock();
        st.items
            .iter()
            .filter_map(|it| match it {
                TraceItem::Instant {
                    track,
                    name,
                    at,
                    args,
                } => Some(EventRecord {
                    track: st.tracks[*track as usize].clone(),
                    name: name.clone(),
                    at: *at,
                    args: args.clone(),
                }),
                TraceItem::Span { .. } => None,
            })
            .collect()
    }

    // ---- exporters -----------------------------------------------------

    /// Both export artifacts in one call.
    pub fn export(&self) -> TelemetryExport {
        TelemetryExport {
            metrics_json: self.metrics_json(),
            chrome_trace_json: self.chrome_trace_json(),
        }
    }

    /// JSON metrics snapshot: counters, gauge timelines and histogram
    /// summaries, all keys sorted, all values integers. Byte-identical
    /// across same-seed runs.
    pub fn metrics_json(&self) -> String {
        let st = self.state.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in st.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, samples)) in st.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": [");
            for (j, (at, v)) in samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", at.as_nanos(), v));
            }
            out.push(']');
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in st.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile_upper_bound(500),
                h.quantile_upper_bound(950),
                h.quantile_upper_bound(990),
            ));
        }
        let (spans, instants) = st.items.iter().fold((0u64, 0u64), |(s, e), it| match it {
            TraceItem::Span { .. } => (s + 1, e),
            TraceItem::Instant { .. } => (s, e + 1),
        });
        out.push_str(&format!(
            "\n  }},\n  \"spans\": {spans},\n  \"events\": {instants}\n}}\n"
        ));
        out
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form):
    /// one metadata `thread_name` entry per track, then every span
    /// (`"ph":"X"`) and instant (`"ph":"i"`) in recording order. Timestamps
    /// are virtual microseconds rendered with fixed nanosecond fractions, so
    /// the output is byte-identical across same-seed runs.
    pub fn chrome_trace_json(&self) -> String {
        let st = self.state.lock();
        let mut out = String::with_capacity(8192);
        out.push_str("{\"traceEvents\": [\n");
        let mut first = true;
        for (tid, name) in st.tracks.iter().enumerate() {
            sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": "
            ));
            json_str(&mut out, name);
            out.push_str("}}");
        }
        for it in &st.items {
            sep(&mut out, &mut first);
            match it {
                TraceItem::Span {
                    track,
                    name,
                    cat,
                    start,
                    end,
                } => {
                    out.push_str("{\"name\": ");
                    json_str(&mut out, name);
                    out.push_str(&format!(
                        ", \"cat\": \"{cat}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {track}, \"ts\": {}, \"dur\": {}}}",
                        micros(start.as_nanos()),
                        micros(end.since(*start).as_nanos()),
                    ));
                }
                TraceItem::Instant {
                    track,
                    name,
                    at,
                    args,
                } => {
                    out.push_str("{\"name\": ");
                    json_str(&mut out, name);
                    out.push_str(&format!(
                        ", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": {track}, \"ts\": {}, \"args\": {{",
                        micros(at.as_nanos()),
                    ));
                    for (j, (k, v)) in args.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        json_str(&mut out, k);
                        out.push_str(": ");
                        json_str(&mut out, v);
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Nanoseconds → microsecond timestamp with a fixed 3-digit fraction
/// (integer math only; Chrome's `ts`/`dur` are microseconds).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Append `s` as a JSON string literal.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::new();
        t.counter_add("c", 3);
        t.gauge_set("g", SimTime(5), 1);
        t.histogram_record("h", 9);
        t.span("trk", "s", "cat", SimTime(0), SimTime(1));
        t.instant("trk", "e", SimTime(2), &[]);
        assert_eq!(t.counter("c"), 0);
        assert!(t.gauge("g").is_empty());
        assert!(t.histogram("h").is_none());
        assert!(t.spans().is_empty());
        assert!(t.instants().is_empty());
    }

    #[test]
    fn enabled_registry_round_trips() {
        let t = Telemetry::new();
        t.enable();
        t.counter_add("rpc.calls", 2);
        t.counter_add("rpc.calls", 1);
        t.gauge_set("q", SimTime(10), 4);
        t.histogram_record("lat", 1000);
        t.histogram_record("lat", 2000);
        t.span("fn-0", "init", "phase", SimTime(0), SimTime(1_000));
        t.instant("monitor", "retry", SimTime(500), &[("attempt", "2".into())]);
        assert_eq!(t.counter("rpc.calls"), 3);
        assert_eq!(t.gauge("q"), vec![(SimTime(10), 4)]);
        t.gauge_set("q", SimTime(20), 9);
        t.gauge_set("q", SimTime(30), 2);
        assert_eq!(t.gauge_peak("q"), Some(9));
        assert_eq!(t.gauge_peak("missing"), None);
        let h = t.histogram("lat").unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 1000, 2000));
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur(), Dur(1_000));
        assert_eq!(t.instants()[0].args[0].1, "2");
    }

    #[test]
    fn histogram_quantiles_are_bounded_by_min_max_buckets() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let p50 = h.quantile_upper_bound(500);
        let p99 = h.quantile_upper_bound(990);
        assert!(p50 <= p99);
        assert!(p99 >= h.max / 2, "upper bound covers the top bucket");
        assert_eq!(Histogram::default().quantile_upper_bound(500), 0);
    }

    #[test]
    fn exports_are_valid_shape_and_deterministic() {
        let build = || {
            let t = Telemetry::new();
            t.enable();
            t.counter_add("b", 1);
            t.counter_add("a", 2);
            t.gauge_set("g", SimTime(1_500), -3);
            t.histogram_record("h", 7);
            t.span("trk\"x", "s", "rpc", SimTime(0), SimTime(2_500));
            t.instant("trk\"x", "e", SimTime(2_000), &[("k", "v".into())]);
            t.export()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same recording order must export byte-identically");
        assert!(a.metrics_json.contains("\"a\": 2"));
        assert!(a.metrics_json.contains("[[1500,-3]]"));
        assert!(a.chrome_trace_json.contains("\"ts\": 0.000"));
        assert!(a.chrome_trace_json.contains("\"dur\": 2.500"));
        assert!(a.chrome_trace_json.contains("trk\\\"x"));
    }
}
