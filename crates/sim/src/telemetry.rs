//! Deterministic sim-time telemetry: spans, counters, gauges, histograms.
//!
//! Every [`Sim`](crate::Sim) owns one [`Telemetry`] registry, disabled by
//! default (recording methods early-return on a single relaxed atomic load).
//! When enabled, instrumented layers record
//!
//! * **spans** — named intervals of virtual time on a named track
//!   (invocation → phase → RPC nesting falls out of tracks being process
//!   names),
//! * **instant events** — point-in-time markers with key/value arguments
//!   (migrations, retries, lease expirations),
//! * **counters** — monotonic `u64` sums (RPC calls per API class, retries,
//!   drops, failures),
//! * **gauges** — `(SimTime, i64)` timelines (queue depth, per-GPU memory
//!   and utilization), and
//! * **histograms** — log₂-bucketed `u64` distributions (per-API-class RPC
//!   latency and bytes).
//!
//! # Determinism contract
//!
//! All timestamps are virtual ([`SimTime`]) and recording order follows the
//! kernel's deterministic schedule, so two runs with the same seed produce
//! **byte-identical** exports. To keep that property the registry never
//! consults wall clocks, never iterates hash maps (state lives in `BTreeMap`s
//! and append-ordered `Vec`s), never draws from any RNG, and exports only
//! integers — no float formatting. Telemetry being enabled or disabled must
//! not perturb the simulation itself: recording never sleeps, never yields
//! and never touches the sim RNG.
//!
//! Exports come in two shapes: a JSON metrics snapshot
//! ([`Telemetry::metrics_json`]) and a Chrome trace-event file
//! ([`Telemetry::chrome_trace_json`]) loadable in `chrome://tracing` /
//! Perfetto.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::{Dur, SimTime};

/// Request-scoped causal context, threaded from the serverless front door
/// down through admission, routing, the RPC wire and the GPU server so
/// every span/instant a single invocation produces can be joined back into
/// one tree ([`crate::trace`]).
///
/// `id` is platform-unique (allocated by [`Telemetry::next_trace_id`], not
/// per-server), `attempt` is the 1-based retry attempt the context belongs
/// to (0 = whole-request scope, before any attempt starts), and `tenant` is
/// the owning tenant for per-tenant attribution and SLO accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCtx {
    /// Platform-unique trace (invocation) id.
    pub id: u64,
    /// 1-based attempt number; 0 for whole-request scope.
    pub attempt: u32,
    /// Owning tenant (cheap to clone).
    pub tenant: Arc<str>,
}

impl TraceCtx {
    /// A whole-request context (attempt 0) for trace `id` owned by `tenant`.
    pub fn new(id: u64, tenant: &str) -> TraceCtx {
        TraceCtx {
            id,
            attempt: 0,
            tenant: Arc::from(tenant),
        }
    }

    /// The same trace scoped to one retry `attempt` (1-based).
    pub fn with_attempt(&self, attempt: u32) -> TraceCtx {
        TraceCtx {
            id: self.id,
            attempt,
            tenant: Arc::clone(&self.tenant),
        }
    }

    /// The standard `inv`/`attempt` span argument pair for this context.
    pub fn span_args(&self) -> [(&'static str, String); 2] {
        [
            ("inv", self.id.to_string()),
            ("attempt", self.attempt.to_string()),
        ]
    }
}

/// Number of log₂ histogram buckets: bucket 0 holds zeros, bucket `b ≥ 1`
/// holds values with bit length `b` (i.e. `2^(b-1) ..= 2^b - 1`).
const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed distribution of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Bucket counts; index = bit length of the sample value.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let b = (64 - value.leading_zeros()) as usize;
        self.buckets[b] += 1;
    }

    /// Nearest-rank quantile estimate from the buckets: the upper bound of
    /// the bucket containing the q-th sample (exact for min/max, a ≤2×
    /// overestimate inside a bucket). Integer-only, so deterministic.
    pub fn quantile_upper_bound(&self, q_permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count * q_permille).div_ceil(1000)).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 {
                    0
                } else {
                    (1u64 << b).wrapping_sub(1)
                };
            }
        }
        self.max
    }
}

/// One closed span, for programmatic test oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Track (thread lane) the span lives on — by convention the recording
    /// process's name.
    pub track: String,
    /// Span name (e.g. a phase or an RPC class).
    pub name: String,
    /// Category ("invocation", "phase", "rpc", "server", ...).
    pub cat: String,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time.
    pub end: SimTime,
    /// Key/value arguments, in recording order (empty for plain spans).
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// The span's duration.
    pub fn dur(&self) -> Dur {
        self.end.since(self.start)
    }
}

/// One instant event, for programmatic test oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Track the event is attached to.
    pub track: String,
    /// Event name (e.g. "migration", "retry", "lease-expired").
    pub name: String,
    /// When it happened.
    pub at: SimTime,
    /// Key/value arguments, in recording order.
    pub args: Vec<(String, String)>,
}

/// Both export artifacts of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryExport {
    /// JSON metrics snapshot (counters, gauges, histograms).
    pub metrics_json: String,
    /// Chrome trace-event JSON (spans + instants + track names).
    pub chrome_trace_json: String,
}

enum TraceItem {
    Span {
        track: u32,
        name: String,
        cat: &'static str,
        start: SimTime,
        end: SimTime,
        args: Vec<(String, String)>,
    },
    Instant {
        track: u32,
        name: String,
        at: SimTime,
        args: Vec<(String, String)>,
    },
}

#[derive(Default)]
struct TelState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(SimTime, i64)>>,
    histograms: BTreeMap<String, Histogram>,
    items: Vec<TraceItem>,
    /// Track name → tid, in first-use order (deterministic).
    tracks: Vec<String>,
}

impl TelState {
    fn track_id(&mut self, name: &str) -> u32 {
        match self.tracks.iter().position(|t| t == name) {
            Some(i) => i as u32,
            None => {
                self.tracks.push(name.to_string());
                (self.tracks.len() - 1) as u32
            }
        }
    }
}

/// The per-simulation telemetry registry. See the [module docs](self) for
/// the recording model and determinism contract.
pub struct Telemetry {
    enabled: AtomicBool,
    state: Mutex<TelState>,
    next_trace: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A disabled registry (the state every [`Sim`](crate::Sim) starts in).
    pub fn new() -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(false),
            state: Mutex::new(TelState::default()),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Allocate the next platform-unique trace id. Unlike recording, this
    /// is *not* gated on [`Telemetry::is_enabled`]: the id sequence must be
    /// identical between traced and untraced runs of the same seed, and a
    /// relaxed fetch-add cannot perturb the simulation (exactly one process
    /// runs at a time, so allocation order is the kernel's schedule).
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Turn recording on. Everything recorded before this call was dropped.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether recording is on. Call sites that need to build strings for
    /// arguments should guard on this to keep the disabled path free.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    // ---- recording ----------------------------------------------------

    /// Add `delta` to counter `name` (created at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.is_enabled() || delta == 0 {
            return;
        }
        let mut st = self.state.lock();
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Append a `(at, value)` sample to gauge `name`'s timeline.
    pub fn gauge_set(&self, name: &str, at: SimTime, value: i64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        st.gauges
            .entry(name.to_string())
            .or_default()
            .push((at, value));
    }

    /// Record `value` into histogram `name`.
    pub fn histogram_record(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        st.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Record a closed span of virtual time on `track`.
    pub fn span(&self, track: &str, name: &str, cat: &'static str, start: SimTime, end: SimTime) {
        self.span_args(track, name, cat, start, end, &[]);
    }

    /// Record a closed span with key/value `args` (e.g. the `inv`/`attempt`
    /// pair of a [`TraceCtx`], or a terminal `outcome`).
    pub fn span_args(
        &self,
        track: &str,
        name: &str,
        cat: &'static str,
        start: SimTime,
        end: SimTime,
        args: &[(&str, String)],
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        let track = st.track_id(track);
        st.items.push(TraceItem::Span {
            track,
            name: name.to_string(),
            cat,
            start,
            end,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Record an instant event on `track` with key/value `args`.
    pub fn instant(&self, track: &str, name: &str, at: SimTime, args: &[(&str, String)]) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        let track = st.track_id(track);
        st.items.push(TraceItem::Instant {
            track,
            name: name.to_string(),
            at,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    // ---- programmatic queries (test oracles) --------------------------

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        *self.state.lock().counters.get(name).unwrap_or(&0)
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.state
            .lock()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Timeline of gauge `name` (empty if never touched).
    pub fn gauge(&self, name: &str) -> Vec<(SimTime, i64)> {
        self.state
            .lock()
            .gauges
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Highest value ever recorded on gauge `name` (`None` if never
    /// touched). Convenient oracle for peak pool size / queue depth.
    pub fn gauge_peak(&self, name: &str) -> Option<i64> {
        self.state
            .lock()
            .gauges
            .get(name)
            .and_then(|samples| samples.iter().map(|&(_, v)| v).max())
    }

    /// Lowest value ever recorded on gauge `name` (`None` if never
    /// touched). Counterpart of [`Telemetry::gauge_peak`].
    pub fn gauge_min(&self, name: &str) -> Option<i64> {
        self.state
            .lock()
            .gauges
            .get(name)
            .and_then(|samples| samples.iter().map(|&(_, v)| v).min())
    }

    /// Time-weighted mean of gauge `name` over `[first sample, until)`,
    /// treating the timeline as a step function (each sample holds until
    /// the next one; the last holds until `until`). Integer-only (i128
    /// accumulation, truncating division toward zero). Returns the last
    /// value when the window is empty (`until` at or before the first
    /// sample), `None` when the gauge was never touched.
    pub fn gauge_time_weighted_mean(&self, name: &str, until: SimTime) -> Option<i64> {
        let st = self.state.lock();
        let samples = st.gauges.get(name)?;
        let (&(t0, v0), rest) = samples.split_first()?;
        if until <= t0 {
            return Some(samples.last().map(|&(_, v)| v).unwrap_or(v0));
        }
        let mut weighted: i128 = 0;
        let mut cur_t = t0;
        let mut cur_v = v0;
        for &(t, v) in rest {
            let end = t.min(until);
            if end > cur_t {
                weighted += i128::from(cur_v) * i128::from(end.since(cur_t).as_nanos());
            }
            cur_t = t;
            cur_v = v;
            if cur_t >= until {
                break;
            }
        }
        if until > cur_t {
            weighted += i128::from(cur_v) * i128::from(until.since(cur_t).as_nanos());
        }
        let total = i128::from(until.since(t0).as_nanos());
        Some((weighted / total) as i64)
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.state.lock().histograms.get(name).cloned()
    }

    /// All closed spans, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let st = self.state.lock();
        st.items
            .iter()
            .filter_map(|it| match it {
                TraceItem::Span {
                    track,
                    name,
                    cat,
                    start,
                    end,
                    args,
                } => Some(SpanRecord {
                    track: st.tracks[*track as usize].clone(),
                    name: name.clone(),
                    cat: (*cat).to_string(),
                    start: *start,
                    end: *end,
                    args: args.clone(),
                }),
                TraceItem::Instant { .. } => None,
            })
            .collect()
    }

    /// All instant events, in recording order.
    pub fn instants(&self) -> Vec<EventRecord> {
        let st = self.state.lock();
        st.items
            .iter()
            .filter_map(|it| match it {
                TraceItem::Instant {
                    track,
                    name,
                    at,
                    args,
                } => Some(EventRecord {
                    track: st.tracks[*track as usize].clone(),
                    name: name.clone(),
                    at: *at,
                    args: args.clone(),
                }),
                TraceItem::Span { .. } => None,
            })
            .collect()
    }

    // ---- exporters -----------------------------------------------------

    /// Both export artifacts in one call.
    pub fn export(&self) -> TelemetryExport {
        TelemetryExport {
            metrics_json: self.metrics_json(),
            chrome_trace_json: self.chrome_trace_json(),
        }
    }

    /// JSON metrics snapshot: counters, gauge timelines and histogram
    /// summaries, all keys sorted, all values integers. Byte-identical
    /// across same-seed runs.
    pub fn metrics_json(&self) -> String {
        let st = self.state.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in st.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, samples)) in st.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": {\"samples\": [");
            for (j, (at, v)) in samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", at.as_nanos(), v));
            }
            let min = samples.iter().map(|&(_, v)| v).min().unwrap_or(0);
            let peak = samples.iter().map(|&(_, v)| v).max().unwrap_or(0);
            out.push_str(&format!(
                "], \"min\": {min}, \"peak\": {peak}, \"twa\": {}}}",
                gauge_twa(samples)
            ));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in st.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile_upper_bound(500),
                h.quantile_upper_bound(950),
                h.quantile_upper_bound(990),
            ));
        }
        let (spans, instants) = st.items.iter().fold((0u64, 0u64), |(s, e), it| match it {
            TraceItem::Span { .. } => (s + 1, e),
            TraceItem::Instant { .. } => (s, e + 1),
        });
        out.push_str(&format!(
            "\n  }},\n  \"spans\": {spans},\n  \"events\": {instants}\n}}\n"
        ));
        out
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form):
    /// one metadata `thread_name` entry per track, then every span
    /// (`"ph":"X"`) and instant (`"ph":"i"`) in recording order. Timestamps
    /// are virtual microseconds rendered with fixed nanosecond fractions, so
    /// the output is byte-identical across same-seed runs.
    pub fn chrome_trace_json(&self) -> String {
        let st = self.state.lock();
        let mut out = String::with_capacity(8192);
        out.push_str("{\"traceEvents\": [\n");
        let mut first = true;
        for (tid, name) in st.tracks.iter().enumerate() {
            sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": "
            ));
            json_str(&mut out, name);
            out.push_str("}}");
        }
        for it in &st.items {
            sep(&mut out, &mut first);
            match it {
                TraceItem::Span {
                    track,
                    name,
                    cat,
                    start,
                    end,
                    args,
                } => {
                    out.push_str("{\"name\": ");
                    json_str(&mut out, name);
                    out.push_str(", \"cat\": ");
                    json_str(&mut out, cat);
                    out.push_str(&format!(
                        ", \"ph\": \"X\", \"pid\": 1, \"tid\": {track}, \"ts\": {}, \"dur\": {}",
                        micros(start.as_nanos()),
                        micros(end.since(*start).as_nanos()),
                    ));
                    if !args.is_empty() {
                        out.push_str(", \"args\": {");
                        for (j, (k, v)) in args.iter().enumerate() {
                            if j > 0 {
                                out.push_str(", ");
                            }
                            json_str(&mut out, k);
                            out.push_str(": ");
                            json_str(&mut out, v);
                        }
                        out.push('}');
                    }
                    out.push('}');
                }
                TraceItem::Instant {
                    track,
                    name,
                    at,
                    args,
                } => {
                    out.push_str("{\"name\": ");
                    json_str(&mut out, name);
                    out.push_str(&format!(
                        ", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": {track}, \"ts\": {}, \"args\": {{",
                        micros(at.as_nanos()),
                    ));
                    for (j, (k, v)) in args.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        json_str(&mut out, k);
                        out.push_str(": ");
                        json_str(&mut out, v);
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Time-weighted mean of a gauge timeline over `[first sample, last
/// sample)` — the step-function integral [`Telemetry::gauge_time_weighted_mean`]
/// computes, with `until` fixed at the gauge's own last sample so the
/// export needs no external clock. A single sample (or all samples at one
/// instant) yields the last value; an empty timeline yields 0 (unreachable
/// from the exporter: gauges exist only once touched).
fn gauge_twa(samples: &[(SimTime, i64)]) -> i64 {
    let (Some(&(t0, _)), Some(&(until, last_v))) = (samples.first(), samples.last()) else {
        return 0;
    };
    if until <= t0 {
        return last_v;
    }
    let mut weighted: i128 = 0;
    let mut cur: Option<(SimTime, i64)> = None;
    for &(t, v) in samples {
        if let Some((ct, cv)) = cur {
            weighted += i128::from(cv) * i128::from(t.since(ct).as_nanos());
        }
        cur = Some((t, v));
    }
    (weighted / i128::from(until.since(t0).as_nanos())) as i64
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Nanoseconds → microsecond timestamp with a fixed 3-digit fraction
/// (integer math only; Chrome's `ts`/`dur` are microseconds).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Append `s` as a JSON string literal.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::new();
        t.counter_add("c", 3);
        t.gauge_set("g", SimTime(5), 1);
        t.histogram_record("h", 9);
        t.span("trk", "s", "cat", SimTime(0), SimTime(1));
        t.instant("trk", "e", SimTime(2), &[]);
        assert_eq!(t.counter("c"), 0);
        assert!(t.gauge("g").is_empty());
        assert!(t.histogram("h").is_none());
        assert!(t.spans().is_empty());
        assert!(t.instants().is_empty());
    }

    #[test]
    fn enabled_registry_round_trips() {
        let t = Telemetry::new();
        t.enable();
        t.counter_add("rpc.calls", 2);
        t.counter_add("rpc.calls", 1);
        t.gauge_set("q", SimTime(10), 4);
        t.histogram_record("lat", 1000);
        t.histogram_record("lat", 2000);
        t.span("fn-0", "init", "phase", SimTime(0), SimTime(1_000));
        t.instant("monitor", "retry", SimTime(500), &[("attempt", "2".into())]);
        assert_eq!(t.counter("rpc.calls"), 3);
        assert_eq!(t.gauge("q"), vec![(SimTime(10), 4)]);
        t.gauge_set("q", SimTime(20), 9);
        t.gauge_set("q", SimTime(30), 2);
        assert_eq!(t.gauge_peak("q"), Some(9));
        assert_eq!(t.gauge_peak("missing"), None);
        let h = t.histogram("lat").unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 1000, 2000));
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur(), Dur(1_000));
        assert_eq!(t.instants()[0].args[0].1, "2");
    }

    #[test]
    fn histogram_quantiles_are_bounded_by_min_max_buckets() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let p50 = h.quantile_upper_bound(500);
        let p99 = h.quantile_upper_bound(990);
        assert!(p50 <= p99);
        assert!(p99 >= h.max / 2, "upper bound covers the top bucket");
        assert_eq!(Histogram::default().quantile_upper_bound(500), 0);
    }

    #[test]
    fn exports_are_valid_shape_and_deterministic() {
        let build = || {
            let t = Telemetry::new();
            t.enable();
            t.counter_add("b", 1);
            t.counter_add("a", 2);
            t.gauge_set("g", SimTime(1_500), -3);
            t.histogram_record("h", 7);
            t.span("trk\"x", "s", "rpc", SimTime(0), SimTime(2_500));
            t.instant("trk\"x", "e", SimTime(2_000), &[("k", "v".into())]);
            t.export()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same recording order must export byte-identically");
        assert!(a.metrics_json.contains("\"a\": 2"));
        assert!(a.metrics_json.contains("[[1500,-3]]"));
        // Single-sample gauge: min = peak = twa = the one value.
        assert!(a
            .metrics_json
            .contains("{\"samples\": [[1500,-3]], \"min\": -3, \"peak\": -3, \"twa\": -3}"));
        assert!(a.chrome_trace_json.contains("\"ts\": 0.000"));
        assert!(a.chrome_trace_json.contains("\"dur\": 2.500"));
        assert!(a.chrome_trace_json.contains("trk\\\"x"));
    }

    #[test]
    fn chrome_trace_escapes_names_cats_and_args() {
        // Regression: span names, categories and argument values with
        // quotes/backslashes/control chars must come out as valid JSON
        // string literals, not raw bytes.
        let t = Telemetry::new();
        t.enable();
        t.span(
            "trk",
            "na\"me\\with\nctrl\u{1}",
            "ca\"t\\x",
            SimTime(0),
            SimTime(10),
        );
        t.span_args(
            "trk",
            "s",
            "request",
            SimTime(0),
            SimTime(5),
            &[("out\"come", "o\\k\n".into())],
        );
        let json = t.chrome_trace_json();
        assert!(json.contains("\"na\\\"me\\\\with\\nctrl\\u0001\""));
        assert!(json.contains("\"cat\": \"ca\\\"t\\\\x\""));
        assert!(json.contains("\"out\\\"come\": \"o\\\\k\\n\""));
        // No raw control characters or unescaped interior quotes survive.
        assert!(json.chars().all(|c| c as u32 >= 0x20 || c == '\n'));
        // A plain-cat span still renders the pinned shape.
        t.span("trk", "p", "phase", SimTime(0), SimTime(1));
        assert!(t.chrome_trace_json().contains("\"cat\": \"phase\""));
    }

    #[test]
    fn span_args_round_trip_and_argless_spans_stay_byte_identical() {
        let t = Telemetry::new();
        t.enable();
        t.span("trk", "plain", "rpc", SimTime(0), SimTime(1_000));
        let before = t.chrome_trace_json();
        assert!(
            before.contains("\"dur\": 1.000}"),
            "arg-less spans must close right after dur — no args object"
        );
        t.span_args(
            "trk",
            "req:spin",
            "request",
            SimTime(0),
            SimTime(2_000),
            &[("inv", "7".into()), ("tenant", "hot".into())],
        );
        let spans = t.spans();
        assert_eq!(spans[0].args, Vec::<(String, String)>::new());
        assert_eq!(
            spans[1].args,
            vec![
                ("inv".to_string(), "7".to_string()),
                ("tenant".to_string(), "hot".to_string())
            ]
        );
        assert!(t
            .chrome_trace_json()
            .contains("\"args\": {\"inv\": \"7\", \"tenant\": \"hot\"}"));
    }

    #[test]
    fn trace_ids_are_unique_and_allocated_even_when_disabled() {
        let t = Telemetry::new();
        assert!(!t.is_enabled());
        let a = t.next_trace_id();
        let b = t.next_trace_id();
        t.enable();
        let c = t.next_trace_id();
        assert_eq!((a, b, c), (1, 2, 3));
        let ctx = TraceCtx::new(b, "tenant-x");
        assert_eq!(ctx.attempt, 0);
        let a2 = ctx.with_attempt(2);
        assert_eq!((a2.id, a2.attempt, &*a2.tenant), (2, 2, "tenant-x"));
        assert_eq!(
            a2.span_args(),
            [("inv", "2".to_string()), ("attempt", "2".to_string())]
        );
    }

    #[test]
    fn gauge_min_mirrors_gauge_peak() {
        let t = Telemetry::new();
        t.enable();
        t.gauge_set("q", SimTime(0), 5);
        t.gauge_set("q", SimTime(10), -2);
        t.gauge_set("q", SimTime(20), 9);
        assert_eq!(t.gauge_min("q"), Some(-2));
        assert_eq!(t.gauge_peak("q"), Some(9));
        assert_eq!(t.gauge_min("missing"), None);
    }

    #[test]
    fn gauge_time_weighted_mean_is_a_step_function_integral() {
        let t = Telemetry::new();
        t.enable();
        // 4 for 10 ns, 8 for 10 ns, 0 for 20 ns → (40 + 80 + 0) / 40 = 3.
        t.gauge_set("q", SimTime(0), 4);
        t.gauge_set("q", SimTime(10), 8);
        t.gauge_set("q", SimTime(20), 0);
        assert_eq!(t.gauge_time_weighted_mean("q", SimTime(40)), Some(3));
        // Window ending mid-timeline ignores later samples: 4 for 10 ns,
        // 8 for 5 ns → 80/15 = 5 (truncating).
        assert_eq!(t.gauge_time_weighted_mean("q", SimTime(15)), Some(5));
        // Degenerate window falls back to the last recorded value.
        assert_eq!(t.gauge_time_weighted_mean("q", SimTime(0)), Some(0));
        // Single sample holds for the whole window.
        t.gauge_set("one", SimTime(5), 7);
        assert_eq!(t.gauge_time_weighted_mean("one", SimTime(105)), Some(7));
        assert_eq!(t.gauge_time_weighted_mean("missing", SimTime(10)), None);
    }

    #[test]
    fn histogram_quantile_bounds_at_q0_and_q1000() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 7, 1000] {
            h.record(v);
        }
        // q=0 clamps to rank 1: the bucket holding the minimum (zero lives
        // in bucket 0, whose upper bound is exactly 0).
        assert_eq!(h.quantile_upper_bound(0), 0);
        // q=1000 is the max's bucket upper bound, and always covers max.
        let p1000 = h.quantile_upper_bound(1000);
        assert!(p1000 >= h.max);
        assert_eq!(p1000, 1023, "1000 has bit length 10 → bound 2^10 - 1");
        // Without a zero sample, q=0 returns the min's bucket bound ≥ min.
        let mut h2 = Histogram::default();
        for v in [5u64, 9, 1000] {
            h2.record(v);
        }
        assert!(h2.quantile_upper_bound(0) >= h2.min);
        // 5 has bit length 3, so rank 1 lands in bucket 3: bound 2^3 - 1.
        assert_eq!(h2.quantile_upper_bound(0), 7);
    }
}
