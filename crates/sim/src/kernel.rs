//! The discrete-event simulation kernel.
//!
//! The kernel is a *conservative, sequential* event executor: exactly one
//! simulated process runs at any moment, so a run with a fixed seed is fully
//! deterministic. Processes are backed by OS threads for ergonomics — a
//! simulated GPU server or serverless function is written as ordinary
//! straight-line Rust that calls blocking primitives ([`ProcCtx::sleep`],
//! channel `recv`, resource `acquire`) — but the kernel only ever lets one of
//! those threads make progress.
//!
//! # Handshake
//!
//! The driver thread (the one inside [`Sim::run`]) pops the earliest event
//! from a binary heap. For a `Wake` event it sends a resume token to the
//! target process over an mpsc channel and then blocks until that process
//! *yields* (parks on a primitive or exits). For a `Call` event it executes a
//! boxed closure against the kernel state directly — resources use these as
//! cancellable completion timers.
//!
//! # Wake generations
//!
//! Every park increments the process's generation counter; wake events carry
//! the generation they were scheduled for and are ignored if stale. This is
//! what makes `recv_timeout` (a race between a sender's wake and a timer
//! wake) correct without any cancellation machinery.
//!
//! # Shutdown
//!
//! Dropping [`Sim`] (or finishing `run` with processes still blocked) raises
//! a shutdown flag and resumes every parked process; blocking primitives then
//! unwind the process via a [`ShutdownSignal`] panic, which the process
//! wrapper catches. Well-behaved loops exit earlier by observing `None` from
//! channel `recv`.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::telemetry::Telemetry;
use crate::time::{Dur, SimTime};

/// Identifier of a simulated process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcId(pub u64);

/// Panic payload used to unwind simulated processes when the run shuts down.
pub struct ShutdownSignal;

pub(crate) type BoxCall = Box<dyn FnOnce(&mut SimState) + Send>;

pub(crate) enum EventKind {
    /// Resume a parked process, if its park generation still matches.
    Wake { pid: ProcId, generation: u64 },
    /// Run a closure against the kernel state (resource completion timers).
    Call(BoxCall),
}

pub(crate) struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: BinaryHeap is a max-heap and we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct ProcRec {
    name: String,
    resume_tx: Sender<()>,
    /// Park generation; incremented on every park.
    generation: u64,
    parked: bool,
    alive: bool,
}

enum YieldMsg {
    Parked(ProcId),
    Exited {
        pid: ProcId,
        panic: Option<Box<dyn Any + Send>>,
    },
}

/// Mutable kernel state, guarded by a single mutex. Lock ordering throughout
/// the crate is: kernel state first, then any resource/channel state.
pub(crate) struct SimState {
    pub(crate) now: SimTime,
    seq: u64,
    next_pid: u64,
    queue: BinaryHeap<Event>,
    procs: HashMap<ProcId, ProcRec>,
    pub(crate) shutdown: bool,
    pub(crate) rng: StdRng,
    /// Events popped and executed so far (wakes + calls, stale wakes
    /// included). The scale harness divides this by wall time to report
    /// kernel throughput.
    executed: u64,
}

impl SimState {
    pub(crate) fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    pub(crate) fn schedule_wake(&mut self, time: SimTime, pid: ProcId, generation: u64) {
        self.schedule(time, EventKind::Wake { pid, generation });
    }

    pub(crate) fn schedule_call(&mut self, time: SimTime, f: BoxCall) {
        self.schedule(time, EventKind::Call(f));
    }

    /// Mark `pid` as about to park and return the generation a waker must
    /// present to resume it.
    pub(crate) fn begin_park(&mut self, pid: ProcId) -> u64 {
        let rec = self.procs.get_mut(&pid).expect("begin_park: unknown pid");
        rec.generation += 1;
        rec.parked = true;
        rec.generation
    }
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<SimState>,
    yield_tx: Sender<YieldMsg>,
    handles: Mutex<Vec<(ProcId, JoinHandle<()>)>>,
    /// Per-simulation telemetry registry (disabled by default). Lives
    /// outside the state mutex: recording must never contend with the
    /// scheduler.
    telemetry: Arc<Telemetry>,
}

/// A deterministic discrete-event simulation.
///
/// ```
/// use dgsf_sim::{Sim, Dur};
/// let mut sim = Sim::new(42);
/// let (tx, rx) = sim.channel::<u32>();
/// sim.spawn("producer", move |ctx| {
///     ctx.sleep(Dur::from_millis(5));
///     tx.send(ctx, 7);
/// });
/// sim.spawn("consumer", move |ctx| {
///     let v = rx.recv(ctx).unwrap();
///     assert_eq!(v, 7);
///     assert_eq!(ctx.now().as_nanos(), 5_000_000);
/// });
/// sim.run();
/// ```
pub struct Sim {
    pub(crate) shared: Arc<Shared>,
    yield_rx: Receiver<YieldMsg>,
}

impl Sim {
    /// Create a simulation whose internal RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Sim {
        let (yield_tx, yield_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            state: Mutex::new(SimState {
                now: SimTime::ZERO,
                seq: 0,
                next_pid: 0,
                queue: BinaryHeap::new(),
                procs: HashMap::new(),
                shutdown: false,
                rng: StdRng::seed_from_u64(seed),
                executed: 0,
            }),
            yield_tx,
            handles: Mutex::new(Vec::new()),
            telemetry: Arc::new(Telemetry::new()),
        });
        Sim { shared, yield_rx }
    }

    /// This simulation's telemetry registry (disabled until
    /// [`Telemetry::enable`] is called).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Spawn a process that becomes runnable at the current virtual time.
    pub fn spawn<F>(&self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        let at = self.now();
        spawn_inner(&self.shared, name, at, f)
    }

    /// Spawn a process that becomes runnable at virtual time `at`.
    pub fn spawn_at<F>(&self, name: &str, at: SimTime, f: F) -> ProcId
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        spawn_inner(&self.shared, name, at, f)
    }

    /// Create an MPMC simulation channel (see [`crate::channel`]).
    pub fn channel<T: Send + 'static>(&self) -> (crate::SimSender<T>, crate::SimReceiver<T>) {
        crate::channel::channel(&self.shared)
    }

    /// Run until the event queue is exhausted, then shut down any processes
    /// still blocked on channels. Returns the final virtual time.
    ///
    /// Panics (re-raising the payload) if any simulated process panicked.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run events with `time <= deadline`; later events stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            let next = {
                let mut st = self.shared.state.lock();
                match st.queue.peek() {
                    Some(ev) if ev.time <= deadline => {
                        let ev = st.queue.pop().expect("peeked");
                        st.now = st.now.max(ev.time);
                        st.executed += 1;
                        Some(ev)
                    }
                    _ => None,
                }
            };
            let Some(ev) = next else { break };
            match ev.kind {
                EventKind::Call(f) => {
                    let mut st = self.shared.state.lock();
                    f(&mut st);
                }
                EventKind::Wake { pid, generation } => {
                    let resume = {
                        let st = self.shared.state.lock();
                        match st.procs.get(&pid) {
                            Some(rec)
                                if rec.alive && rec.parked && rec.generation == generation =>
                            {
                                Some(rec.resume_tx.clone())
                            }
                            _ => None, // stale wake
                        }
                    };
                    if let Some(tx) = resume {
                        self.resume_and_wait(pid, &tx);
                    }
                }
            }
        }
        self.now()
    }

    /// Resume `pid` and block the driver until it parks again or exits.
    fn resume_and_wait(&mut self, pid: ProcId, tx: &Sender<()>) {
        {
            let mut st = self.shared.state.lock();
            if let Some(rec) = st.procs.get_mut(&pid) {
                rec.parked = false;
            }
        }
        if tx.send(()).is_err() {
            // Thread already gone; treat as exited.
            let mut st = self.shared.state.lock();
            if let Some(rec) = st.procs.get_mut(&pid) {
                rec.alive = false;
            }
            return;
        }
        match self.yield_rx.recv() {
            Ok(YieldMsg::Parked(p)) => {
                debug_assert_eq!(p, pid, "only the resumed process may yield");
            }
            Ok(YieldMsg::Exited { pid: p, panic }) => {
                {
                    let mut st = self.shared.state.lock();
                    if let Some(rec) = st.procs.get_mut(&p) {
                        rec.alive = false;
                        rec.parked = false;
                    }
                }
                if let Some(payload) = panic {
                    if !payload.is::<ShutdownSignal>() {
                        panic::resume_unwind(payload);
                    }
                }
            }
            Err(_) => {} // all senders gone; nothing left to wait for
        }
    }

    /// Total kernel events executed so far (process wakes and call timers).
    /// Monotone across `run_until` calls; deterministic per seed.
    pub fn events_executed(&self) -> u64 {
        self.shared.state.lock().executed
    }

    /// Names of processes still alive (parked); useful for debugging hangs.
    pub fn blocked_processes(&self) -> Vec<String> {
        let st = self.shared.state.lock();
        st.procs
            .values()
            .filter(|r| r.alive)
            .map(|r| r.name.clone())
            .collect()
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // Raise the shutdown flag, then resume every parked process one at a
        // time so each can unwind via ShutdownSignal.
        let pids: Vec<(ProcId, Sender<()>)> = {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            st.queue.clear();
            st.procs
                .iter()
                .filter(|(_, r)| r.alive)
                .map(|(pid, r)| (*pid, r.resume_tx.clone()))
                .collect()
        };
        for (pid, tx) in pids {
            // A process may park a bounded number of times while unwinding.
            for _ in 0..64 {
                let alive_parked = {
                    let st = self.shared.state.lock();
                    st.procs
                        .get(&pid)
                        .map(|r| r.alive && r.parked)
                        .unwrap_or(false)
                };
                if !alive_parked {
                    break;
                }
                self.resume_and_wait(pid, &tx);
            }
        }
        let handles = std::mem::take(&mut *self.shared.handles.lock());
        for (_, h) in handles {
            let _ = h.join();
        }
    }
}

fn spawn_inner<F>(shared: &Arc<Shared>, name: &str, at: SimTime, f: F) -> ProcId
where
    F: FnOnce(&ProcCtx) + Send + 'static,
{
    let (resume_tx, resume_rx) = mpsc::channel();
    let pid;
    {
        let mut st = shared.state.lock();
        pid = ProcId(st.next_pid);
        st.next_pid += 1;
        st.procs.insert(
            pid,
            ProcRec {
                name: name.to_string(),
                resume_tx,
                generation: 0,
                parked: true, // parked on its initial resume
                alive: true,
            },
        );
        let at = at.max(st.now);
        st.schedule_wake(at, pid, 0);
    }
    let ctx = ProcCtx {
        pid,
        name: Arc::from(name),
        shared: Arc::clone(shared),
        yield_tx: shared.yield_tx.clone(),
        resume_rx,
    };
    let yield_tx = shared.yield_tx.clone();
    let thread_name = format!("sim-{}-{}", pid.0, name);
    let handle = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            // Wait for the first resume.
            if ctx.resume_rx.recv().is_err() {
                return;
            }
            // Shutdown may already have been requested before we first ran.
            let early_shutdown = ctx.shared.state.lock().shutdown;
            let panic_payload = if early_shutdown {
                None
            } else {
                panic::catch_unwind(AssertUnwindSafe(|| f(&ctx))).err()
            };
            let _ = yield_tx.send(YieldMsg::Exited {
                pid,
                panic: panic_payload,
            });
        })
        .expect("failed to spawn simulation process thread");
    shared.handles.lock().push((pid, handle));
    pid
}

/// A cloneable, `Send` handle onto a simulation: lets library code create
/// channels and resources and spawn processes without borrowing [`Sim`]
/// itself (which stays with the driver) or a [`ProcCtx`] (which is pinned to
/// its process thread).
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) shared: Arc<Shared>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Spawn a process runnable at the current virtual time.
    pub fn spawn<F>(&self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        let at = self.now();
        spawn_inner(&self.shared, name, at, f)
    }

    /// Spawn a process runnable at `at`.
    pub fn spawn_at<F>(&self, name: &str, at: SimTime, f: F) -> ProcId
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        spawn_inner(&self.shared, name, at, f)
    }

    /// Create an MPMC simulation channel.
    pub fn channel<T: Send + 'static>(&self) -> (crate::SimSender<T>, crate::SimReceiver<T>) {
        crate::channel::channel(&self.shared)
    }

    /// Create a processor-sharing resource with the given capacity
    /// (work units per second).
    pub fn gps(&self, capacity: f64) -> crate::GpsResource {
        crate::resource::GpsResource::with_shared_pub(&self.shared, capacity)
    }

    /// Run `f` against the simulation's deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        let mut st = self.shared.state.lock();
        f(&mut st.rng)
    }

    /// This simulation's telemetry registry.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.shared.telemetry)
    }
}

impl Sim {
    /// A cloneable handle onto this simulation.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Handle a simulated process uses to interact with virtual time and the
/// kernel. Not `Clone`: it owns the process's resume endpoint and must stay
/// on the process's thread.
pub struct ProcCtx {
    pub(crate) pid: ProcId,
    name: Arc<str>,
    pub(crate) shared: Arc<Shared>,
    yield_tx: Sender<YieldMsg>,
    resume_rx: Receiver<()>,
}

impl ProcCtx {
    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The name this process was spawned with — telemetry uses it as the
    /// span track.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This simulation's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Advance this process's virtual clock by `d`.
    pub fn sleep(&self, d: Dur) {
        if d == Dur::ZERO {
            return;
        }
        {
            let mut st = self.lock_state();
            let generation = st.begin_park(self.pid);
            let at = st.now + d;
            st.schedule_wake(at, self.pid, generation);
        }
        self.yield_parked();
    }

    /// Sleep until absolute time `t` (no-op if `t` is in the past).
    pub fn sleep_until(&self, t: SimTime) {
        let now = self.now();
        if t > now {
            self.sleep(t.since(now));
        }
    }

    /// Spawn a child process runnable at the current virtual time.
    pub fn spawn<F>(&self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        let at = self.now();
        spawn_inner(&self.shared, name, at, f)
    }

    /// Run `f` against the simulation's deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        let mut st = self.shared.state.lock();
        f(&mut st.rng)
    }

    /// A cloneable handle onto this simulation.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    pub(crate) fn lock_state(&self) -> parking_lot::MutexGuard<'_, SimState> {
        self.shared.state.lock()
    }

    /// Yield to the driver after having registered a park (via
    /// [`SimState::begin_park`]) and return once resumed. Panics with
    /// [`ShutdownSignal`] if the simulation is shutting down.
    pub(crate) fn yield_parked(&self) {
        if self.yield_parked_impl() && !std::thread::panicking() {
            panic::panic_any(ShutdownSignal);
        }
    }

    /// Yield to the driver; returns `true` if the simulation is shutting
    /// down (the caller is responsible for unwinding or returning cleanly).
    pub(crate) fn yield_parked_impl(&self) -> bool {
        let _ = self.yield_tx.send(YieldMsg::Parked(self.pid));
        if self.resume_rx.recv().is_err() {
            // Driver is gone entirely; report shutdown.
            return true;
        }
        self.shared.state.lock().shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_advances_virtual_time_instantly() {
        let mut sim = Sim::new(1);
        let t = std::sync::Arc::new(Mutex::new(SimTime::ZERO));
        let t2 = t.clone();
        sim.spawn("sleeper", move |ctx| {
            ctx.sleep(Dur::from_secs(3600)); // an hour of virtual time
            *t2.lock() = ctx.now();
        });
        let wall = std::time::Instant::now();
        sim.run();
        assert_eq!(t.lock().as_nanos(), 3600 * 1_000_000_000);
        assert!(
            wall.elapsed().as_secs() < 5,
            "virtual time must not be wall time"
        );
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_tiebreak() {
        let mut sim = Sim::new(1);
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        for i in 0..5u32 {
            let log = log.clone();
            // All spawned at t=0; same wake time; must run in spawn order.
            sim.spawn(&format!("p{i}"), move |_ctx| {
                log.lock().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_runs_at_parent_time() {
        let mut sim = Sim::new(1);
        let seen = std::sync::Arc::new(Mutex::new(None));
        let seen2 = seen.clone();
        sim.spawn("parent", move |ctx| {
            ctx.sleep(Dur::from_millis(10));
            let seen2 = seen2.clone();
            ctx.spawn("child", move |c| {
                *seen2.lock() = Some(c.now());
            });
            ctx.sleep(Dur::from_millis(10));
        });
        sim.run();
        assert_eq!(seen.lock().unwrap(), SimTime::ZERO + Dur::from_millis(10));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(1);
        let hits = std::sync::Arc::new(Mutex::new(0u32));
        let h = hits.clone();
        sim.spawn("ticker", move |ctx| {
            for _ in 0..10 {
                ctx.sleep(Dur::from_secs(1));
                *h.lock() += 1;
            }
        });
        sim.run_until(SimTime::ZERO + Dur::from_millis(3500));
        assert_eq!(*hits.lock(), 3);
    }

    #[test]
    fn process_panic_propagates() {
        let mut sim = Sim::new(1);
        sim.spawn("bad", |_ctx| panic!("boom"));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| sim.run()));
        assert!(err.is_err());
    }

    #[test]
    fn drop_shuts_down_blocked_processes() {
        let mut sim = Sim::new(1);
        let (_tx, rx) = sim.channel::<u8>();
        sim.spawn("blocked-forever", move |ctx| {
            // recv returns None at shutdown; process exits cleanly.
            assert!(rx.recv(ctx).is_none());
        });
        sim.run();
        drop(sim); // must not hang or leak the thread
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        let sample = |seed: u64| {
            let mut sim = Sim::new(seed);
            let out = std::sync::Arc::new(Mutex::new(Vec::new()));
            let o = out.clone();
            sim.spawn("r", move |ctx| {
                for _ in 0..8 {
                    let v: u64 = ctx.with_rng(rand::Rng::gen);
                    o.lock().push(v);
                }
            });
            sim.run();
            let v = out.lock().clone();
            v
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }
}
