//! Deterministic random helpers for arrival processes.

use rand::Rng;

use crate::time::Dur;

/// Exponentially distributed inter-arrival gap with the given mean.
///
/// The paper launches functions "at intervals drawn from an exponential
/// distribution with rate equal to 2", meaning a mean gap of 2 s (λ = 0.5).
pub fn exp_gap<R: Rng + ?Sized>(rng: &mut R, mean: Dur) -> Dur {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    Dur::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

/// Uniform gap in `[lo, hi)`.
pub fn uniform_gap<R: Rng + ?Sized>(rng: &mut R, lo: Dur, hi: Dur) -> Dur {
    if hi <= lo {
        return lo;
    }
    Dur(rng.gen_range(lo.as_nanos()..hi.as_nanos()))
}

/// Fisher–Yates shuffle (delegates to `rand`, kept for a stable call site).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, xs: &mut [T]) {
    use rand::seq::SliceRandom;
    xs.shuffle(rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_gap_has_roughly_the_right_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let mean = Dur::from_secs(2);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exp_gap(&mut rng, mean).as_secs_f64()).sum();
        let observed = total / n as f64;
        assert!(
            (observed - 2.0).abs() < 0.05,
            "observed mean {observed}, expected ~2.0"
        );
    }

    #[test]
    fn exp_gap_is_deterministic_per_seed() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..5)
                .map(|_| exp_gap(&mut rng, Dur::from_secs(1)).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(1), sample(1));
        assert_ne!(sample(1), sample(2));
    }

    #[test]
    fn uniform_gap_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let g = uniform_gap(&mut rng, Dur::from_millis(10), Dur::from_millis(20));
            assert!(g >= Dur::from_millis(10) && g < Dur::from_millis(20));
        }
        // degenerate range
        assert_eq!(
            uniform_gap(&mut rng, Dur::from_secs(1), Dur::from_secs(1)),
            Dur::from_secs(1)
        );
    }
}
