//! Deterministic random helpers for arrival processes.

use rand::Rng;

use crate::time::Dur;

/// Exponentially distributed inter-arrival gap with the given mean.
///
/// The paper launches functions "at intervals drawn from an exponential
/// distribution with rate equal to 2", meaning a mean gap of 2 s (λ = 0.5).
pub fn exp_gap<R: Rng + ?Sized>(rng: &mut R, mean: Dur) -> Dur {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    Dur::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

/// Uniform gap in `[lo, hi)`.
pub fn uniform_gap<R: Rng + ?Sized>(rng: &mut R, lo: Dur, hi: Dur) -> Dur {
    if hi <= lo {
        return lo;
    }
    Dur(rng.gen_range(lo.as_nanos()..hi.as_nanos()))
}

/// Fisher–Yates shuffle (delegates to `rand`, kept for a stable call site).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, xs: &mut [T]) {
    use rand::seq::SliceRandom;
    xs.shuffle(rng);
}

/// Log-normally distributed duration with underlying normal parameters
/// `mu`/`sigma` (of the log, in seconds). Heavy-tailed service times: the
/// median is `e^mu` seconds, the mean `e^{mu + sigma^2/2}`.
///
/// Uses Box–Muller on two uniform draws, consuming exactly two RNG samples
/// per call so traces stay byte-reproducible per seed.
pub fn lognormal_dur<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> Dur {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    Dur::from_secs_f64((mu + sigma * z).exp())
}

/// Precomputed Zipf(`s`) sampler over ranks `0..n`: rank `k` has weight
/// `1 / (k+1)^s`. Skewed tenant mixes — a handful of hot tenants get most
/// of the traffic while a long tail stays warm.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative weights, normalised to end at 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (rank 0 is the hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_gap_has_roughly_the_right_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let mean = Dur::from_secs(2);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exp_gap(&mut rng, mean).as_secs_f64()).sum();
        let observed = total / n as f64;
        assert!(
            (observed - 2.0).abs() < 0.05,
            "observed mean {observed}, expected ~2.0"
        );
    }

    #[test]
    fn exp_gap_is_deterministic_per_seed() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..5)
                .map(|_| exp_gap(&mut rng, Dur::from_secs(1)).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(1), sample(1));
        assert_ne!(sample(1), sample(2));
    }

    #[test]
    fn lognormal_dur_matches_the_median() {
        let mut rng = StdRng::seed_from_u64(11);
        // mu = ln(0.01) → median 10 ms; sample median should land nearby.
        let mu = (0.01f64).ln();
        let mut xs: Vec<u64> = (0..20_001)
            .map(|_| lognormal_dur(&mut rng, mu, 1.5).as_nanos())
            .collect();
        xs.sort_unstable();
        let median = xs[xs.len() / 2] as f64 / 1e9;
        assert!(
            (median - 0.01).abs() < 0.002,
            "observed median {median}, expected ~0.01"
        );
        // Heavy tail: max should dwarf the median.
        assert!(*xs.last().unwrap() as f64 / 1e9 > 0.1);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(16, 1.1);
        let mut counts = [0u32; 16];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 16);
            counts[k] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[4]);
        assert!(counts.iter().all(|&c| c > 0), "tail ranks must still occur");
    }

    #[test]
    fn uniform_gap_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let g = uniform_gap(&mut rng, Dur::from_millis(10), Dur::from_millis(20));
            assert!(g >= Dur::from_millis(10) && g < Dur::from_millis(20));
        }
        // degenerate range
        assert_eq!(
            uniform_gap(&mut rng, Dur::from_secs(1), Dur::from_secs(1)),
            Dur::from_secs(1)
        );
    }
}
