//! Property-based tests of the DES kernel and its resources.

use std::sync::Arc;

use dgsf_sim::{percentile_sorted, Dur, GpsResource, Sim, SimTime, Summary};
use parking_lot::Mutex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Work conservation under generalized processor sharing: while at
    /// least one job is active the resource runs at full capacity, so
    /// `Σ work == capacity × busy_time` exactly (up to float/rounding).
    #[test]
    fn gps_conserves_work(
        works in proptest::collection::vec(0.01f64..3.0, 1..8),
        starts in proptest::collection::vec(0u64..2_000_000_000, 1..8),
        capacity in 0.5f64..4.0,
    ) {
        let n = works.len().min(starts.len());
        let mut sim = Sim::new(1);
        let r = Arc::new(GpsResource::new(&sim, capacity));
        for i in 0..n {
            let r = r.clone();
            let w = works[i];
            let at = SimTime(starts[i]);
            sim.spawn_at(&format!("j{i}"), at, move |ctx| {
                r.acquire(ctx, w);
            });
        }
        let end = sim.run();
        let busy = r.with_timeline(|tl| tl.busy_between(SimTime::ZERO, end + Dur(1)));
        let total: f64 = works[..n].iter().sum();
        let done = capacity * busy.as_secs_f64();
        prop_assert!(
            (done - total).abs() < 1e-3 * total.max(1.0),
            "work {total} vs capacity×busy {done}"
        );
    }

    /// Every job completes no earlier than its exclusive-use time and no
    /// later than if it shared with everyone the whole way.
    #[test]
    fn gps_completion_bounds(
        works in proptest::collection::vec(0.05f64..2.0, 2..6),
    ) {
        let n = works.len();
        let mut sim = Sim::new(1);
        let r = Arc::new(GpsResource::new(&sim, 1.0));
        let finishes = Arc::new(Mutex::new(vec![0.0f64; n]));
        for (i, w) in works.clone().into_iter().enumerate() {
            let r = r.clone();
            let f = finishes.clone();
            sim.spawn(&format!("j{i}"), move |ctx| {
                r.acquire(ctx, w);
                f.lock()[i] = ctx.now().as_secs_f64();
            });
        }
        sim.run();
        let total: f64 = works.iter().sum();
        let fin = finishes.lock().clone();
        for (i, &w) in works.iter().enumerate() {
            prop_assert!(fin[i] >= w - 1e-6, "job {i} finished before exclusive time");
            prop_assert!(fin[i] <= total + 1e-3, "job {i} finished after serial total");
        }
        // the last finisher ends exactly when all work is done
        let last = fin.iter().cloned().fold(0.0, f64::max);
        prop_assert!((last - total).abs() < 1e-3, "makespan {last} vs total {total}");
    }

    /// Virtual sleeps from concurrent processes interleave consistently:
    /// each process observes its own cumulative sleep time.
    #[test]
    fn sleeps_accumulate_exactly(
        durs in proptest::collection::vec(1u64..1_000_000u64, 1..20),
    ) {
        let mut sim = Sim::new(1);
        let expected: u64 = durs.iter().sum();
        let seen = Arc::new(Mutex::new(0u64));
        let s = seen.clone();
        sim.spawn("sleeper", move |ctx| {
            for d in durs {
                ctx.sleep(Dur(d));
            }
            *s.lock() = ctx.now().as_nanos();
        });
        sim.run();
        prop_assert_eq!(*seen.lock(), expected);
    }

    /// Channels deliver every message exactly once, in order, regardless of
    /// send timing.
    #[test]
    fn channel_delivers_all_in_order(
        gaps in proptest::collection::vec(0u64..1000u64, 1..40),
    ) {
        let mut sim = Sim::new(1);
        let (tx, rx) = sim.channel::<usize>();
        let n = gaps.len();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        sim.spawn("rx", move |ctx| {
            for _ in 0..n {
                if let Some(v) = rx.recv(ctx) {
                    g.lock().push(v);
                }
            }
        });
        sim.spawn("tx", move |ctx| {
            for (i, gap) in gaps.into_iter().enumerate() {
                ctx.sleep(Dur(gap));
                tx.send(ctx, i);
            }
        });
        sim.run();
        let got = got.lock().clone();
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Percentiles are monotone in q, and every percentile of a sample lies
    /// between its min and max; the summary's own p50 ≤ p95 ≤ p99 chain
    /// holds too.
    #[test]
    fn percentiles_monotone_and_bounded(
        samples in proptest::collection::vec(-1e6f64..1e6, 1..60),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(percentile_sorted(&sorted, lo) <= percentile_sorted(&sorted, hi));
        let s = Summary::from(&samples);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        for q in [0.0, lo, hi, 1.0] {
            let p = percentile_sorted(&sorted, q);
            prop_assert!(s.min <= p && p <= s.max, "p({q}) = {p} outside [{}, {}]", s.min, s.max);
        }
    }

    /// Nearest-rank semantics, robust to ties: the percentile is a member
    /// of the sample, at least ⌈q·n⌉ samples are ≤ it, and fewer than
    /// ⌈q·n⌉ are strictly below it. The narrow value range makes heavy
    /// ties the common case.
    #[test]
    fn percentile_is_nearest_rank(
        values in proptest::collection::vec(0u32..20, 1..60),
        q in 0.0f64..1.0,
    ) {
        let mut sorted: Vec<f64> = values.iter().map(|&x| f64::from(x)).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p = percentile_sorted(&sorted, q);
        let n = sorted.len();
        let rank = ((n as f64 * q).ceil() as usize).clamp(1, n);
        prop_assert!(sorted.contains(&p), "percentile must be a sample member");
        let le = sorted.iter().filter(|&&x| x <= p).count();
        let lt = sorted.iter().filter(|&&x| x < p).count();
        prop_assert!(le >= rank, "only {le} samples ≤ {p}, need ≥ {rank}");
        prop_assert!(lt < rank, "{lt} samples < {p}, must be < {rank}");
    }

    /// A single-sample summary collapses to that sample everywhere, and
    /// every percentile of a singleton is the sample itself.
    #[test]
    fn single_sample_summary_collapses(x in -1e6f64..1e6) {
        let s = Summary::from(&[x]);
        prop_assert_eq!(s.n, 1);
        for v in [s.mean, s.min, s.max, s.p50, s.p95, s.p99, s.sum] {
            prop_assert_eq!(v, x);
        }
        prop_assert_eq!(s.std, 0.0);
        for q in [0.0, 0.25, 0.5, 1.0] {
            prop_assert_eq!(percentile_sorted(&[x], q), x);
        }
    }
}

#[test]
fn utilization_samples_are_bounded() {
    let mut sim = Sim::new(1);
    let r = Arc::new(GpsResource::new(&sim, 1.0));
    for i in 0..3 {
        let r = r.clone();
        sim.spawn_at(
            &format!("j{i}"),
            SimTime(i as u64 * 500_000_000),
            move |ctx| {
                r.acquire(ctx, 0.7);
            },
        );
    }
    let end = sim.run();
    r.with_timeline(|tl| {
        for s in tl.utilization_samples(SimTime::ZERO, end, Dur::from_millis(200)) {
            assert!((0.0..=1.0 + 1e-9).contains(&s), "utilization in [0,1]: {s}");
        }
    });
}

#[test]
fn timeline_active_at_and_avg_active() {
    use dgsf_sim::Dur;
    let mut sim = Sim::new(2);
    let r = Arc::new(GpsResource::new(&sim, 1.0));
    // two overlapping jobs: [0,2] and [1,2] in arrival terms
    {
        let r = r.clone();
        sim.spawn("a", move |ctx| r.acquire(ctx, 1.5));
    }
    {
        let r = r.clone();
        sim.spawn_at("b", SimTime(1_000_000_000), move |ctx| r.acquire(ctx, 0.25));
    }
    sim.run();
    r.with_timeline(|tl| {
        // at t=0.5s exactly one job is active
        assert_eq!(tl.active_at(SimTime(500_000_000)), 1);
        // at t=1.2s both are active
        assert_eq!(tl.active_at(SimTime(1_200_000_000)), 2);
        // before anything started
        assert!(tl.active_at(SimTime(0)) >= 1); // job a starts at t=0
        let avg = tl.avg_active(SimTime::ZERO, SimTime::ZERO + Dur::from_secs(2));
        assert!(
            avg > 0.9 && avg < 2.0,
            "time-weighted mean in (0.9,2): {avg}"
        );
        assert!(!tl.is_empty());
        assert!(tl.len() >= 2);
    });
}

#[test]
fn busy_between_is_additive_over_adjacent_windows() {
    use dgsf_sim::Dur;
    let mut sim = Sim::new(3);
    let r = Arc::new(GpsResource::new(&sim, 1.0));
    for i in 0..4u64 {
        let r = r.clone();
        sim.spawn_at(&format!("j{i}"), SimTime(i * 700_000_000), move |ctx| {
            r.acquire(ctx, 0.3);
        });
    }
    let end = sim.run();
    r.with_timeline(|tl| {
        let whole = tl.busy_between(SimTime::ZERO, end).as_nanos();
        let mid = SimTime(end.as_nanos() / 2);
        let a = tl.busy_between(SimTime::ZERO, mid).as_nanos();
        let b = tl.busy_between(mid, end).as_nanos();
        assert_eq!(a + b, whole, "busy time must be additive over a split");
        // utilization samples cover the window and sum to the busy total
        let samples = tl.utilization_samples(SimTime::ZERO, end, Dur::from_millis(100));
        let from_samples: f64 = samples.iter().sum::<f64>() * 0.1;
        assert!(
            (from_samples - whole as f64 / 1e9).abs() < 0.11,
            "sampled busy {from_samples} vs exact {}",
            whole as f64 / 1e9
        );
    });
}
