//! Micro-benchmarks of the simulation substrate itself: event throughput,
//! processor-sharing bookkeeping, wire codec, and the ablation targets
//! DESIGN.md calls out (GPS vs FIFO sharing, migration DMA channels).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use dgsf::cuda::CostTable;
use dgsf::prelude::*;
use dgsf::remoting::wire::{Request, WireBuf};
use dgsf::sim::{FifoResource, GpsResource, Sim};
use dgsf::workloads;

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("20k_sleep_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.spawn("sleeper", |ctx| {
                for _ in 0..20_000 {
                    ctx.sleep(Dur::from_micros(1));
                }
            });
            sim.run()
        })
    });
    g.finish();
}

fn bench_gps_vs_fifo(c: &mut Criterion) {
    // Ablation: processor-sharing vs serialized kernel execution with 8
    // concurrent jobs. GPS pays re-apportioning on every arrival/departure.
    let mut g = c.benchmark_group("sharing");
    g.sample_size(10);
    g.bench_function("gps_8_jobs_1k_rounds", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let r = Arc::new(GpsResource::new(&sim, 1.0));
            for i in 0..8 {
                let r = r.clone();
                sim.spawn(&format!("j{i}"), move |ctx| {
                    for _ in 0..1000 {
                        r.acquire(ctx, 1e-6);
                    }
                });
            }
            sim.run()
        })
    });
    g.bench_function("fifo_8_jobs_1k_rounds", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let r = Arc::new(FifoResource::new(&sim));
            for i in 0..8 {
                let r = r.clone();
                sim.spawn(&format!("j{i}"), move |ctx| {
                    for _ in 0..1000 {
                        r.acquire_for(ctx, Dur::from_micros(1));
                    }
                });
            }
            sim.run()
        })
    });
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let launch = Request::LaunchConfigured {
        fptr: 0xdead_beef,
        stream: 0,
        cfg: dgsf::remoting::wire::WireCfg {
            grid: (128, 1, 1),
            block: (256, 1, 1),
        },
        args: dgsf::remoting::wire::WireArgs {
            ptrs: vec![1, 2, 3],
            scalars: vec![42, 7],
            bytes: 1 << 20,
            work_hint: Some(0.001),
        },
    };
    c.bench_function("wire/encode_launch_100k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for _ in 0..100_000 {
                n += launch.encode().len() as u64;
            }
            n
        })
    });
    c.bench_function("wire/wire_size_launch_100k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for _ in 0..100_000 {
                n += launch.wire_size();
            }
            n
        })
    });
    let frame = launch.encode();
    c.bench_function("wire/decode_launch_100k", |b| {
        b.iter_batched(
            || frame.clone(),
            |f| {
                let mut n = 0u64;
                for _ in 0..100_000 {
                    let mut f = f.clone();
                    let req = Request::decode(&mut f).unwrap();
                    n += matches!(req, Request::LaunchConfigured { .. }) as u64;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    let h2d = Request::MemcpyH2D {
        dst: 0x7000_0000_0000,
        data: WireBuf::Bytes(vec![7u8; 64 * 1024].into()),
    };
    c.bench_function("wire/encode_h2d_64k_1k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for _ in 0..1_000 {
                n += h2d.encode().len() as u64;
            }
            n
        })
    });
    let h2d_frame = h2d.encode();
    c.bench_function("wire/decode_h2d_64k_1k", |b| {
        b.iter_batched(
            || h2d_frame.clone(),
            |f| {
                let mut n = 0u64;
                for _ in 0..1_000 {
                    let mut f = f.clone();
                    let req = Request::decode(&mut f).unwrap();
                    n += matches!(req, Request::MemcpyH2D { .. }) as u64;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rpc_round_trips(c: &mut Criterion) {
    // The steady-state remoting hot path: a client/server pair ping-ponging
    // framed requests over a NetLink. One round trip = encode + wire_size +
    // uplink transfer + decode + respond (encode + wire_size + downlink) +
    // reply decode, all through the DES kernel — the `sim events/sec`
    // number the scale work optimizes.
    use dgsf::remoting::wire::Response;
    use dgsf::remoting::{NetLink, NetProfile, RpcClient, RpcInbox};
    use dgsf::sim::Dur as SimDur;

    let mut g = c.benchmark_group("rpc");
    g.sample_size(10);
    g.bench_function("20k_round_trips", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let h = sim.handle();
            let link = NetLink::new(
                &h,
                NetProfile {
                    rpc_latency: SimDur::from_micros(60),
                    rpc_jitter: SimDur::ZERO,
                    nic_bw: 1.25e9,
                    s3_bw: 0.15e9,
                },
            );
            let (client, inbox) = RpcClient::connect(&h, link.clone());
            let srv_link = link.clone();
            sim.spawn("server", move |p| {
                while let Some(env) = inbox.next(p) {
                    let _req = RpcInbox::decode(&env).unwrap();
                    inbox.respond(p, &srv_link, &env, &Response::Ok);
                }
            });
            sim.spawn("client", move |p| {
                for _ in 0..20_000 {
                    client.call(p, &Request::Sync).unwrap();
                }
            });
            sim.run()
        })
    });
    g.finish();
}

fn bench_migration_dma_channels(c: &mut Criterion) {
    // Ablation: 1 vs 2 DMA channels for the migration copy. Uses the
    // functional K-means session so real pages move.
    let mut g = c.benchmark_group("migration");
    g.sample_size(10);
    for channels in [1u32, 2u32] {
        g.bench_function(format!("kmeans_migrate_{channels}ch"), |b| {
            b.iter(|| {
                let costs = CostTable {
                    d2d_channels: channels,
                    ..Default::default()
                };
                let cfg = TestbedConfig {
                    seed: 1,
                    server: GpuServerConfig::paper_default().gpus(2),
                    opts: OptConfig::full(),
                };
                let mut c2 = cfg;
                c2.server.costs = costs;
                let w: Arc<dyn Workload> = Arc::new(workloads::kmeans());
                Testbed::run_dgsf_once(&c2, w)
            })
        });
    }
    g.finish();
}

fn bench_functional_kmeans(c: &mut Criterion) {
    // Real math through the whole remoting stack.
    let mut g = c.benchmark_group("functional");
    g.sample_size(10);
    g.bench_function("kmeans_cpu_6_threads", |b| {
        let prob = workloads::KMeansProblem::synthetic(20_000, 8, 8, 5, 3);
        b.iter(|| prob.run_cpu(6))
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_event_throughput,
    bench_gps_vs_fifo,
    bench_wire_codec,
    bench_rpc_round_trips,
    bench_migration_dma_channels,
    bench_functional_kmeans,
);
criterion_main!(simulator);
