//! Micro-benchmarks of the simulation substrate itself: event throughput,
//! processor-sharing bookkeeping, wire codec, and the ablation targets
//! DESIGN.md calls out (GPS vs FIFO sharing, migration DMA channels).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use dgsf::cuda::CostTable;
use dgsf::prelude::*;
use dgsf::remoting::wire::{Request, WireBuf};
use dgsf::sim::{FifoResource, GpsResource, Sim};
use dgsf::workloads;

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("20k_sleep_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.spawn("sleeper", |ctx| {
                for _ in 0..20_000 {
                    ctx.sleep(Dur::from_micros(1));
                }
            });
            sim.run()
        })
    });
    g.finish();
}

fn bench_gps_vs_fifo(c: &mut Criterion) {
    // Ablation: processor-sharing vs serialized kernel execution with 8
    // concurrent jobs. GPS pays re-apportioning on every arrival/departure.
    let mut g = c.benchmark_group("sharing");
    g.sample_size(10);
    g.bench_function("gps_8_jobs_1k_rounds", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let r = Arc::new(GpsResource::new(&sim, 1.0));
            for i in 0..8 {
                let r = r.clone();
                sim.spawn(&format!("j{i}"), move |ctx| {
                    for _ in 0..1000 {
                        r.acquire(ctx, 1e-6);
                    }
                });
            }
            sim.run()
        })
    });
    g.bench_function("fifo_8_jobs_1k_rounds", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let r = Arc::new(FifoResource::new(&sim));
            for i in 0..8 {
                let r = r.clone();
                sim.spawn(&format!("j{i}"), move |ctx| {
                    for _ in 0..1000 {
                        r.acquire_for(ctx, Dur::from_micros(1));
                    }
                });
            }
            sim.run()
        })
    });
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let launch = Request::LaunchConfigured {
        fptr: 0xdead_beef,
        stream: 0,
        cfg: dgsf::remoting::wire::WireCfg {
            grid: (128, 1, 1),
            block: (256, 1, 1),
        },
        args: dgsf::remoting::wire::WireArgs {
            ptrs: vec![1, 2, 3],
            scalars: vec![42, 7],
            bytes: 1 << 20,
            work_hint: Some(0.001),
        },
    };
    c.bench_function("wire/encode_launch", |b| b.iter(|| launch.encode()));
    let frame = launch.encode();
    c.bench_function("wire/decode_launch", |b| {
        b.iter_batched(
            || frame.clone(),
            |mut f| Request::decode(&mut f).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let h2d = Request::MemcpyH2D {
        dst: 0x7000_0000_0000,
        data: WireBuf::Bytes(vec![7u8; 64 * 1024]),
    };
    c.bench_function("wire/encode_h2d_64k", |b| b.iter(|| h2d.encode()));
}

fn bench_migration_dma_channels(c: &mut Criterion) {
    // Ablation: 1 vs 2 DMA channels for the migration copy. Uses the
    // functional K-means session so real pages move.
    let mut g = c.benchmark_group("migration");
    g.sample_size(10);
    for channels in [1u32, 2u32] {
        g.bench_function(format!("kmeans_migrate_{channels}ch"), |b| {
            b.iter(|| {
                let costs = CostTable {
                    d2d_channels: channels,
                    ..Default::default()
                };
                let cfg = TestbedConfig {
                    seed: 1,
                    server: GpuServerConfig::paper_default().gpus(2),
                    opts: OptConfig::full(),
                };
                let mut c2 = cfg;
                c2.server.costs = costs;
                let w: Arc<dyn Workload> = Arc::new(workloads::kmeans());
                Testbed::run_dgsf_once(&c2, w)
            })
        });
    }
    g.finish();
}

fn bench_functional_kmeans(c: &mut Criterion) {
    // Real math through the whole remoting stack.
    let mut g = c.benchmark_group("functional");
    g.sample_size(10);
    g.bench_function("kmeans_cpu_6_threads", |b| {
        let prob = workloads::KMeansProblem::synthetic(20_000, 8, 8, 5, 3);
        b.iter(|| prob.run_cpu(6))
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_event_throughput,
    bench_gps_vs_fifo,
    bench_wire_codec,
    bench_migration_dma_channels,
    bench_functional_kmeans,
);
criterion_main!(simulator);
