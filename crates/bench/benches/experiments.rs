//! Criterion benches over the paper's experiments: each bench regenerates
//! (a scaled-down version of) one table/figure per iteration, giving a
//! stable wall-clock figure for the full simulation pipeline. The printed
//! tables themselves come from `dgsf-expt`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::workloads;
use dgsf_bench::{mixed, single};

fn bench_table2_single_workload(c: &mut Criterion) {
    // One representative Table II cell: face identification over DGSF.
    let cfg = TestbedConfig::paper_default();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("faceid_dgsf_once", |b| {
        b.iter(|| {
            let w: Arc<dyn Workload> = Arc::new(workloads::face_identification());
            Testbed::run_dgsf_once(&cfg, w)
        })
    });
    g.bench_function("faceid_native_once", |b| {
        b.iter(|| {
            let w: Arc<dyn Workload> = Arc::new(workloads::face_identification());
            Testbed::run_native_once(1, &cfg.server.costs, w)
        })
    });
    g.finish();
}

fn bench_fig4_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("faceid_all_levels", |b| {
        b.iter(|| {
            let cfg = TestbedConfig::paper_default();
            for (_label, opts) in single::ablation_levels() {
                let mut cc = cfg.clone();
                cc.opts = opts;
                let w: Arc<dyn Workload> = Arc::new(workloads::face_identification());
                let _ = Testbed::run_dgsf_once(&cc, w);
            }
        })
    });
    g.finish();
}

fn bench_table3_heavy_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("heavy_load_quick", |b| b.iter(|| mixed::heavy_load(1, 42)));
    g.finish();
}

fn bench_table4_light_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("light_load_quick", |b| b.iter(|| mixed::light_load(1, 42)));
    g.finish();
}

fn bench_fig7_burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("burst_quick", |b| b.iter(|| mixed::burst(2, 42)));
    g.finish();
}

fn bench_fig8_migration_case(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("four_scenarios", |b| b.iter(|| mixed::fig8(42)));
    g.finish();
}

fn bench_table5_synthetic(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("smallest_size", |b| {
        b.iter(|| {
            let w: Arc<dyn Workload> = Arc::new(workloads::SyntheticMigration::mb(323));
            let cfg = TestbedConfig::paper_default();
            Testbed::run_dgsf_once(&cfg, w)
        })
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_table2_single_workload,
    bench_fig4_ablation,
    bench_table3_heavy_load,
    bench_table4_light_load,
    bench_fig7_burst,
    bench_fig8_migration_case,
    bench_table5_synthetic,
);
criterion_main!(experiments);
