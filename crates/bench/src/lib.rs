//! # dgsf-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§VIII), each
//! returning structured results plus a paper-style text rendering:
//!
//! | paper artifact | function | binary subcommand |
//! |---|---|---|
//! | Table II  | [`single::table2`]     | `dgsf-expt table2` |
//! | Figure 3  | [`single::fig3`]       | `dgsf-expt fig3` |
//! | Figure 4  | [`single::fig4`]       | `dgsf-expt fig4` |
//! | Table III | [`mixed::heavy_load`]  | `dgsf-expt table3` |
//! | Figure 5  | [`mixed::heavy_load`]  | `dgsf-expt fig5` |
//! | Table IV  | [`mixed::light_load`]  | `dgsf-expt table4` |
//! | Figure 6  | [`mixed::light_load`]  | `dgsf-expt fig6` |
//! | Figure 7  | [`mixed::burst`]       | `dgsf-expt fig7` |
//! | Figure 8  | [`mixed::fig8`]        | `dgsf-expt fig8` |
//! | Table V   | [`single::table5`]     | `dgsf-expt table5` |
//! | §V-C API counts | [`single::apicounts`] | `dgsf-expt apicounts` |
//! | §VIII-D future work (SJF) | [`mixed::queue_policy`] | `dgsf-expt sjf` |
//! | telemetry trace | [`trace::write_trace`] | `dgsf-expt trace` |
//! | autoscaler load sweep | [`sweep::sweep`] | `dgsf-expt sweep` |
//! | million-invocation scale run | [`scale::scale`] | `dgsf-expt scale` |
//! | multi-tenant fleet sweep | [`fleet::fleet`] | `dgsf-expt fleet` |
//! | tail-latency attribution | [`attrib::attrib`] | `dgsf-expt attribute` |
//! | predictive vs reactive ramp | [`obs::obs`] | `dgsf-expt obs` |
//!
//! `dgsf-expt all` regenerates everything (this is what EXPERIMENTS.md
//! records). `dgsf-expt trace` instead writes telemetry artifacts
//! (`metrics.json` + Chrome `trace.json`) to `--out DIR`.

#![warn(missing_docs)]

pub mod attrib;
pub mod fleet;
pub mod mixed;
pub mod obs;
pub mod pipeline;
pub mod report;
pub mod scale;
pub mod single;
pub mod sweep;
pub mod trace;
