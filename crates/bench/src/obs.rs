//! `dgsf-expt obs` — the observability-plane experiment: predictive vs
//! reactive autoscaling on a 10× diurnal ramp.
//!
//! Replays the sweep's synthetic workload through the same autoscaled,
//! admission-controlled fleet, but with a diurnal arrival profile: a low
//! baseline rate, a 10× surge, then the baseline again. Both runs attach
//! the online observability plane (`sim::obs`); the *predictive* run
//! additionally puts the autoscaler in predictive mode, so it pre-warms
//! API servers on the plane's rate-ramp signal instead of waiting for
//! sustained queue-delay breaches, and gates reactive scale-ups on the
//! streamed queue-attributed share of tail latency.
//!
//! The experiment reports, per mode, the shed count and the pool-grow
//! latency (first scale-up/prewarm after surge onset) — the paper-style
//! claim is that prediction sheds strictly less at an equal hardware
//! ceiling. The predictive run's dashboard (windows, burn-rate alerts,
//! health timeline) is exported as `dashboard.json` next to
//! `BENCH_obs.json`; both are integers-only and **byte-identical per
//! seed**, so CI diffs the quick run against a committed golden.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dgsf::cuda::{CudaResult, KernelDef};
use dgsf::gpu::GB;
use dgsf::prelude::*;

use crate::report::TextTable;

/// The ramp's synthetic workload: 0.75 s of host-side pre-processing
/// followed by 0.5 s of GPU work (1 GB footprint, no download). The host
/// share is the point: it keeps the API server busy without occupying the
/// GPU, so the fleet's service rate is set by the *pool size* until GPU
/// compute saturates — exactly the regime where autoscaling lag turns
/// into queueing and sheds.
struct Spin;

impl Workload for Spin {
    fn name(&self) -> &str {
        "spin"
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        GB
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        p.sleep(Dur::from_millis(HOST_MS)); // host-side pre-processing
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(SPIN_SECS, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        30.0
    }
}

/// GPU seconds of work per invocation.
const SPIN_SECS: f64 = 0.5;

/// Host milliseconds per invocation (API server busy, GPU free).
const HOST_MS: u64 = 750;

/// Baseline (off-peak) arrival rate, milli-requests/second.
const LOW_RPS_MILLI: u64 = 360;

/// Surge arrival rate — 10× the baseline, just under the 4 rps GPU
/// ceiling but far above what the off-peak pool serves (each server is
/// busy 1.25 s per function). A fully grown pool keeps up, so every shed
/// is a scaling-lag artifact — the quantity prediction is supposed to
/// shrink.
const HIGH_RPS_MILLI: u64 = 3_600;

/// One autoscaling mode's run over the ramp. All integers (virtual-time
/// derived), so the JSON rendering is byte-stable per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeStats {
    /// Functions launched.
    pub launched: u64,
    /// Functions that completed successfully.
    pub completed: u64,
    /// Functions shed (admission, queue-age bound, overload).
    pub shed: u64,
    /// Functions that failed for any other reason.
    pub failed: u64,
    /// Median end-to-end latency of completed functions (microseconds).
    pub p50_e2e_us: u64,
    /// 99th-percentile end-to-end latency (microseconds, nearest-rank).
    pub p99_e2e_us: u64,
    /// Peak API-server pool size (telemetry gauge).
    pub pool_peak: i64,
    /// Reactive scale-up actions.
    pub scale_ups: u64,
    /// Predictive pre-warm actions (0 in reactive mode).
    pub prewarms: u64,
    /// Scale-down actions.
    pub scale_downs: u64,
    /// Milliseconds from surge onset to the first pool growth
    /// (scale-up or prewarm) at or after it; -1 if the pool never grew.
    pub first_grow_ms_after_surge: i64,
    /// Burn-rate alerts fired by the plane.
    pub alerts_fired: u64,
    /// Burn-rate alerts cleared.
    pub alerts_cleared: u64,
}

/// The whole experiment: the same diurnal schedule run reactively and
/// predictively at an equal hardware ceiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsOutput {
    /// Seed the schedule and both runs derive from.
    pub seed: u64,
    /// Quick (CI) sizing.
    pub quick: bool,
    /// Surge onset, ms from run start.
    pub surge_start_ms: u64,
    /// Surge end, ms from run start.
    pub surge_end_ms: u64,
    /// Total launches in the schedule.
    pub launches: u64,
    /// The reactive (breach-driven) run.
    pub reactive: ModeStats,
    /// The predictive (ramp-prewarm, attribution-gated) run.
    pub predictive: ModeStats,
    /// The predictive run's dashboard (`ObsReport::dashboard_json`).
    pub dashboard: String,
}

/// The observability plane both runs attach: 2 s windows so the 10×
/// surge clears the ramp detector's minimum-arrivals floor well inside
/// one window, everything else at the paper defaults (2 s SLO, 10%
/// budget, 2/8 burn windows).
fn obs_config() -> ObsConfig {
    ObsConfig::paper_default().with_window(Dur::from_secs(2))
}

/// The fleet under test — the sweep's: 2 GPUs, autoscaling 1→4 API
/// servers per GPU, admission-controlled, 3 s queue-age shed bound.
/// `predictive` only toggles the autoscaler mode; the hardware ceiling
/// is identical.
fn ramp_config(seed: u64, predictive: bool) -> PlatformConfig {
    let mut auto = AutoscaleConfig::new(1, 4)
        .with_target_queue_delay(Dur::from_millis(250))
        .with_up_ticks(4)
        .with_idle_ttl(Dur::from_secs(3))
        .with_cooldown(Dur::from_millis(600));
    if predictive {
        auto = auto.with_predictive(PredictiveConfig::default());
    }
    PlatformConfig::paper_default()
        .with_seed(seed)
        .with_server(
            GpuServerConfig::paper_default()
                .gpus(2)
                .sharing(4)
                .with_autoscale(auto),
        )
        .with_max_inflight(24)
        .with_max_queue_age(Dur::from_millis(1_400))
        .with_obs(obs_config())
}

/// Poisson arrivals at `rate_milli_rps` filling `[start, start + len)`:
/// a seeded exponential-gap stream truncated to the segment. Deterministic
/// per seed.
fn segment(seed: u64, start: SimTime, len: Dur, rate_milli_rps: u64) -> Vec<(SimTime, usize)> {
    let mean = Dur(1_000_000_000_000 / rate_milli_rps);
    let expect = (len.as_nanos() as u128 * rate_milli_rps as u128 / 1_000_000_000_000) as usize;
    let over = expect * 2 + 16; // generous overdraw, then truncate
    let s = Schedule::mixed(seed, 1, over, ArrivalPattern::Exponential { mean });
    s.entries
        .into_iter()
        .filter(|(t, _)| t.since(SimTime::ZERO) < len)
        .map(|(t, w)| (start + t.since(SimTime::ZERO), w))
        .collect()
}

/// The diurnal ramp: low → 10× surge → low. Returns the schedule plus the
/// surge's `[start, end)` in ms.
fn diurnal(seed: u64, quick: bool) -> (Schedule, u64, u64) {
    let (low_ms, surge_ms) = if quick {
        (16_000u64, 20_000u64)
    } else {
        (30_000, 40_000)
    };
    let sub = |k: u64| seed.wrapping_add((k + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut entries = segment(
        sub(0),
        SimTime::ZERO,
        Dur::from_millis(low_ms),
        LOW_RPS_MILLI,
    );
    entries.extend(segment(
        sub(1),
        SimTime::ZERO + Dur::from_millis(low_ms),
        Dur::from_millis(surge_ms),
        HIGH_RPS_MILLI,
    ));
    entries.extend(segment(
        sub(2),
        SimTime::ZERO + Dur::from_millis(low_ms + surge_ms),
        Dur::from_millis(low_ms),
        LOW_RPS_MILLI,
    ));
    (Schedule { entries }, low_ms, low_ms + surge_ms)
}

/// Nearest-rank percentile of a sorted slice (q in permille).
fn percentile_sorted(sorted: &[u64], q_permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((n * q_permille).div_ceil(1000)).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Run the ramp once in one mode; returns the stats and the plane's report.
fn run_mode(
    seed: u64,
    schedule: &Schedule,
    surge_start_ms: u64,
    predictive: bool,
) -> (ModeStats, ObsReport) {
    let suite: Vec<Arc<dyn Workload>> = vec![Arc::new(Spin)];
    let cfg = ramp_config(seed, predictive);
    let (out, tel) = Testbed::run_platform_schedule_traced(&cfg, &suite, schedule);
    let report = out.obs.clone().expect("obs plane was configured");
    let mut e2e_us: Vec<u64> = out
        .results
        .iter()
        .filter(|r| r.succeeded())
        .map(|r| r.e2e().as_nanos() / 1_000)
        .collect();
    e2e_us.sort_unstable();
    let surge_start = SimTime::ZERO + Dur::from_millis(surge_start_ms);
    let first_grow_ms_after_surge = tel
        .instants()
        .iter()
        .filter(|e| (e.name == "scale-up" || e.name == "prewarm") && e.at >= surge_start)
        .map(|e| (e.at.since(surge_start).as_nanos() / 1_000_000) as i64)
        .min()
        .unwrap_or(-1);
    let fired = report.fired().count() as u64;
    let stats = ModeStats {
        launched: out.results.len() as u64,
        completed: out.completed() as u64,
        shed: out.shed() as u64,
        failed: out.failed() as u64,
        p50_e2e_us: percentile_sorted(&e2e_us, 500),
        p99_e2e_us: percentile_sorted(&e2e_us, 990),
        pool_peak: tel.gauge_peak("monitor.pool_size").unwrap_or(
            // pool never moved: it stayed at the provisioned baseline
            cfg.server.total_api_servers() as i64,
        ),
        scale_ups: tel.counter("autoscale.scale_ups"),
        prewarms: tel.counter("autoscale.prewarms"),
        scale_downs: tel.counter("autoscale.scale_downs"),
        first_grow_ms_after_surge,
        alerts_fired: fired,
        alerts_cleared: report.alerts.len() as u64 - fired,
    };
    (stats, report)
}

/// Run the full experiment: one diurnal schedule, two modes, one
/// dashboard. Deterministic per `(seed, quick)`.
pub fn obs(seed: u64, quick: bool) -> ObsOutput {
    let (schedule, surge_start_ms, surge_end_ms) = diurnal(seed, quick);
    let (reactive, _) = run_mode(seed, &schedule, surge_start_ms, false);
    let (predictive, report) = run_mode(seed, &schedule, surge_start_ms, true);
    ObsOutput {
        seed,
        quick,
        surge_start_ms,
        surge_end_ms,
        launches: schedule.len() as u64,
        reactive,
        predictive,
        dashboard: report.dashboard_json(),
    }
}

fn mode_json(out: &mut String, label: &str, m: &ModeStats) {
    out.push_str(&format!(
        "  \"{label}\": {{\"launched\": {}, \"completed\": {}, \"shed\": {}, \"failed\": {}, \"p50_e2e_us\": {}, \"p99_e2e_us\": {}, \"pool_peak\": {}, \"scale_ups\": {}, \"prewarms\": {}, \"scale_downs\": {}, \"first_grow_ms_after_surge\": {}, \"alerts_fired\": {}, \"alerts_cleared\": {}}}",
        m.launched,
        m.completed,
        m.shed,
        m.failed,
        m.p50_e2e_us,
        m.p99_e2e_us,
        m.pool_peak,
        m.scale_ups,
        m.prewarms,
        m.scale_downs,
        m.first_grow_ms_after_surge,
        m.alerts_fired,
        m.alerts_cleared,
    ));
}

/// Render the mode comparison as JSON. Integers only — byte-identical per
/// seed. The dashboard is a separate artifact (`dashboard.json`).
pub fn obs_json(o: &ObsOutput) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", o.seed));
    out.push_str(&format!(
        "  \"surge_start_ms\": {}, \"surge_end_ms\": {},\n",
        o.surge_start_ms, o.surge_end_ms
    ));
    out.push_str(&format!("  \"launches\": {},\n", o.launches));
    mode_json(&mut out, "reactive", &o.reactive);
    out.push_str(",\n");
    mode_json(&mut out, "predictive", &o.predictive);
    out.push_str("\n}\n");
    out
}

/// Write `BENCH_obs.json` and the predictive run's `dashboard.json` into
/// `out_dir`; returns the `BENCH_obs.json` path.
pub fn write_obs(out_dir: &Path, o: &ObsOutput) -> io::Result<PathBuf> {
    fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_obs.json");
    fs::write(&path, obs_json(o))?;
    fs::write(out_dir.join("dashboard.json"), &o.dashboard)?;
    Ok(path)
}

/// Human-readable comparison table.
pub fn obs_text(o: &ObsOutput) -> String {
    let mut t = TextTable::new(vec![
        "mode",
        "launched",
        "completed",
        "shed",
        "p50 e2e",
        "p99 e2e",
        "pool peak",
        "ups/pre/downs",
        "grow after surge",
        "alerts",
    ]);
    for (label, m) in [("reactive", &o.reactive), ("predictive", &o.predictive)] {
        t.row(vec![
            label.to_string(),
            m.launched.to_string(),
            m.completed.to_string(),
            m.shed.to_string(),
            format!("{:.2}s", m.p50_e2e_us as f64 / 1e6),
            format!("{:.2}s", m.p99_e2e_us as f64 / 1e6),
            m.pool_peak.to_string(),
            format!("{}/{}/{}", m.scale_ups, m.prewarms, m.scale_downs),
            if m.first_grow_ms_after_surge < 0 {
                "never".to_string()
            } else {
                format!("{}ms", m.first_grow_ms_after_surge)
            },
            format!("{}+{}", m.alerts_fired, m.alerts_cleared),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_schedule_is_sorted_dense_in_surge_and_deterministic() {
        let (s, surge_start, surge_end) = diurnal(42, true);
        assert!(s.entries.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        let in_surge = |t: &SimTime| {
            let ms = t.as_nanos() / 1_000_000;
            ms >= surge_start && ms < surge_end
        };
        let surge = s.entries.iter().filter(|(t, _)| in_surge(t)).count() as u64;
        let low = s.len() as u64 - surge;
        // The surge *rate* must be several-fold the off-peak rate; the
        // off-peak shoulders together span longer than the surge, so
        // normalize by span length rather than comparing raw counts.
        let surge_span_ms = surge_end - surge_start;
        let low_span_ms = s.entries.last().unwrap().0.as_nanos() / 1_000_000 - surge_span_ms;
        assert!(
            surge * low_span_ms > 4 * low * surge_span_ms,
            "surge {surge}/{surge_span_ms}ms vs off-peak {low}/{low_span_ms}ms — ramp is not 10×"
        );
        assert_eq!(s, diurnal(42, true).0, "schedule must be seed-stable");
        assert_ne!(s, diurnal(43, true).0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v = [10u64, 20, 30, 40, 50];
        assert_eq!(percentile_sorted(&v, 500), 30);
        assert_eq!(percentile_sorted(&v, 990), 50);
        assert_eq!(percentile_sorted(&[], 500), 0);
    }
}
