//! `dgsf-expt trace` — run an experiment with telemetry recording on and
//! write browsable trace artifacts.
//!
//! Two files come out of a trace run:
//!
//! * `metrics.json` — the full metrics snapshot: counters, gauges,
//!   histograms (with log₂ buckets and integer p50/p95/p99 bounds).
//! * `trace.json` — a Chrome trace-event file; open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev> to browse invocation,
//!   phase, RPC and server spans on per-process tracks in virtual time.
//!
//! Both files are deterministic: the simulation records in virtual time
//! only, so the same seed produces byte-identical output on every run and
//! machine. That makes the trace usable as a regression oracle — diff the
//! files across commits to see exactly what changed in the platform's
//! behaviour.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use dgsf::prelude::*;
use dgsf::workloads::{as_workloads, paper_suite};

/// Paths written by [`write_trace`].
#[derive(Debug, Clone)]
pub struct TraceFiles {
    /// Metrics snapshot (counters, gauges, histograms).
    pub metrics: PathBuf,
    /// Chrome trace-event file (load in `chrome://tracing` / Perfetto).
    pub chrome_trace: PathBuf,
}

/// Run the heavy-load mixed experiment (paper suite, exponential arrivals
/// with mean 2 s, 4 GPUs, sharing(2) best-fit) with telemetry enabled and
/// write `metrics.json` + `trace.json` into `out_dir`.
///
/// Same `seed` and `copies` ⇒ byte-identical files.
pub fn write_trace(out_dir: &Path, copies: usize, seed: u64) -> io::Result<TraceFiles> {
    let suite = paper_suite();
    let pattern = ArrivalPattern::Exponential {
        mean: Dur::from_secs(2),
    };
    let schedule = Schedule::mixed(seed, suite.len(), copies, pattern);
    let cfg = TestbedConfig {
        seed,
        server: GpuServerConfig::paper_default().gpus(4).sharing(2),
        opts: OptConfig::full(),
    };
    let (_out, tel) = Testbed::run_schedule_traced(&cfg, &as_workloads(&suite), &schedule);
    let export = tel.export();
    fs::create_dir_all(out_dir)?;
    let metrics = out_dir.join("metrics.json");
    let chrome_trace = out_dir.join("trace.json");
    fs::write(&metrics, &export.metrics_json)?;
    fs::write(&chrome_trace, &export.chrome_trace_json)?;
    Ok(TraceFiles {
        metrics,
        chrome_trace,
    })
}
