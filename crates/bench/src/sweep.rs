//! `dgsf-expt sweep` — the open-loop load sweep.
//!
//! Drives Poisson (exponential-gap) arrivals of a fixed synthetic workload
//! at a range of offered rates through the serverless backend, against an
//! autoscaled GPU server with admission control. For each rate the sweep
//! records throughput, p50/p99 end-to-end latency, the shed rate and the
//! autoscaler's activity — the curve that shows the platform saturating
//! gracefully (bounded p99, shed < 100%) instead of queueing without
//! bound.
//!
//! Everything in `BENCH_sweep.json` is an integer derived from virtual
//! time, so the file is **byte-identical per seed** across runs and
//! machines — CI diffs it against a committed golden.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dgsf::cuda::{CudaResult, KernelDef};
use dgsf::gpu::GB;
use dgsf::prelude::*;

use crate::report::TextTable;

/// The sweep's synthetic workload: 0.5 s of GPU work, 1 GB footprint, no
/// download. Small enough that the saturation point is set by compute, not
/// memory.
struct Spin;

impl Workload for Spin {
    fn name(&self) -> &str {
        "spin"
    }
    fn registry(&self) -> Arc<ModuleRegistry> {
        Arc::new(ModuleRegistry::new().with(KernelDef::timed("k")))
    }
    fn required_gpu_mem(&self) -> u64 {
        GB
    }
    fn download_bytes(&self) -> u64 {
        0
    }
    fn run(
        &self,
        p: &dgsf::sim::ProcCtx,
        api: &mut dyn CudaApi,
        rec: &mut PhaseRecorder,
    ) -> CudaResult<()> {
        rec.enter(p, dgsf::serverless::phase::PROCESSING);
        api.launch_kernel(
            p,
            "k",
            LaunchConfig::linear(1, 32),
            KernelArgs::timed(SPIN_SECS, 0),
        )?;
        api.device_synchronize(p)?;
        rec.close(p);
        Ok(())
    }
    fn cpu_secs(&self) -> f64 {
        30.0
    }
}

/// GPU seconds of work per invocation. With 2 GPUs the fleet's compute
/// ceiling is `2 / SPIN_SECS` = 4 functions per second.
const SPIN_SECS: f64 = 0.5;

/// Offered load points, in milli-requests-per-second. The ceiling of the
/// swept fleet is 4 rps, so the top points are firmly past saturation.
const RATES_MILLI_RPS: &[u64] = &[1_000, 2_000, 3_000, 4_000, 6_000, 8_000];

/// One point of the sweep. All integers (virtual-time derived), so the
/// JSON rendering is byte-stable per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Offered arrival rate (milli-requests/second).
    pub offered_rps_milli: u64,
    /// Functions launched at this point.
    pub launched: u64,
    /// Functions that completed successfully.
    pub completed: u64,
    /// Functions shed by admission control / overload.
    pub shed: u64,
    /// Functions that failed for any other reason.
    pub failed: u64,
    /// Median end-to-end latency of completed functions (microseconds).
    pub p50_e2e_us: u64,
    /// 99th-percentile end-to-end latency of completed functions
    /// (microseconds, nearest-rank).
    pub p99_e2e_us: u64,
    /// Achieved goodput (milli-requests/second of completions over the
    /// first-launch → all-done window).
    pub throughput_rps_milli: u64,
    /// Peak API-server pool size across the run (telemetry gauge).
    pub pool_peak: i64,
    /// Autoscaler scale-up actions.
    pub scale_ups: u64,
    /// Autoscaler scale-down actions.
    pub scale_downs: u64,
}

/// The whole sweep: one point per offered rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutput {
    /// Base seed the per-point seeds derive from.
    pub seed: u64,
    /// Launches per point.
    pub launches_per_point: usize,
    /// The measured curve, in offered-rate order.
    pub points: Vec<SweepPoint>,
}

/// The fleet under test: 2 GPUs, autoscaling 1→4 servers per GPU,
/// admission-controlled backend.
fn sweep_config(seed: u64) -> PlatformConfig {
    PlatformConfig::paper_default()
        .with_seed(seed)
        .with_server(
            GpuServerConfig::paper_default().gpus(2).with_autoscale(
                AutoscaleConfig::new(1, 4)
                    .with_target_queue_delay(Dur::from_millis(250))
                    .with_up_ticks(2)
                    .with_idle_ttl(Dur::from_secs(3))
                    .with_cooldown(Dur::from_millis(400)),
            ),
        )
        .with_max_inflight(24)
        .with_max_queue_age(Dur::from_secs(3))
}

/// Nearest-rank percentile of a sorted slice (q in permille). Integer-only.
fn percentile_sorted(sorted: &[u64], q_permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((n * q_permille).div_ceil(1000)).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Run one point: `launches` Poisson arrivals at `rate_milli_rps` through
/// the admission-controlled, autoscaled fleet.
fn run_point(base_seed: u64, idx: usize, rate_milli_rps: u64, launches: usize) -> SweepPoint {
    // Distinct, deterministic seed per point.
    let seed = base_seed.wrapping_add((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mean_gap = Dur(1_000_000_000_000 / rate_milli_rps);
    let suite: Vec<Arc<dyn Workload>> = vec![Arc::new(Spin)];
    let schedule = Schedule::mixed(
        seed,
        1,
        launches,
        ArrivalPattern::Exponential { mean: mean_gap },
    );
    let cfg = sweep_config(seed);
    let (out, tel) = Testbed::run_platform_schedule_traced(&cfg, &suite, &schedule);
    let mut e2e_us: Vec<u64> = out
        .results
        .iter()
        .filter(|r| r.succeeded())
        .map(|r| r.e2e().as_nanos() / 1_000)
        .collect();
    e2e_us.sort_unstable();
    let completed = out.completed() as u64;
    let window_ns = out.all_done.since(out.first_launch).as_nanos();
    let throughput_rps_milli = if window_ns == 0 {
        0
    } else {
        ((completed as u128 * 1_000_000_000_000) / window_ns as u128) as u64
    };
    SweepPoint {
        offered_rps_milli: rate_milli_rps,
        launched: out.results.len() as u64,
        completed,
        shed: out.shed() as u64,
        failed: out.failed() as u64,
        p50_e2e_us: percentile_sorted(&e2e_us, 500),
        p99_e2e_us: percentile_sorted(&e2e_us, 990),
        throughput_rps_milli,
        pool_peak: tel.gauge_peak("monitor.pool_size").unwrap_or(
            // pool never moved: it stayed at the provisioned baseline
            cfg.server.total_api_servers() as i64,
        ),
        scale_ups: tel.counter("autoscale.scale_ups"),
        scale_downs: tel.counter("autoscale.scale_downs"),
    }
}

/// Run the full sweep. `quick` shrinks launches per point (CI smoke);
/// deterministic per `(seed, quick)`.
pub fn sweep(seed: u64, quick: bool) -> SweepOutput {
    let launches = if quick { 40 } else { 120 };
    let points = RATES_MILLI_RPS
        .iter()
        .enumerate()
        .map(|(i, &r)| run_point(seed, i, r, launches))
        .collect();
    SweepOutput {
        seed,
        launches_per_point: launches,
        points,
    }
}

/// Render the sweep as JSON. Integers only — byte-identical per seed.
pub fn sweep_json(s: &SweepOutput) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", s.seed));
    out.push_str(&format!(
        "  \"launches_per_point\": {},\n",
        s.launches_per_point
    ));
    out.push_str("  \"points\": [");
    for (i, p) in s.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"offered_rps_milli\": {}, \"launched\": {}, \"completed\": {}, \"shed\": {}, \"failed\": {}, \"p50_e2e_us\": {}, \"p99_e2e_us\": {}, \"throughput_rps_milli\": {}, \"pool_peak\": {}, \"scale_ups\": {}, \"scale_downs\": {}}}",
            p.offered_rps_milli,
            p.launched,
            p.completed,
            p.shed,
            p.failed,
            p.p50_e2e_us,
            p.p99_e2e_us,
            p.throughput_rps_milli,
            p.pool_peak,
            p.scale_ups,
            p.scale_downs,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Write `BENCH_sweep.json` into `out_dir`; returns the path.
pub fn write_sweep(out_dir: &Path, s: &SweepOutput) -> io::Result<PathBuf> {
    fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_sweep.json");
    fs::write(&path, sweep_json(s))?;
    Ok(path)
}

/// Human-readable table of the sweep.
pub fn sweep_text(s: &SweepOutput) -> String {
    let mut t = TextTable::new(vec![
        "offered rps",
        "goodput rps",
        "completed",
        "shed",
        "failed",
        "p50 e2e",
        "p99 e2e",
        "pool peak",
        "ups/downs",
    ]);
    for p in &s.points {
        t.row(vec![
            format!("{:.1}", p.offered_rps_milli as f64 / 1000.0),
            format!("{:.2}", p.throughput_rps_milli as f64 / 1000.0),
            p.completed.to_string(),
            p.shed.to_string(),
            p.failed.to_string(),
            format!("{:.2}s", p.p50_e2e_us as f64 / 1e6),
            format!("{:.2}s", p.p99_e2e_us as f64 / 1e6),
            p.pool_peak.to_string(),
            format!("{}/{}", p.scale_ups, p.scale_downs),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let v = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile_sorted(&v, 500), 50);
        assert_eq!(percentile_sorted(&v, 990), 100);
        assert_eq!(percentile_sorted(&v, 1000), 100);
        assert_eq!(percentile_sorted(&[], 500), 0);
        assert_eq!(percentile_sorted(&[7], 990), 7);
    }

    #[test]
    fn one_light_point_completes_everything() {
        // Far below the 4 rps ceiling: nothing shed, all completed.
        let p = run_point(42, 0, 1_000, 10);
        assert_eq!(p.launched, 10);
        assert_eq!(p.completed, 10);
        assert_eq!(p.shed + p.failed, 0);
        assert!(p.p50_e2e_us >= (SPIN_SECS * 1e6) as u64);
    }
}
