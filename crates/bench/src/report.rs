//! Plain-text table rendering for the experiment harness.

/// A rendered table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Build from string-ish headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// `12.345` → `"12.3s"`.
pub fn secs(x: f64) -> String {
    format!("{x:.1}s")
}

/// `12.345` → `"12.35s"` (two decimals, for sub-second values).
pub fn secs2(x: f64) -> String {
    format!("{x:.2}s")
}

/// Relative change `b` vs baseline `a`, paper style: "(-17%)".
pub fn rel(a: f64, b: f64) -> String {
    if a <= 0.0 {
        return "(n/a)".into();
    }
    let pct = (b - a) / a * 100.0;
    format!("({pct:+.0}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // columns align: "value" column starts at the same offset
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(12.345), "12.3s");
        assert_eq!(secs2(0.504), "0.50s");
        assert_eq!(rel(10.0, 8.0), "(-20%)");
        assert_eq!(rel(10.0, 12.5), "(+25%)");
        assert_eq!(rel(0.0, 1.0), "(n/a)");
    }
}
