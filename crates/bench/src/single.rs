//! Single-workload experiments: Table II, Figure 3, Figure 4, Table V and
//! the forwarded-API-count statistics (§V-C).

use std::sync::Arc;

use dgsf::prelude::*;
use dgsf::server::GpuServer;
use dgsf::serverless::{phase, InvokeOptions, Invoker, ObjectStore};
use dgsf::sim::Sim;
use dgsf::workloads::{paper_suite, SyntheticMigration, TraceSpec};
use dgsf::{gpu, remoting};
use parking_lot::Mutex;

use crate::report::{secs, secs2, TextTable};

/// One Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Workload name.
    pub name: String,
    /// Peak device memory of the function (allocations + runtime/library
    /// footprints), bytes.
    pub peak_mem: u64,
    /// Native end-to-end seconds.
    pub native: f64,
    /// DGSF (OpenFaaS deployment) end-to-end seconds.
    pub dgsf: f64,
    /// DGSF on the AWS Lambda profile, seconds.
    pub lambda: f64,
    /// CPU baseline seconds.
    pub cpu: f64,
    /// Approximate migration data-movement time, seconds.
    pub migration: f64,
}

/// Table II: per-workload runtimes under every execution mode.
pub fn table2() -> Vec<Table2Row> {
    let suite = paper_suite();
    let cfg = TestbedConfig::paper_default();
    let mut lambda_cfg = cfg.clone();
    lambda_cfg.server = lambda_cfg.server.with_net(NetProfile::lambda());
    suite
        .iter()
        .map(|w| {
            let dynw: Arc<dyn Workload> = Arc::clone(w) as Arc<dyn Workload>;
            let native = Testbed::run_native_once(1, &cfg.server.costs, dynw.clone());
            let dgsf_run = Testbed::run_dgsf_once(&cfg, dynw.clone());
            let lambda = Testbed::run_dgsf_once(&lambda_cfg, dynw.clone());
            let cpu = Testbed::run_cpu_once(1, dynw.clone());
            let mig = migration_probe(w);
            let peak = w.alloc_split.iter().sum::<u64>()
                + cfg.server.costs.cuda_ctx_mem
                + if w.uses_dnn {
                    cfg.server.costs.cudnn_mem + cfg.server.costs.cublas_mem
                } else {
                    0
                };
            Table2Row {
                name: w.name.clone(),
                peak_mem: peak,
                native: native.e2e().as_secs_f64(),
                dgsf: dgsf_run.e2e().as_secs_f64(),
                lambda: lambda.e2e().as_secs_f64(),
                cpu: cpu.e2e().as_secs_f64(),
                migration: mig,
            }
        })
        .collect()
}

/// Force a migration mid-processing and report the data-copy seconds
/// (Table II's "Aprox. Migration Time").
pub fn migration_probe(w: &Arc<TraceSpec>) -> f64 {
    let mut sim = Sim::new(11);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(0.0f64));
    let o = Arc::clone(&out);
    let w = Arc::clone(w);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h2, GpuServerConfig::paper_default().gpus(2));
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let server2 = Arc::clone(&server);
        let w2 = Arc::clone(&w);
        let store2 = Arc::clone(&store);
        h2.spawn("fn", move |p| {
            let _ = Invoker::new(&server2, &store2).invoke(
                p,
                w2.as_ref(),
                InvokeOptions::new(OptConfig::full()),
            );
        });
        // Trigger the migration once the function is mid-processing.
        let dl = store.download_time(w.download_bytes());
        let mid = dl
            + Dur::from_secs_f64(w.load.work + 1.0)
            + Dur::from_secs_f64(w.host_secs / 2.0 + w.total_gpu_work() / 2.0);
        p.sleep(mid);
        if let Some(rec) = server.records().first() {
            if let Some(srv) = rec.server {
                server.force_migration(srv, gpu::GpuId(1));
            }
        }
        // Wait for it to land, then read the report.
        loop {
            p.sleep(Dur::from_millis(500));
            let migs = server.migrations();
            if let Some(m) = migs.first() {
                *o.lock() = m.report.data_copy.as_secs_f64();
                break;
            }
            if server.records().first().map(|r| r.done_at.is_some()) == Some(true) {
                break; // function finished before the boundary hit
            }
        }
    });
    sim.run();
    let v = *out.lock();
    v
}

/// Render Table II in the paper's layout.
pub fn table2_text(rows: &[Table2Row]) -> String {
    let mut t = TextTable::new(vec![
        "workload",
        "peak GPU mem",
        "native",
        "DGSF",
        "AWS Lambda",
        "CPU",
        "approx. migration",
    ]);
    for r in rows {
        t.row(vec![
            r.name.clone(),
            format!("{} MB", r.peak_mem / gpu::MB),
            secs(r.native),
            format!("{} {}", secs(r.dgsf), crate::report::rel(r.native, r.dgsf)),
            format!(
                "{} {}",
                secs(r.lambda),
                crate::report::rel(r.native, r.lambda)
            ),
            format!("{} (-{:.1}x)", secs(r.cpu), r.cpu / r.native),
            format!("{:.0} ms", r.migration * 1e3),
        ]);
    }
    t.render()
}

/// One bar of Figure 3: a workload under one mode, broken into phases.
#[derive(Debug, Clone)]
pub struct PhaseBar {
    /// Workload name.
    pub name: String,
    /// Mode label ("native" / "dgsf-noopt" / "dgsf").
    pub mode: String,
    /// CUDA initialization seconds (zero for DGSF with pooling).
    pub init: f64,
    /// Download seconds.
    pub download: f64,
    /// Model load seconds.
    pub model_load: f64,
    /// Processing seconds.
    pub processing: f64,
}

impl PhaseBar {
    fn from_result(name: &str, mode: &str, r: &dgsf::serverless::FunctionResult) -> PhaseBar {
        PhaseBar {
            name: name.to_string(),
            mode: mode.to_string(),
            init: r.phases.get(phase::INIT).as_secs_f64(),
            download: r.phases.get(phase::DOWNLOAD).as_secs_f64(),
            model_load: r.phases.get(phase::MODEL_LOAD).as_secs_f64(),
            processing: r.phases.get(phase::PROCESSING).as_secs_f64(),
        }
    }

    /// Total of the four phases.
    pub fn total(&self) -> f64 {
        self.init + self.download + self.model_load + self.processing
    }
}

/// Figure 3: phase breakdown for native / DGSF-without-optimizations /
/// DGSF, per workload.
pub fn fig3() -> Vec<PhaseBar> {
    let suite = paper_suite();
    let cfg = TestbedConfig::paper_default();
    let mut noopt = cfg.clone();
    noopt.opts = OptConfig::none();
    let mut out = Vec::new();
    for w in &suite {
        let dynw: Arc<dyn Workload> = Arc::clone(w) as Arc<dyn Workload>;
        let native = Testbed::run_native_once(1, &cfg.server.costs, dynw.clone());
        out.push(PhaseBar::from_result(&w.name, "native", &native));
        let un = Testbed::run_dgsf_once(&noopt, dynw.clone());
        out.push(PhaseBar::from_result(&w.name, "dgsf-noopt", &un));
        let opt = Testbed::run_dgsf_once(&cfg, dynw.clone());
        out.push(PhaseBar::from_result(&w.name, "dgsf", &opt));
    }
    out
}

/// Render Figure 3 as a table of stacked phases.
pub fn fig3_text(bars: &[PhaseBar]) -> String {
    let mut t = TextTable::new(vec![
        "workload",
        "mode",
        "init",
        "download",
        "model load",
        "processing",
        "total",
    ]);
    for b in bars {
        t.row(vec![
            b.name.clone(),
            b.mode.clone(),
            secs2(b.init),
            secs2(b.download),
            secs2(b.model_load),
            secs2(b.processing),
            secs(b.total()),
        ]);
    }
    t.render()
}

/// One Figure 4 measurement: a workload at one optimization level,
/// download excluded ("we remove ... download ... since these are not
/// optimized by DGSF").
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Workload name.
    pub name: String,
    /// Level label.
    pub level: String,
    /// init + model load + processing, seconds.
    pub processing_total: f64,
}

/// The ablation ladder of Figure 4.
pub fn ablation_levels() -> Vec<(&'static str, OptConfig)> {
    vec![
        ("no-opts", OptConfig::none()),
        ("+handle-pools", OptConfig::handle_pools()),
        ("+descriptor-pools", OptConfig::descriptor_pools()),
        ("+batching/elision", OptConfig::full()),
    ]
}

/// Figure 4: incremental-optimization ablation vs native, per workload.
pub fn fig4() -> Vec<AblationPoint> {
    let suite = paper_suite();
    let cfg = TestbedConfig::paper_default();
    let mut out = Vec::new();
    for w in &suite {
        let dynw: Arc<dyn Workload> = Arc::clone(w) as Arc<dyn Workload>;
        let native = Testbed::run_native_once(1, &cfg.server.costs, dynw.clone());
        out.push(AblationPoint {
            name: w.name.clone(),
            level: "native".into(),
            processing_total: native.e2e().as_secs_f64()
                - native.phases.get(phase::DOWNLOAD).as_secs_f64(),
        });
        for (label, opts) in ablation_levels() {
            let mut c = cfg.clone();
            c.opts = opts;
            let r = Testbed::run_dgsf_once(&c, dynw.clone());
            out.push(AblationPoint {
                name: w.name.clone(),
                level: label.into(),
                processing_total: r.e2e().as_secs_f64()
                    - r.phases.get(phase::DOWNLOAD).as_secs_f64(),
            });
        }
    }
    out
}

/// Render Figure 4.
pub fn fig4_text(points: &[AblationPoint]) -> String {
    let mut t = TextTable::new(vec!["workload", "level", "time excl. download"]);
    for p in points {
        t.row(vec![
            p.name.clone(),
            p.level.clone(),
            secs(p.processing_total),
        ]);
    }
    t.render()
}

/// One Table V row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Array size in MB.
    pub mb: u64,
    /// Native end-to-end seconds.
    pub native: f64,
    /// DGSF end-to-end seconds (no migration).
    pub dgsf: f64,
    /// DGSF end-to-end with a forced migration between the two kernels.
    pub dgsf_mig: f64,
    /// Migration time (quiesce ∥ copy + remap), seconds.
    pub migration: f64,
}

/// Table V: the synthetic single-array migration microbenchmark.
pub fn table5() -> Vec<Table5Row> {
    SyntheticMigration::TABLE_V_SIZES_MB
        .iter()
        .map(|&mb| {
            let w = Arc::new(SyntheticMigration::mb(mb));
            let cfg = TestbedConfig::paper_default();
            let dynw: Arc<dyn Workload> = w.clone() as Arc<dyn Workload>;
            let native = Testbed::run_native_once(1, &cfg.server.costs, dynw.clone());
            let plain = Testbed::run_dgsf_once(&cfg, dynw.clone());
            let (e2e_mig, mig) = synthetic_with_forced_migration(&w);
            Table5Row {
                mb,
                native: native.e2e().as_secs_f64(),
                dgsf: plain.e2e().as_secs_f64(),
                dgsf_mig: e2e_mig,
                migration: mig,
            }
        })
        .collect()
}

/// Run the synthetic workload over DGSF and force a migration right before
/// the second kernel. Returns (function e2e seconds, migration seconds).
fn synthetic_with_forced_migration(w: &Arc<SyntheticMigration>) -> (f64, f64) {
    let mut sim = Sim::new(5);
    let h = sim.handle();
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    let w = Arc::clone(w);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h2, GpuServerConfig::paper_default().gpus(2));
        let (client, _inv) = server.request_gpu(p, "synthetic", w.required_gpu_mem(), w.registry());
        let mut api = remoting::RemoteCuda::new(client, OptConfig::full());
        api.runtime_init(p).expect("init");
        api.register_module(p, w.registry()).expect("module");
        let t0 = p.now();
        let server2 = Arc::clone(&server);
        w.run_with_hook(p, &mut api, move |_p| {
            // "we forcefully migrate this application right before the
            // second kernel is called"
            server2.force_migration(0, gpu::GpuId(1));
        })
        .expect("migration bench runs fault-free");
        let e2e = p.now().since(t0).as_secs_f64();
        api.finish(p).expect("teardown");
        let mig = server
            .migrations()
            .first()
            .map(|m| m.report.total.as_secs_f64())
            .unwrap_or(0.0);
        *o.lock() = (e2e, mig);
    });
    sim.run();
    let v = *out.lock();
    v
}

/// Render Table V.
pub fn table5_text(rows: &[Table5Row]) -> String {
    let mut t = TextTable::new(vec![
        "array",
        "native e2e",
        "DGSF e2e",
        "DGSF+mig e2e",
        "migration",
    ]);
    for r in rows {
        t.row(vec![
            format!("{} MB", r.mb),
            secs2(r.native),
            secs2(r.dgsf),
            secs2(r.dgsf_mig),
            secs2(r.migration),
        ]);
    }
    t.render()
}

/// Live migration vs restart-from-scratch (the Gandiva-style
/// checkpoint/restore alternative §IX dismisses for serverless): for each
/// workload, the measured migration cost against the cost of re-running,
/// and the break-even progress point below which restarting would win.
#[derive(Debug, Clone)]
pub struct RestartRow {
    /// Workload name.
    pub name: String,
    /// Uncontended DGSF end-to-end seconds.
    pub e2e: f64,
    /// Measured forced-migration total seconds (quiesce ∥ copy + lib).
    pub migration: f64,
    /// Progress fraction below which a restart is cheaper than migrating.
    pub break_even: f64,
}

/// Compare live migration against restart-from-scratch.
pub fn migration_vs_restart() -> Vec<RestartRow> {
    let cfg = TestbedConfig::paper_default();
    paper_suite()
        .iter()
        .map(|w| {
            let dynw: Arc<dyn Workload> = Arc::clone(w) as Arc<dyn Workload>;
            let e2e = Testbed::run_dgsf_once(&cfg, dynw).e2e().as_secs_f64();
            // total migration cost at mid-run: copy + stop + lib recreate;
            // reuse the probe but read the full report.
            let migration = migration_probe_total(w);
            RestartRow {
                name: w.name.clone(),
                e2e,
                migration: migration.max(0.001),
                // Restarting discards `progress × e2e` of work; migrating
                // costs `migration`. Break-even: progress = migration / e2e.
                break_even: (migration / e2e).min(1.0),
            }
        })
        .collect()
}

/// Like [`migration_probe`] but returns the migration's *total* time.
fn migration_probe_total(w: &Arc<TraceSpec>) -> f64 {
    let mut sim = Sim::new(13);
    let h = sim.handle();
    let out = Arc::new(Mutex::new(0.0f64));
    let o = Arc::clone(&out);
    let w = Arc::clone(w);
    let h2 = h.clone();
    sim.spawn("root", move |p| {
        let server = GpuServer::provision(p, &h2, GpuServerConfig::paper_default().gpus(2));
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let server2 = Arc::clone(&server);
        let w2 = Arc::clone(&w);
        let store2 = Arc::clone(&store);
        h2.spawn("fn", move |p| {
            let _ = Invoker::new(&server2, &store2).invoke(
                p,
                w2.as_ref(),
                InvokeOptions::new(OptConfig::full()),
            );
        });
        let dl = store.download_time(w.download_bytes());
        p.sleep(dl + Dur::from_secs_f64(w.load.work + 1.0 + w.total_gpu_work() / 2.0));
        if let Some(rec) = server.records().first() {
            if let Some(srv) = rec.server {
                server.force_migration(srv, gpu::GpuId(1));
            }
        }
        loop {
            p.sleep(Dur::from_millis(500));
            if let Some(m) = server.migrations().first() {
                *o.lock() = m.report.total.as_secs_f64();
                break;
            }
            if server.records().first().map(|r| r.done_at.is_some()) == Some(true) {
                break;
            }
        }
    });
    sim.run();
    let v = *out.lock();
    v
}

/// Render the migration-vs-restart analysis.
pub fn restart_text(rows: &[RestartRow]) -> String {
    let mut t = TextTable::new(vec![
        "workload",
        "DGSF e2e",
        "migration cost",
        "restart wins below",
    ]);
    for r in rows {
        t.row(vec![
            r.name.clone(),
            secs(r.e2e),
            secs2(r.migration),
            format!("{:.1}% progress", r.break_even * 100.0),
        ]);
    }
    t.render()
}

/// Forwarded-API statistics per workload (§V-C: DGSF reduces forwarded
/// CUDA APIs by up to 48 % for ONNX Runtime and up to 96 % for TensorFlow).
#[derive(Debug, Clone)]
pub struct ApiCountRow {
    /// Workload name.
    pub name: String,
    /// Calls the application issued.
    pub issued: u64,
    /// Calls forwarded individually without optimizations.
    pub remoted_noopt: u64,
    /// Calls forwarded individually with full optimizations.
    pub remoted_full: u64,
    /// `1 − full/noopt` — the paper's reduction metric.
    pub reduction: f64,
}

/// Per-workload forwarded-call reduction.
pub fn apicounts() -> Vec<ApiCountRow> {
    let suite = paper_suite();
    let cfg = TestbedConfig::paper_default();
    let mut noopt_cfg = cfg.clone();
    noopt_cfg.opts = OptConfig::none();
    suite
        .iter()
        .map(|w| {
            let dynw: Arc<dyn Workload> = Arc::clone(w) as Arc<dyn Workload>;
            let noopt = Testbed::run_dgsf_once(&noopt_cfg, dynw.clone());
            let full = Testbed::run_dgsf_once(&cfg, dynw.clone());
            let reduction = if noopt.api_stats.remoted_calls > 0 {
                1.0 - full.api_stats.remoted_calls as f64 / noopt.api_stats.remoted_calls as f64
            } else {
                0.0
            };
            ApiCountRow {
                name: w.name.clone(),
                issued: full.api_stats.issued_calls,
                remoted_noopt: noopt.api_stats.remoted_calls,
                remoted_full: full.api_stats.remoted_calls,
                reduction,
            }
        })
        .collect()
}

/// Render the API count table.
pub fn apicounts_text(rows: &[ApiCountRow]) -> String {
    let mut t = TextTable::new(vec![
        "workload",
        "issued",
        "forwarded (no-opt)",
        "forwarded (full)",
        "reduction",
    ]);
    for r in rows {
        t.row(vec![
            r.name.clone(),
            r.issued.to_string(),
            r.remoted_noopt.to_string(),
            r.remoted_full.to_string(),
            format!("{:.0}%", r.reduction * 100.0),
        ]);
    }
    t.render()
}
