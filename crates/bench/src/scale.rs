//! `dgsf-expt scale` — the million-invocation substrate benchmark.
//!
//! Drives a heavy-tailed open-loop trace through the real remoting stack:
//! a single generator emits invocations with exponential inter-arrival
//! gaps, a Zipf tenant mix, and log-normally distributed service times;
//! a fixed pool of worker/server pairs drains them as an M/G/k queue,
//! every invocation paying a full framed RPC round trip (encode →
//! uplink → decode → serve → respond → downlink → reply decode) through
//! the DES kernel. The process set is fixed — generator, workers,
//! servers — so a run past 1M invocations costs memory proportional to
//! the latency sample, not the invocation count.
//!
//! Everything in `BENCH_scale.json` is an integer derived from virtual
//! time and kernel event counts, so the file is **byte-identical per
//! seed** across runs and machines — CI diffs the quick variant against
//! a committed golden. Wall-clock throughput (events/sec, invocations/
//! sec) is *not* in the JSON; the binary prints it alongside.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dgsf::remoting::wire::{Request, Response, WireArgs};
use dgsf::remoting::{NetLink, NetProfile, RpcClient, RpcInbox};
use dgsf::sim::{rng, Dur, Sim, SimTime};
use parking_lot::Mutex;

use crate::report::TextTable;

/// One scale run's shape. `quick` is the CI smoke; `full` crosses the
/// million-invocation line.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Base RNG seed.
    pub seed: u64,
    /// Invocations the generator emits.
    pub invocations: u64,
    /// Distinct tenants in the Zipf mix.
    pub tenants: usize,
    /// Worker/server pairs (the `k` of the M/G/k queue).
    pub servers: usize,
    /// Mean inter-arrival gap of the open-loop trace.
    pub mean_gap: Dur,
    /// Log of the median service time, in seconds (`mu` of the log-normal).
    pub service_mu: f64,
    /// Spread of the log service time (`sigma` of the log-normal).
    pub service_sigma: f64,
    /// Zipf skew of the tenant mix.
    pub zipf_s: f64,
    /// Progress checkpoints taken at fixed virtual times.
    pub checkpoints: usize,
}

impl ScaleConfig {
    /// CI smoke: 50k invocations, a few seconds of wall time.
    pub fn quick(seed: u64) -> ScaleConfig {
        ScaleConfig {
            invocations: 50_000,
            ..ScaleConfig::full(seed)
        }
    }

    /// The headline run: 1.2M invocations through the fixed process set.
    pub fn full(seed: u64) -> ScaleConfig {
        ScaleConfig {
            seed,
            invocations: 1_200_000,
            tenants: 64,
            servers: 6,
            // 1250 req/s offered against ~1800 req/s of capacity
            // (6 servers × mean service e^{mu + sigma²/2} ≈ 3.3 ms).
            mean_gap: Dur::from_micros(800),
            service_mu: (0.002f64).ln(), // 2 ms median
            service_sigma: 1.0,          // heavy tail: mean ≈ 1.65 × median
            zipf_s: 1.1,
            checkpoints: 8,
        }
    }
}

/// A progress snapshot at a fixed virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleCheckpoint {
    /// Virtual time of the snapshot (milliseconds).
    pub virtual_ms: u64,
    /// Invocations completed by then.
    pub completed: u64,
    /// Kernel events executed by then.
    pub events: u64,
}

/// The whole run. All integers (virtual-time derived), so the JSON
/// rendering is byte-stable per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleOutput {
    /// Seed the trace derives from.
    pub seed: u64,
    /// Invocations emitted.
    pub invocations: u64,
    /// Invocations that completed a full RPC round trip.
    pub completed: u64,
    /// Distinct tenants.
    pub tenants: u64,
    /// Worker/server pairs.
    pub servers: u64,
    /// Median end-to-end latency (queue wait + round trip + service), µs.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile end-to-end latency, µs.
    pub p999_us: u64,
    /// Worst end-to-end latency, µs.
    pub max_us: u64,
    /// Virtual makespan (first arrival to last completion), ms.
    pub virtual_ms: u64,
    /// Kernel events executed over the whole run.
    pub events: u64,
    /// Kernel events per completed invocation, ×1000.
    pub events_per_invocation_milli: u64,
    /// Share of completions belonging to the hottest tenant, ‰.
    pub hot_tenant_permille: u64,
    /// Progress curve at fixed virtual times.
    pub checkpoints: Vec<ScaleCheckpoint>,
}

/// An invocation in flight between the generator and a worker.
struct Invocation {
    arrival: SimTime,
    tenant: u32,
    service_ns: u64,
}

/// Nearest-rank percentile of a sorted slice (q in permyriad: 9990 = p99.9).
fn percentile_sorted(sorted: &[u64], q_permyriad: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((n * q_permyriad).div_ceil(10_000)).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Run the trace. Returns the deterministic output plus the wall-clock
/// seconds the kernel took (for the throughput line the caller prints —
/// never serialized).
pub fn scale(cfg: &ScaleConfig) -> (ScaleOutput, f64) {
    assert!(cfg.servers > 0 && cfg.tenants > 0 && cfg.invocations > 0);
    let mut sim = Sim::new(cfg.seed);
    let h = sim.handle();

    // Completed invocations: (latency_ns, tenant). Completion order is
    // deterministic, so the vector is too.
    let done: Arc<Mutex<Vec<(u64, u32)>>> =
        Arc::new(Mutex::new(Vec::with_capacity(cfg.invocations as usize)));

    let (inv_tx, inv_rx) = h.channel::<Invocation>();

    // Worker/server pairs: each worker owns one client/inbox connection
    // and serializes its server's service times by blocking on the call.
    for s in 0..cfg.servers {
        let link = NetLink::new(
            &h,
            NetProfile {
                rpc_latency: Dur::from_micros(60),
                rpc_jitter: Dur::ZERO,
                nic_bw: 1.25e9,
                s3_bw: 0.15e9,
            },
        );
        let (client, inbox) = RpcClient::connect(&h, link.clone());
        let srv_link = link.clone();
        sim.spawn(&format!("server-{s}"), move |p| {
            while let Some(env) = inbox.next(p) {
                let req = RpcInbox::decode(&env).expect("scale frames always decode");
                if let Request::Launch { args, .. } = &req {
                    p.sleep(Dur(args.scalars[0]));
                }
                inbox.respond(p, &srv_link, &env, &Response::Ok);
            }
        });
        let rx = inv_rx.clone();
        let done = done.clone();
        sim.spawn(&format!("worker-{s}"), move |p| {
            while let Some(inv) = rx.recv(p) {
                let req = Request::Launch {
                    fptr: inv.tenant as u64,
                    args: WireArgs {
                        ptrs: vec![inv.tenant as u64],
                        scalars: vec![inv.service_ns],
                        bytes: 0,
                        work_hint: None,
                    },
                };
                let resp = client.call(p, &req).expect("scale servers never fail");
                assert_eq!(resp, Response::Ok);
                done.lock()
                    .push((p.now().since(inv.arrival).as_nanos(), inv.tenant));
            }
        });
    }
    drop(inv_rx);

    // Open-loop generator: arrivals never wait on completions; backlog
    // queues in the invocation channel.
    let gen_cfg = cfg.clone();
    sim.spawn("generator", move |p| {
        let zipf = rng::Zipf::new(gen_cfg.tenants, gen_cfg.zipf_s);
        for _ in 0..gen_cfg.invocations {
            let gap = p.with_rng(|r| rng::exp_gap(r, gen_cfg.mean_gap));
            p.sleep(gap);
            let tenant = p.with_rng(|r| zipf.sample(r)) as u32;
            let service =
                p.with_rng(|r| rng::lognormal_dur(r, gen_cfg.service_mu, gen_cfg.service_sigma));
            inv_tx.send(
                p,
                Invocation {
                    arrival: p.now(),
                    tenant,
                    service_ns: service.as_nanos().max(1),
                },
            );
        }
        // Dropping the sender lets workers (then servers) drain and exit.
    });

    // Drive the run in fixed virtual-time slices so the progress curve is
    // part of the deterministic artifact, then run the tail to completion.
    let wall = std::time::Instant::now();
    let horizon = Dur(cfg.mean_gap.as_nanos().saturating_mul(cfg.invocations));
    let mut checkpoints = Vec::with_capacity(cfg.checkpoints + 1);
    for k in 1..=cfg.checkpoints as u64 {
        let deadline = SimTime::ZERO + Dur(horizon.as_nanos() / cfg.checkpoints as u64 * k);
        let at = sim.run_until(deadline);
        checkpoints.push(ScaleCheckpoint {
            virtual_ms: at.max(deadline).as_nanos() / 1_000_000,
            completed: done.lock().len() as u64,
            events: sim.events_executed(),
        });
    }
    let end = sim.run();
    let wall_secs = wall.elapsed().as_secs_f64();
    let events = sim.events_executed();
    checkpoints.push(ScaleCheckpoint {
        virtual_ms: end.as_nanos() / 1_000_000,
        completed: done.lock().len() as u64,
        events,
    });

    let done = Arc::try_unwrap(done)
        .map(Mutex::into_inner)
        .unwrap_or_else(|d| d.lock().clone());
    let completed = done.len() as u64;
    let hot = done.iter().filter(|(_, t)| *t == 0).count() as u64;
    let mut lat_us: Vec<u64> = done.iter().map(|(ns, _)| ns / 1_000).collect();
    lat_us.sort_unstable();

    let out = ScaleOutput {
        seed: cfg.seed,
        invocations: cfg.invocations,
        completed,
        tenants: cfg.tenants as u64,
        servers: cfg.servers as u64,
        p50_us: percentile_sorted(&lat_us, 5_000),
        p99_us: percentile_sorted(&lat_us, 9_900),
        p999_us: percentile_sorted(&lat_us, 9_990),
        max_us: lat_us.last().copied().unwrap_or(0),
        virtual_ms: end.as_nanos() / 1_000_000,
        events,
        events_per_invocation_milli: events
            .saturating_mul(1000)
            .checked_div(completed)
            .unwrap_or(0),
        hot_tenant_permille: hot.saturating_mul(1000).checked_div(completed).unwrap_or(0),
        checkpoints,
    };
    (out, wall_secs)
}

/// Render the run as JSON. Integers only — byte-identical per seed.
pub fn scale_json(s: &ScaleOutput) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", s.seed));
    out.push_str(&format!("  \"invocations\": {},\n", s.invocations));
    out.push_str(&format!("  \"completed\": {},\n", s.completed));
    out.push_str(&format!("  \"tenants\": {},\n", s.tenants));
    out.push_str(&format!("  \"servers\": {},\n", s.servers));
    out.push_str(&format!("  \"p50_us\": {},\n", s.p50_us));
    out.push_str(&format!("  \"p99_us\": {},\n", s.p99_us));
    out.push_str(&format!("  \"p999_us\": {},\n", s.p999_us));
    out.push_str(&format!("  \"max_us\": {},\n", s.max_us));
    out.push_str(&format!("  \"virtual_ms\": {},\n", s.virtual_ms));
    out.push_str(&format!("  \"events\": {},\n", s.events));
    out.push_str(&format!(
        "  \"events_per_invocation_milli\": {},\n",
        s.events_per_invocation_milli
    ));
    out.push_str(&format!(
        "  \"hot_tenant_permille\": {},\n",
        s.hot_tenant_permille
    ));
    out.push_str("  \"checkpoints\": [");
    for (i, c) in s.checkpoints.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"virtual_ms\": {}, \"completed\": {}, \"events\": {}}}",
            c.virtual_ms, c.completed, c.events
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Write `BENCH_scale.json` into `out_dir`; returns the path.
pub fn write_scale(out_dir: &Path, s: &ScaleOutput) -> io::Result<PathBuf> {
    fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_scale.json");
    fs::write(&path, scale_json(s))?;
    Ok(path)
}

/// Human-readable summary, including the wall-clock throughput lines that
/// stay out of the deterministic JSON.
pub fn scale_text(s: &ScaleOutput, wall_secs: f64) -> String {
    let mut t = TextTable::new(vec![
        "invocations",
        "completed",
        "p50 e2e",
        "p99 e2e",
        "p99.9 e2e",
        "virtual",
        "events",
        "ev/invocation",
        "hot tenant",
    ]);
    t.row(vec![
        s.invocations.to_string(),
        s.completed.to_string(),
        format!("{:.2}ms", s.p50_us as f64 / 1e3),
        format!("{:.2}ms", s.p99_us as f64 / 1e3),
        format!("{:.2}ms", s.p999_us as f64 / 1e3),
        format!("{:.1}s", s.virtual_ms as f64 / 1e3),
        s.events.to_string(),
        format!("{:.1}", s.events_per_invocation_milli as f64 / 1e3),
        format!("{:.1}%", s.hot_tenant_permille as f64 / 10.0),
    ]);
    let mut out = t.render();
    if wall_secs > 0.0 {
        out.push_str(&format!(
            "wall: {:.1}s — {:.0} events/sec, {:.0} invocations/sec\n",
            wall_secs,
            s.events as f64 / wall_secs,
            s.completed as f64 / wall_secs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> ScaleConfig {
        ScaleConfig {
            invocations: 400,
            checkpoints: 4,
            ..ScaleConfig::full(seed)
        }
    }

    #[test]
    fn tiny_trace_completes_everything_deterministically() {
        let (a, _) = scale(&tiny(42));
        assert_eq!(a.completed, 400);
        assert!(a.p50_us >= 120, "at least the RPC round trip: {}", a.p50_us);
        assert!(a.p99_us >= a.p50_us && a.max_us >= a.p999_us);
        assert!(a.events > 400, "several kernel events per invocation");
        assert_eq!(a.checkpoints.len(), 5);
        assert!(a.hot_tenant_permille > 100, "Zipf mix concentrates rank 0");
        let (b, _) = scale(&tiny(42));
        assert_eq!(a, b, "same seed ⇒ identical output");
        assert_eq!(scale_json(&a), scale_json(&b));
        let (c, _) = scale(&tiny(43));
        assert_ne!(a, c, "different seed ⇒ different trace");
    }

    #[test]
    fn checkpoints_are_monotone() {
        let (out, _) = scale(&tiny(7));
        for w in out.checkpoints.windows(2) {
            assert!(w[1].virtual_ms >= w[0].virtual_ms);
            assert!(w[1].completed >= w[0].completed);
            assert!(w[1].events > w[0].events);
        }
    }

    #[test]
    fn scale_percentiles_are_nearest_rank() {
        let v = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile_sorted(&v, 5_000), 50);
        assert_eq!(percentile_sorted(&v, 9_900), 100);
        assert_eq!(percentile_sorted(&[], 5_000), 0);
        assert_eq!(percentile_sorted(&[7], 9_990), 7);
    }
}
