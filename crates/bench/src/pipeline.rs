//! `dgsf-expt pipeline` — host-bounce vs GPU-resident DAG handoff.
//!
//! Drives the three-stage vision pipeline (preprocess → infer →
//! postprocess, 128 MB intermediates) as function DAGs from two tenants
//! against one two-API-server GPU server, once per
//! [`HandoffMode`]: the host-bounce baseline pays the intermediate bytes
//! twice over the remoting link per edge, the GPU-resident arm parks them
//! in the serving context's resident store (`publish_buffer` /
//! `adopt_buffer`) and pins the successor stage to that server. Both arms
//! replay the identical launch schedule at the same seed, so the latency
//! gap is attributable to the handoff path alone.
//!
//! Everything in `BENCH_pipeline.json` is an integer derived from virtual
//! time, so the file is **byte-identical per seed** across runs and
//! machines — CI diffs it against a committed golden.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dgsf::cuda::ResidentEvent;
use dgsf::prelude::*;
use dgsf::server::GpuServer;
use dgsf::serverless::{DagResult, DagWorkload, HandoffMode, ObjectStore};
use dgsf::sim::SimTime;
use parking_lot::Mutex;

use crate::report::TextTable;

const MB: u64 = 1 << 20;

/// Raw input the first stage uploads (and downloads from the store).
const INPUT_BYTES: u64 = 8 * MB;
/// Size of both inter-stage tensors — the bytes under measurement.
const INTER_BYTES: u64 = 128 * MB;
/// The (small) result the last stage returns.
const FINAL_BYTES: u64 = MB;
/// GPU seconds per stage.
const STAGE_SECS: [f64; 3] = [0.02, 0.15, 0.02];
/// Gap between consecutive DAG launches (milliseconds). Tight enough that
/// neighbouring DAGs contend for the two API servers.
const LAUNCH_GAP_MS: u64 = 250;

/// One arm of the comparison. All integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineArm {
    /// `"host_bounce"` or `"gpu_resident"`.
    pub mode: &'static str,
    /// DAGs launched.
    pub launched: u64,
    /// DAGs completed (all stages succeeded).
    pub completed: u64,
    /// DAGs shed or failed.
    pub failed: u64,
    /// p50 end-to-end DAG latency over completions (microseconds).
    pub p50_e2e_us: u64,
    /// p99 end-to-end DAG latency over completions (microseconds).
    pub p99_e2e_us: u64,
    /// Total time stages spent in the `transfer` phase (milliseconds) —
    /// where the host bounce pays and the resident path does not.
    pub transfer_ms: u64,
    /// Completed DAGs whose stages all ran on one API server, in permille
    /// of completions. 1000 in the resident arm (pinning); free placement
    /// in the bounce arm.
    pub colocated_permille: u64,
    /// `publish_buffer` calls logged by the fleet's resident stores.
    pub publishes: u64,
    /// `adopt_buffer` calls logged.
    pub adopts: u64,
    /// Reclaims logged (abort/teardown path; 0 on the fault-free runs).
    pub reclaims: u64,
}

/// The whole comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineOutput {
    /// Seed both arms share.
    pub seed: u64,
    /// DAGs launched per arm.
    pub dags: u64,
    /// Inter-stage tensor size (MB).
    pub inter_mb: u64,
    /// The two arms, host bounce first.
    pub arms: Vec<PipelineArm>,
}

/// Nearest-rank percentile of a sorted slice (q in permille).
fn percentile_sorted(sorted: &[u64], q_permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((n * q_permille).div_ceil(1000)).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Run one arm: `n` DAGs from two alternating tenants, launched
/// `LAUNCH_GAP_MS` apart against one two-API-server GPU server.
fn pipeline_arm(seed: u64, n: usize, mode: HandoffMode) -> PipelineArm {
    let mut sim = Sim::new(seed);
    sim.telemetry().enable();
    let h = sim.handle();
    let results: Arc<Mutex<Vec<(usize, DagResult)>>> = Arc::new(Mutex::new(Vec::new()));
    let events: Arc<Mutex<Vec<ResidentEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let (r2, e2) = (Arc::clone(&results), Arc::clone(&events));
    let h2 = h.clone();
    sim.spawn("pipeline-root", move |p| {
        let cfg = GpuServerConfig::paper_default().gpus(2);
        let server = GpuServer::provision(p, &h2, cfg);
        let store = Arc::new(ObjectStore::new(NetProfile::datacenter().s3_bw));
        let done = Arc::new(Mutex::new(0usize));
        for i in 0..n {
            let server = Arc::clone(&server);
            let store = Arc::clone(&store);
            let results = Arc::clone(&r2);
            let done = Arc::clone(&done);
            let tenant = if i % 2 == 0 { "acme" } else { "globex" };
            let dag = DagWorkload::pipeline3(
                "vision",
                mode,
                INPUT_BYTES,
                INTER_BYTES,
                FINAL_BYTES,
                STAGE_SECS,
            )
            .with_tenant(tenant);
            let at = SimTime::ZERO + Dur::from_millis(LAUNCH_GAP_MS * i as u64);
            h2.spawn_at(&format!("dag-{i}"), at, move |p| {
                let inv = Invoker::new(&server, &store);
                let r = inv.invoke_dag(p, &dag, InvokeOptions::new(OptConfig::full()), 3);
                results.lock().push((i, r));
                *done.lock() += 1;
            });
        }
        let e3 = e2;
        h2.spawn("collector", move |p| {
            while *done.lock() < n {
                p.sleep(Dur::from_millis(500));
            }
            p.sleep(Dur::from_secs(1));
            // Fault-free arms must satisfy the handoff and memory oracles
            // outright before their numbers are worth reporting.
            dgsf::check_resident_handoff(&server).assert_ok();
            dgsf::check_memory_balance(&server, true).assert_ok();
            *e3.lock() = server.resident_events();
        });
    });
    sim.run();

    let mut runs = results.lock().clone();
    runs.sort_by_key(|(i, _)| *i);
    let runs: Vec<DagResult> = runs.into_iter().map(|(_, r)| r).collect();
    let completed: Vec<&DagResult> = runs.iter().filter(|r| r.succeeded()).collect();
    let mut e2e_us: Vec<u64> = completed
        .iter()
        .map(|r| r.e2e().as_nanos() / 1_000)
        .collect();
    e2e_us.sort_unstable();
    let transfer_ns: u64 = runs
        .iter()
        .flat_map(|r| &r.stages)
        .map(|s| s.phases.get(dgsf::serverless::phase::TRANSFER).as_nanos())
        .sum();
    let colocated = completed
        .iter()
        .filter(|r| {
            let first = r.stages.first().and_then(|s| s.server);
            first.is_some() && r.stages.iter().all(|s| s.server == first)
        })
        .count() as u64;
    let count_ev =
        |f: fn(&ResidentEvent) -> bool| events.lock().iter().filter(|e| f(e)).count() as u64;
    PipelineArm {
        mode: mode.as_str(),
        launched: runs.len() as u64,
        completed: completed.len() as u64,
        failed: runs.len() as u64 - completed.len() as u64,
        p50_e2e_us: percentile_sorted(&e2e_us, 500),
        p99_e2e_us: percentile_sorted(&e2e_us, 990),
        transfer_ms: transfer_ns / 1_000_000,
        colocated_permille: (colocated * 1000)
            .checked_div(completed.len() as u64)
            .unwrap_or(0),
        publishes: count_ev(|e| matches!(e, ResidentEvent::Published { .. })),
        adopts: count_ev(|e| matches!(e, ResidentEvent::Adopted { .. })),
        reclaims: count_ev(|e| matches!(e, ResidentEvent::Reclaimed { .. })),
    }
}

/// Run the full comparison. `quick` shrinks the DAG count (CI smoke);
/// deterministic per `(seed, quick)`.
pub fn pipeline(seed: u64, quick: bool) -> PipelineOutput {
    let n = if quick { 8 } else { 40 };
    PipelineOutput {
        seed,
        dags: n as u64,
        inter_mb: INTER_BYTES / MB,
        arms: vec![
            pipeline_arm(seed, n, HandoffMode::HostBounce),
            pipeline_arm(seed, n, HandoffMode::GpuResident),
        ],
    }
}

/// Render the comparison as JSON. Integers only — byte-identical per seed.
pub fn pipeline_json(o: &PipelineOutput) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", o.seed));
    out.push_str(&format!("  \"dags\": {},\n", o.dags));
    out.push_str(&format!("  \"inter_mb\": {},\n", o.inter_mb));
    out.push_str("  \"arms\": [");
    for (i, a) in o.arms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"mode\": \"{}\", \"launched\": {}, \"completed\": {}, \"failed\": {}, \"p50_e2e_us\": {}, \"p99_e2e_us\": {}, \"transfer_ms\": {}, \"colocated_permille\": {}, \"publishes\": {}, \"adopts\": {}, \"reclaims\": {}}}",
            a.mode,
            a.launched,
            a.completed,
            a.failed,
            a.p50_e2e_us,
            a.p99_e2e_us,
            a.transfer_ms,
            a.colocated_permille,
            a.publishes,
            a.adopts,
            a.reclaims,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Write `BENCH_pipeline.json` into `out_dir`; returns the path.
pub fn write_pipeline(out_dir: &Path, o: &PipelineOutput) -> io::Result<PathBuf> {
    fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_pipeline.json");
    fs::write(&path, pipeline_json(o))?;
    Ok(path)
}

/// Human-readable table of the comparison.
pub fn pipeline_text(o: &PipelineOutput) -> String {
    let mut t = TextTable::new(vec![
        "handoff",
        "dags",
        "completed",
        "p50 e2e",
        "p99 e2e",
        "transfer",
        "colocated",
        "pub/adopt/reclaim",
    ]);
    for a in &o.arms {
        t.row(vec![
            a.mode.to_string(),
            a.launched.to_string(),
            a.completed.to_string(),
            format!("{:.2}s", a.p50_e2e_us as f64 / 1e6),
            format!("{:.2}s", a.p99_e2e_us as f64 / 1e6),
            format!("{:.2}s", a.transfer_ms as f64 / 1e3),
            format!("{:.3}", a.colocated_permille as f64 / 1000.0),
            format!("{}/{}/{}", a.publishes, a.adopts, a.reclaims),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_arm_beats_host_bounce_at_equal_demand() {
        let o = pipeline(42, true);
        let (bounce, resident) = (&o.arms[0], &o.arms[1]);
        assert_eq!(bounce.mode, "host_bounce");
        assert_eq!(resident.mode, "gpu_resident");
        // Equal demand, fully served in both arms — the comparison is
        // latency at the same completed count.
        assert_eq!(bounce.completed, bounce.launched);
        assert_eq!(resident.completed, bounce.completed);
        assert!(
            resident.p50_e2e_us < bounce.p50_e2e_us,
            "resident p50 {} must beat bounce {}",
            resident.p50_e2e_us,
            bounce.p50_e2e_us
        );
        assert!(
            resident.p99_e2e_us < bounce.p99_e2e_us,
            "resident p99 {} must beat bounce {}",
            resident.p99_e2e_us,
            bounce.p99_e2e_us
        );
        assert!(
            resident.transfer_ms < bounce.transfer_ms,
            "the gap must come from the transfer phase"
        );
        // The bookkeeping behind the gap: one publish + one adopt per
        // interior edge, nothing reclaimed, every DAG colocated.
        assert_eq!(resident.publishes, 2 * o.dags);
        assert_eq!(resident.adopts, 2 * o.dags);
        assert_eq!(resident.reclaims, 0);
        assert_eq!(resident.colocated_permille, 1000);
        assert_eq!(bounce.publishes + bounce.adopts + bounce.reclaims, 0);
    }

    #[test]
    fn pipeline_output_is_deterministic_per_seed() {
        let a = pipeline(7, true);
        let b = pipeline(7, true);
        assert_eq!(pipeline_json(&a), pipeline_json(&b));
    }
}
